"""Micro-benchmark: calendar-queue event kernel + scheduler scale-out.

Four sections, written to ``BENCH_engine.json``:

**raw kernel** — the event-queue kernels driven directly (no Event
machinery, GC paused): a *hold* model (steady population, pop one /
push one — the classic calendar-queue stress) and an *arrival-storm
drain* (bulk load then full drain — what a 10k-job submission does to
the kernel), both at populations where the heap's O(log n) comparisons
dominate.  Acceptance: the calendar queue moves >= 2x the events/sec
of the seed heap kernel.

**kernel end to end** — the same hold model through ``Environment``
(``wake_at`` + callbacks), showing how much of the queue win survives
the fixed per-event cost of Event objects and callback dispatch.

**packed dispatch** — the hold model again, but as bare packed
``(when, priority, seq, handler_id, arg)`` records (``call_at`` + one
registered handler) through the same ``Environment.run()`` loop: the
PR-6 hot path with no Event allocation and no callback lists.
Acceptance (full mode): >= 500k events/sec on the calendar kernel at
the 300k steady population (>= 2x the PR-4 Event-object baseline of
~289k at the same load) and a wide margin over the current
Event-object path.

**scheduler** — the 10k-job synthetic workload end to end.  The new
stack (calendar kernel + size-indexed queue + reservation ledger +
closed-form job booking) must schedule 10k jobs in less host time than
the seed stack (heap kernel + O(n) scan queue + launched rank
processes) needs for 2k.  A same-settings ablation leg (heap + scan,
closed-form booking) isolates the wake-path win and doubles as a
10k-job cross-implementation determinism check: both stacks must
produce bit-identical timelines.

``BENCH_SMOKE=1`` shrinks every population for CI and skips the
absolute assertions; the smoke JSON feeds the CI regression gate
(``scripts/check_bench.py``).
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import random
import time

from repro.core import ReshapeFramework
from repro.metrics import format_table
from repro.simulate import Environment, make_event_queue
from repro.workloads.generator import WorkloadGenerator

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

_ROOT = pathlib.Path(__file__).parents[1]
JSON_PATH = (_ROOT / "benchmarks" / "results" / "BENCH_engine_smoke.json"
             if SMOKE else _ROOT / "BENCH_engine.json")


# ---------------------------------------------------------------------------
# Raw queue kernels
# ---------------------------------------------------------------------------

def time_hold(kernel: str, pending: int, ops: int) -> float:
    """Hold model: steady population, pop-one/push-one.  ns/event."""
    queue = make_event_queue(kernel)
    rng = random.Random(0)
    now = 0.0
    seq = 0
    for _ in range(pending):
        seq += 1
        queue.push(now + rng.random() * 100.0, 1, seq, 0, None)
    t0 = time.perf_counter()
    for _ in range(ops):
        now = queue.pop()[0]
        seq += 1
        queue.push(now + rng.random() * 100.0, 1, seq, 0, None)
    return (time.perf_counter() - t0) / ops * 1e9


def time_drain(kernel: str, count: int) -> float:
    """Arrival storm: bulk-push ``count`` entries, drain them.  ns/event
    over the full push+drain cycle."""
    queue = make_event_queue(kernel)
    rng = random.Random(1)
    t0 = time.perf_counter()
    for seq in range(count):
        queue.push(rng.random() * 1e5, 1, seq, 0, None)
    for _ in range(count):
        queue.pop()
    return (time.perf_counter() - t0) / count * 1e9


def time_env_hold(kernel: str, pending: int, extra: int) -> float:
    """The hold model through Environment/Event/callbacks.  ns/event."""
    env = Environment(kernel=kernel)
    rng = random.Random(2)
    budget = [extra]

    def reschedule(_event):
        if budget[0] > 0:
            budget[0] -= 1
            nxt = env.wake_at(env.now + rng.random() * 100.0)
            nxt.callbacks.append(reschedule)

    for _ in range(pending):
        event = env.wake_at(rng.random() * 100.0)
        event.callbacks.append(reschedule)
    t0 = time.perf_counter()
    env.run()
    return (time.perf_counter() - t0) / (pending + extra) * 1e9


def time_env_packed(kernel: str, pending: int, extra: int) -> float:
    """The hold model as bare packed records through ``Environment.run()``:
    ``call_at`` + one registered handler — no Event objects, no callback
    lists, the raw-dispatch hot path.  ns/event."""
    env = Environment(kernel=kernel)
    rng = random.Random(2)
    budget = [extra]

    def reschedule(_arg):
        if budget[0] > 0:
            budget[0] -= 1
            env.call_at(env.now + rng.random() * 100.0, hid)

    hid = env.register_handler(reschedule)
    for _ in range(pending):
        env.call_at(rng.random() * 100.0, hid)
    t0 = time.perf_counter()
    env.run()
    return (time.perf_counter() - t0) / (pending + extra) * 1e9


# ---------------------------------------------------------------------------
# Scheduler end to end
# ---------------------------------------------------------------------------

def run_schedule(count: int, *, kernel: str, scheduler: str,
                 direct: bool):
    """One full synthetic workload through the framework.  Returns
    ``(host seconds, timeline, simulated end, ledger stats)``."""
    gen = WorkloadGenerator(seed=11, max_initial=16)
    specs = gen.generate_scale(count)
    t0 = time.perf_counter()
    fw = ReshapeFramework(env=Environment(kernel=kernel),
                          num_processors=36, dynamic=True,
                          scheduler=scheduler, direct_execution=direct)
    jobs = gen.submit_all(fw, specs, iterations=1)
    fw.run()
    host = time.perf_counter() - t0
    assert all(job.turnaround is not None for job in jobs.values())
    timeline = [(ch.time, ch.job_name, ch.reason)
                for ch in fw.timeline.changes]
    stats = {"wakes_taken": fw.ledger.wakes_taken,
             "wakes_skipped": fw.ledger.wakes_skipped}
    return host, timeline, fw.env.now, stats


def test_perf_engine(report):
    # -- raw kernel -------------------------------------------------------
    hold_pending = 50_000 if SMOKE else 1_000_000
    hold_ops = 50_000 if SMOKE else 400_000
    drain_count = 100_000 if SMOKE else 1_500_000
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        hold_heap = time_hold("heap", hold_pending, hold_ops)
        hold_cal = time_hold("calendar", hold_pending, hold_ops)
        drain_heap = time_drain("heap", drain_count)
        drain_cal = time_drain("calendar", drain_count)
    finally:
        if gc_was_enabled:
            gc.enable()
    raw_heap_ns = (hold_heap * hold_ops + drain_heap * drain_count) / \
        (hold_ops + drain_count)
    raw_cal_ns = (hold_cal * hold_ops + drain_cal * drain_count) / \
        (hold_ops + drain_count)
    raw_speedup = raw_heap_ns / max(raw_cal_ns, 1e-12)

    # -- kernel through the Environment ----------------------------------
    env_pending = 20_000 if SMOKE else 300_000
    env_extra = 20_000 if SMOKE else 300_000
    # Best-of-3 minima: the env-level legs run sub-seconds each, where
    # host noise swamps a single shot; the minimum is the stable
    # estimator of the code's actual cost.
    env_reps = 3
    env_heap = min(time_env_hold("heap", env_pending, env_extra)
                   for _ in range(env_reps))
    env_cal = min(time_env_hold("calendar", env_pending, env_extra)
                  for _ in range(env_reps))

    # -- packed raw dispatch through the Environment ----------------------
    pk_heap = min(time_env_packed("heap", env_pending, env_extra)
                  for _ in range(env_reps))
    pk_cal = min(time_env_packed("calendar", env_pending, env_extra)
                 for _ in range(env_reps))

    # -- scheduler --------------------------------------------------------
    # Smoke legs are sub-100ms one-shots on shared CI runners, where a
    # single scheduler blip can swamp the measurement — the regression
    # gate tracks speedup_vs_seed, so take the best of 3 there.  Full
    # legs run seconds and once.
    big = 1_000 if SMOKE else 10_000
    seed_jobs = 200 if SMOKE else 2_000
    repeats = 3 if SMOKE else 1
    runs = [run_schedule(big, kernel="calendar", scheduler="indexed",
                         direct=True) for _ in range(repeats)]
    t_new, tl_new, clock_new, stats = min(runs, key=lambda r: r[0])
    runs = [run_schedule(big, kernel="heap", scheduler="scan",
                         direct=True) for _ in range(repeats)]
    t_ablate, tl_ablate, clock_ablate, _ = min(runs, key=lambda r: r[0])
    t_seed = min(run_schedule(seed_jobs, kernel="heap", scheduler="scan",
                              direct=False)[0] for _ in range(repeats))

    results = {
        "smoke": SMOKE,
        "raw_kernel": {
            "hold": {"pending": hold_pending, "ops": hold_ops,
                     "heap_ns_per_event": hold_heap,
                     "calendar_ns_per_event": hold_cal,
                     "speedup": hold_heap / max(hold_cal, 1e-12)},
            "drain": {"count": drain_count,
                      "heap_ns_per_event": drain_heap,
                      "calendar_ns_per_event": drain_cal,
                      "speedup": drain_heap / max(drain_cal, 1e-12)},
            "heap_ns_per_event": raw_heap_ns,
            "calendar_ns_per_event": raw_cal_ns,
            "heap_events_per_sec": 1e9 / raw_heap_ns,
            "calendar_events_per_sec": 1e9 / raw_cal_ns,
            "speedup": raw_speedup,
        },
        "kernel_end_to_end": {
            "pending": env_pending, "extra": env_extra,
            "heap_ns_per_event": env_heap,
            "calendar_ns_per_event": env_cal,
            "speedup": env_heap / max(env_cal, 1e-12),
        },
        "packed_dispatch": {
            "pending": env_pending, "extra": env_extra,
            "heap_ns_per_event": pk_heap,
            "calendar_ns_per_event": pk_cal,
            "heap_events_per_sec": 1e9 / pk_heap,
            "calendar_events_per_sec": 1e9 / pk_cal,
            # Packed records vs Event objects, same kernel, same load:
            # what the handler table buys over callback dispatch.
            "speedup": env_cal / max(pk_cal, 1e-12),
        },
        "scheduler": {
            "jobs": big,
            "seed_jobs": seed_jobs,
            "new_stack_host_s": t_new,
            "ablation_heap_scan_host_s": t_ablate,
            "seed_stack_host_s": t_seed,
            "speedup_vs_seed": t_seed / max(t_new, 1e-12),
            "wake_path_speedup": t_ablate / max(t_new, 1e-12),
            "simulated_end_s": clock_new,
            "timelines_identical": tl_new == tl_ablate,
            **stats,
        },
        "speedup": raw_speedup,
        "speedup_definition": (
            "raw event-queue kernel events/sec, calendar vs seed heap, "
            "blended over the hold model and the arrival-storm drain at "
            "the stated populations; scheduler.speedup_vs_seed compares "
            "the full new stack scheduling {big} synthetic jobs against "
            "the seed stack (heap kernel + scan queue + launched rank "
            "processes) scheduling {seed} jobs; "
            "packed_dispatch.speedup compares bare packed records "
            "(call_at + handler table) against Event objects through "
            "the same Environment.run() loop at the same load"
        ).format(big=big, seed=seed_jobs),
    }
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows = [
        ["raw hold", f"{hold_heap:.0f} ns", f"{hold_cal:.0f} ns",
         f"{hold_heap / hold_cal:.2f}x"],
        ["raw drain", f"{drain_heap:.0f} ns", f"{drain_cal:.0f} ns",
         f"{drain_heap / drain_cal:.2f}x"],
        ["raw blended", f"{raw_heap_ns:.0f} ns", f"{raw_cal_ns:.0f} ns",
         f"{raw_speedup:.2f}x"],
        ["env hold", f"{env_heap:.0f} ns", f"{env_cal:.0f} ns",
         f"{env_heap / env_cal:.2f}x"],
        ["env packed", f"{pk_heap:.0f} ns", f"{pk_cal:.0f} ns",
         f"{env_cal / pk_cal:.2f}x vs events"],
        [f"schedule {big} jobs", f"{t_ablate:.2f} s (heap+scan)",
         f"{t_new:.2f} s", f"{t_ablate / t_new:.1f}x"],
        [f"seed stack {seed_jobs} jobs", f"{t_seed:.2f} s", "-", "-"],
    ]
    report(format_table(
        ["stage", "heap/seed", "calendar/new", "speedup"], rows,
        title=f"Calendar kernel + scheduler scale-out "
              f"({'smoke' if SMOKE else 'full'})"))
    report(f"raw kernel: {results['raw_kernel']['calendar_events_per_sec']:,.0f} "
           f"events/s calendar vs "
           f"{results['raw_kernel']['heap_events_per_sec']:,.0f} heap")
    report(f"packed dispatch through Environment.run(): "
           f"{results['packed_dispatch']['calendar_events_per_sec']:,.0f} "
           f"events/s calendar ({env_cal / pk_cal:.2f}x the Event-object "
           f"path)")
    report(f"scheduler: {big} jobs in {t_new:.2f}s on the new stack; "
           f"seed stack needed {t_seed:.2f}s for {seed_jobs} jobs; "
           f"wakes {stats['wakes_taken']} taken / "
           f"{stats['wakes_skipped']} filtered")
    report(f"10k-timeline determinism across stacks: "
           f"{results['scheduler']['timelines_identical']}")
    report.flush("BENCH_engine_smoke" if SMOKE else "BENCH_engine")

    # Decision equivalence is a hard invariant at any scale.
    assert results["scheduler"]["timelines_identical"], results
    assert clock_new == clock_ablate
    if not SMOKE:
        # Acceptance: >= 2x raw kernel events/sec over the heap, and the
        # 10k-job workload schedules in under the seed stack's 2k time.
        assert raw_speedup >= 2.0, results
        assert t_new < t_seed, results
        # The Environment layer must keep a measurable share of the win.
        assert results["kernel_end_to_end"]["speedup"] > 1.05, results
        # PR-6 acceptance: packed records through Environment.run()
        # beat the Event-object path by a wide margin and clear half a
        # million events/sec at a 300k steady population (the PR-4
        # Event-object baseline at this load was ~289k events/sec, so
        # this floor encodes the >= 2x-vs-PR-4 target with noise room;
        # dispatch-bound loads at smaller populations clear 1M).
        assert results["packed_dispatch"]["calendar_events_per_sec"] \
            >= 500_000, results
        assert results["packed_dispatch"]["speedup"] >= 1.3, results
