"""Shared benchmark plumbing: result files + console echo."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Collects experiment text; writes it to benchmarks/results/ and
    echoes it so `pytest -s` (and the tee'd logs) show the tables."""
    RESULTS_DIR.mkdir(exist_ok=True)

    class Reporter:
        def __init__(self):
            self.chunks: list[str] = []
            self.name = "experiment"

        def __call__(self, text: str) -> None:
            self.chunks.append(text)
            print(text)

        def flush(self, name: str) -> None:
            self.name = name
            path = RESULTS_DIR / f"{name}.txt"
            path.write_text("\n".join(self.chunks) + "\n")

    return Reporter()
