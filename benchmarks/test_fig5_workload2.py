"""Figure 5 + Table 5: workload W2 — shrinking to admit queued jobs.

W2 starts LU(21000) at 16 processors and Jacobi(8000) at 10; the
master-worker job arrives at t=560 and the FFT at t=650 while most of
the machine is busy.  The paper's story: LU expands early, finds its
sweet spot, then *shrinks* to admit the master-worker job; the
master-worker job later shrinks for the FFT.  Because jobs spend most
of their lives near their initial allocations, dynamic scheduling only
modestly beats static (Table 5's differences are small).
"""

from __future__ import annotations

import pytest

from repro.core import ReshapeFramework
from repro.metrics import (
    render_allocation_history,
    render_busy_processors,
    turnaround_table,
)
from repro.workloads import build_workload2
from repro.workloads.paper import WORKLOAD2_PROCESSORS


def run_workload(dynamic: bool):
    fw = ReshapeFramework(num_processors=WORKLOAD2_PROCESSORS,
                          dynamic=dynamic)
    jobs = build_workload2(fw, iterations=10)
    fw.run()
    return fw, jobs


@pytest.mark.benchmark(group="fig5")
def test_fig5_workload2(benchmark, report):
    state = {}

    def run_both():
        state["static"] = run_workload(dynamic=False)
        state["dynamic"] = run_workload(dynamic=True)

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    fw_s, jobs_s = state["static"]
    fw_d, jobs_d = state["dynamic"]

    report("Figure 5(a) — W2 processor allocation history (dynamic)")
    report(render_allocation_history(fw_d.timeline))
    report("\nFigure 5(b) — W2 total busy processors")
    report(render_busy_processors(fw_s.timeline, fw_d.timeline))
    report("\n" + turnaround_table(jobs_s, jobs_d,
                                   title="Table 5 — W2 turn-around"))
    report(f"\nutilization: static {fw_s.utilization():.1%}  "
           f"dynamic {fw_d.utilization():.1%}")

    for jobs in (jobs_s, jobs_d):
        for job in jobs.values():
            assert job.turnaround is not None, job.name

    # The defining W2 event: a running job shrank to admit a queued one.
    shrinks = [c for c in fw_d.timeline.changes if c.reason == "shrink"]
    assert shrinks, "W2 must exhibit a shrink-to-admit"
    # LU expanded beyond its initial 16 at some point.
    lu_points = [c for c in fw_d.timeline.changes
                 if c.job_name == "LU" and c.reason == "expand"]
    assert lu_points

    # Table 5 shape: dynamic is no worse than static overall, but the
    # advantage is small compared to W1 (jobs run near their initial
    # allocations most of the time).
    total_s = sum(j.turnaround for j in jobs_s.values())
    total_d = sum(j.turnaround for j in jobs_d.values())
    assert total_d <= total_s * 1.05
    gain = (total_s - total_d) / total_s
    report(f"\naggregate turn-around gain: {gain:.1%} "
           f"(paper W2 gain is small, ~4%)")
    report.flush("fig5_workload2")
