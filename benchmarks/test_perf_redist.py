"""Micro-benchmark: redistribution data-path throughput (host wall-clock).

Measures, on the paper's 12000^2 LU matrix cut into 120x120 blocks, the
three layers the vectorization PR touched, each against the per-block
loop reference implementation it replaced:

* **schedule build** — cold circulant construction vs the LRU-cached
  lookup that repeated resize points hit;
* **bookkeeping** — per-message byte counting (the part of the data path
  that runs in *every* mode, phantom included) block-by-block vs
  vectorized + cached;
* **pack/unpack** — the materialized-mode copy path, per-block slices vs
  one numpy gather/scatter per aggregated message.  This one is memory-
  bandwidth-bound at 100x100-element blocks, so its speedup is reported
  as observed throughput, not asserted.

Results go to ``BENCH_redist.json`` at the repository root (and a
human-readable table under ``benchmarks/results/``).  ``BENCH_SMOKE=1``
shrinks the problem for CI and skips the speedup assertions.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.blacs import ProcessGrid
from repro.cluster import Machine, MachineSpec
from repro.darray import (
    Descriptor,
    DistributedMatrix,
    copy_rect,
    release_strips,
)
from repro.metrics import format_table
from repro.mpi import World
from repro.redist import redistribute
from repro.redist.redistribute import (
    _message_nbytes,
    _message_nbytes_loop,
    _pack_blocks_loop,
    _unpack_blocks_loop,
)
from repro.redist.schedule import build_2d_schedule
from repro.redist.tables import cached_2d_schedule, cached_2d_traffic
from repro.simulate import Environment

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: The paper's Figure 3(a) trace: the 12000^2 LU job walking through
#: its processor configurations; every hop is one redistribution.
RESIZE_SEQUENCE = [(1, 4), (2, 3), (2, 4), (3, 3), (3, 4), (4, 4)]

#: Full runs refresh the committed artifact at the repo root; smoke
#: runs (CI) write next to the other benchmark outputs so they never
#: clobber the committed full-scale numbers.
_ROOT = pathlib.Path(__file__).parents[1]
JSON_PATH = (_ROOT / "benchmarks" / "results" / "BENCH_redist_smoke.json"
             if SMOKE else _ROOT / "BENCH_redist.json")


def _problem():
    if SMOKE:
        return 1200, 50        # 24x24 blocks
    return 12000, 100          # 120x120 blocks


def bookkeeping_sweep(desc, pairs, *, loop: bool) -> None:
    """One resize-point pass: build every schedule and count every
    message's bytes twice (send and receive side), as the driver does."""
    for old, new in pairs:
        if loop:
            sched = build_2d_schedule(desc.row_blocks, desc.col_blocks,
                                      old, new)
            for msg in sched.messages:
                _message_nbytes_loop(desc, msg)
                _message_nbytes_loop(desc, msg)
        else:
            sched = cached_2d_schedule(desc.row_blocks, desc.col_blocks,
                                       old, new)
            cached_2d_traffic(desc.row_blocks, desc.col_blocks, old, new,
                              desc.m, desc.n, desc.mb, desc.nb,
                              desc.itemsize)
            for msg in sched.messages:
                _message_nbytes(desc, msg)
                _message_nbytes(desc, msg)


def test_perf_redistribution_data_path(report):
    n, block = _problem()
    old_grid, new_grid = ProcessGrid(2, 2), ProcessGrid(2, 3)
    desc = Descriptor(m=n, n=n, mb=block, nb=block, grid=old_grid)
    new_desc = desc.with_grid(new_grid)
    pairs = [(a, b) for a, b in zip(RESIZE_SEQUENCE, RESIZE_SEQUENCE[1:])]
    pairs.append((old_grid.shape, new_grid.shape))

    # -- schedule build: cold vs cached --------------------------------
    reps = 3 if SMOKE else 10
    t0 = time.perf_counter()
    for _ in range(reps):
        build_2d_schedule(desc.row_blocks, desc.col_blocks,
                          old_grid.shape, new_grid.shape)
    t_sched_cold = (time.perf_counter() - t0) / reps
    cached_2d_schedule(desc.row_blocks, desc.col_blocks,
                       old_grid.shape, new_grid.shape)  # prime
    t0 = time.perf_counter()
    for _ in range(reps * 100):
        cached_2d_schedule(desc.row_blocks, desc.col_blocks,
                           old_grid.shape, new_grid.shape)
    t_sched_cached = (time.perf_counter() - t0) / (reps * 100)

    # -- bookkeeping: loop vs vectorized + cached ----------------------
    sweeps = 2 if SMOKE else 10
    t0 = time.perf_counter()
    for _ in range(sweeps):
        bookkeeping_sweep(desc, pairs, loop=True)
    t_book_loop = (time.perf_counter() - t0) / sweeps
    bookkeeping_sweep(desc, pairs, loop=False)  # prime the caches
    t0 = time.perf_counter()
    for _ in range(sweeps):
        bookkeeping_sweep(desc, pairs, loop=False)
    t_book_vec = (time.perf_counter() - t0) / sweeps

    # -- pack/unpack: loop vs vectorized (materialized copies) ---------
    src = DistributedMatrix(desc)
    for r in range(old_grid.size):
        loc = src.local(r)
        loc[:] = np.add.outer(np.arange(loc.shape[0], dtype=np.float64),
                              np.arange(loc.shape[1], dtype=np.float64))
    schedule = build_2d_schedule(desc.row_blocks, desc.col_blocks,
                                 old_grid.shape, new_grid.shape)
    routed = [(msg, old_grid.rank_of(*msg.src), new_grid.rank_of(*msg.dst))
              for msg in schedule.messages]

    t_loop_target = DistributedMatrix(new_desc)
    t_vec_target = DistributedMatrix(new_desc)

    def run_loop():
        for msg, sr, dr in routed:
            _unpack_blocks_loop(t_loop_target, dr,
                                _pack_blocks_loop(src, sr, msg))

    def run_vec():
        # The driver's data path: local-copy messages are fused into one
        # direct src->dst scatter; wire messages pack into pooled strips
        # that the unpack side recycles (repro.darray.strip_pool).
        for msg, sr, dr in routed:
            if sr == dr:
                copy_rect(src, sr, t_vec_target, dr,
                          msg.row_blocks, msg.col_blocks)
                continue
            strips = src.pack_rect(sr, msg.row_blocks, msg.col_blocks,
                                   pooled=True)
            t_vec_target.unpack_rect(dr, msg.row_blocks, msg.col_blocks,
                                     strips)
            release_strips(strips)

    # Alternating rounds; the minimum discounts first-touch page
    # faults and scheduler noise on a shared host (the copy path is
    # memory-bandwidth-bound, so single samples swing with ambient
    # load).
    t_pack_loop = float("inf")
    t_pack_vec = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        run_loop()
        t_pack_loop = min(t_pack_loop, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_vec()
        t_pack_vec = min(t_pack_vec, time.perf_counter() - t0)

    for r in range(new_grid.size):
        np.testing.assert_array_equal(t_loop_target.local(r),
                                      t_vec_target.local(r))

    # -- end-to-end: the full simulated redistribution (phantom) -------
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=16))
    world = World(env, machine, launch_overhead=0.0)
    phantom = DistributedMatrix(desc, materialized=False)
    sim = {}

    def main(comm):
        res = yield from redistribute(comm, phantom, new_grid)
        sim[comm.rank] = res

    world.launch(main, processors=list(range(new_grid.size)))
    t0 = time.perf_counter()
    env.run()
    t_end_to_end = time.perf_counter() - t0

    payload_gb = desc.global_nbytes / 1e9
    results = {
        "matrix": n,
        "block": block,
        "blocks_per_dim": desc.row_blocks,
        "grids": [list(old_grid.shape), list(new_grid.shape)],
        "smoke": SMOKE,
        "schedule_build": {
            "cold_s": t_sched_cold,
            "cached_s": t_sched_cached,
            "speedup": t_sched_cold / max(t_sched_cached, 1e-12),
        },
        "bookkeeping": {
            "loop_s": t_book_loop,
            "vectorized_s": t_book_vec,
            "speedup": t_book_loop / max(t_book_vec, 1e-12),
        },
        "pack_unpack": {
            "loop_s": t_pack_loop,
            "vectorized_s": t_pack_vec,
            "loop_GBps": payload_gb / t_pack_loop,
            "vectorized_GBps": payload_gb / t_pack_vec,
            "speedup": t_pack_loop / max(t_pack_vec, 1e-12),
        },
        "end_to_end_phantom": {
            "wallclock_s": t_end_to_end,
            "simulated_s": sim[0].elapsed,
        },
        # Headline number: the schedule/byte-count bookkeeping that runs
        # in every mode (the copy path is memory-bandwidth-bound and is
        # reported as throughput above).
        "speedup": t_book_loop / max(t_book_vec, 1e-12),
        "speedup_definition": (
            "per-block loop vs vectorized+cached schedule and byte-count "
            "bookkeeping over the Fig 3(a) resize sequence"),
    }
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows = [
        ["schedule build", f"{t_sched_cold * 1e3:.3f}",
         f"{t_sched_cached * 1e3:.3f}",
         f"{results['schedule_build']['speedup']:.1f}x"],
        ["bookkeeping", f"{t_book_loop * 1e3:.3f}",
         f"{t_book_vec * 1e3:.3f}",
         f"{results['bookkeeping']['speedup']:.1f}x"],
        ["pack+unpack", f"{t_pack_loop * 1e3:.3f}",
         f"{t_pack_vec * 1e3:.3f}",
         f"{results['pack_unpack']['speedup']:.1f}x"],
    ]
    report(format_table(
        ["stage", "loop (ms)", "vectorized (ms)", "speedup"], rows,
        title=f"Redistribution data path — {n}^2, {block}x{block} blocks"
              f" ({'smoke' if SMOKE else 'full'})"))
    report(f"end-to-end phantom simulation: {t_end_to_end * 1e3:.1f} ms "
           f"host for {sim[0].elapsed:.3f} s simulated")
    report.flush("BENCH_redist_smoke" if SMOKE else "BENCH_redist")

    assert results["speedup"] > 0
    if not SMOKE:
        # Acceptance: the bookkeeping data path of the 12000^2, 120-block
        # redistribution is at least 5x faster than the loop reference.
        assert results["speedup"] >= 5.0, results
        assert results["schedule_build"]["speedup"] >= 5.0, results
        # The copy path must beat the loop reference: fused local
        # copies + pooled strips recover the PR 2 regression (0.95x)
        # and then some.
        assert results["pack_unpack"]["speedup"] >= 1.0, results
