"""Figure 3(b): static vs checkpoint-resizing vs ReSHAPE-resizing.

For each of the five applications: total computation (iteration) time
and total redistribution time under three strategies — static
scheduling, dynamic resizing with file-based checkpoint/restart through
one node, and dynamic resizing with the ReSHAPE redistribution library.

Paper shape: checkpointing costs several times more than ReSHAPE
redistribution (8.3x for LU, 4.5x MM, 14.5x Jacobi, 7.9x FFT) and the
master-worker job shows no difference (it has no data).
"""

from __future__ import annotations

import pytest

from repro.core import ReshapeFramework
from repro.metrics import format_table
from repro.workloads.paper import make_application

#: (kind, problem size, starting config) — §4.1.2's experiment setup.
CASES = [
    ("lu", 12000, (2, 2)),
    ("mm", 14000, (2, 2)),
    ("masterworker", 20000, (1, 4)),
    ("jacobi", 8000, (4, 1)),
    ("fft", 8192, (4, 1)),
]

STRATEGIES = ("static", "checkpoint", "reshape")


def run_one(kind: str, size: int, config, strategy: str):
    fw = ReshapeFramework(
        num_processors=36,
        dynamic=(strategy != "static"),
        redistribution_method=("checkpoint" if strategy == "checkpoint"
                               else "reshape"))
    app = make_application(kind, size, iterations=10)
    job = fw.submit(app, config)
    fw.run()
    iter_time = sum(rec[2] for rec in job.iteration_log)
    return iter_time, job.redistribution_time


@pytest.mark.benchmark(group="fig3b")
def test_fig3b_scheduling_strategies(benchmark, report):
    results: dict[tuple[str, str], tuple[float, float]] = {}

    def run_all():
        for kind, size, config in CASES:
            for strategy in STRATEGIES:
                results[(kind, strategy)] = run_one(kind, size, config,
                                                    strategy)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for kind, size, _cfg in CASES:
        for strategy in STRATEGIES:
            it, rd = results[(kind, strategy)]
            rows.append([f"{kind}({size})", strategy, it, rd, it + rd])
    report(format_table(
        ["application", "strategy", "iteration time (s)",
         "redistribution (s)", "total (s)"], rows,
        title="Figure 3(b) — performance per scheduling strategy"))

    ratios = {}
    for kind, _size, _cfg in CASES:
        _, rd_ckpt = results[(kind, "checkpoint")]
        _, rd_resh = results[(kind, "reshape")]
        if rd_resh > 0:
            ratios[kind] = rd_ckpt / rd_resh
    report("\ncheckpoint/ReSHAPE redistribution cost ratios: " +
           ", ".join(f"{k}={v:.1f}x" for k, v in ratios.items()) +
           "   (paper: LU 8.3x, MM 4.5x, Jacobi 14.5x, FFT 7.9x)")

    # Checkpointing is several times more expensive wherever there is
    # data to move.
    for kind in ("lu", "mm", "jacobi", "fft"):
        assert ratios[kind] > 2.0, kind
    # Master-worker has nothing to redistribute: both dynamic strategies
    # report zero redistribution cost.
    assert results[("masterworker", "checkpoint")][1] == 0.0
    assert results[("masterworker", "reshape")][1] == 0.0
    # Dynamic resizing (ReSHAPE) beats static scheduling in total time
    # for the scalable data-parallel applications.
    for kind in ("lu", "mm"):
        it_s, rd_s = results[(kind, "static")]
        it_r, rd_r = results[(kind, "reshape")]
        assert it_r + rd_r < it_s + rd_s, kind
    report.flush("fig3b_strategies")
