"""Figure 4 + Table 4: workload W1, static vs ReSHAPE dynamic scheduling.

Five jobs (LU 21000, MM 14000, Master-worker, Jacobi 8000, FFT 8192) on
36 processors with staggered arrivals.  Reproduced artifacts:

* Fig 4(a) — per-job processor-allocation history under ReSHAPE;
* Fig 4(b) — total busy processors, static vs dynamic;
* Table 4 — per-job turn-around times and the utilization gap
  (paper: 39.7% static vs 70.7% dynamic).
"""

from __future__ import annotations

import pytest

from repro.core import ReshapeFramework
from repro.metrics import (
    render_allocation_history,
    render_busy_processors,
    turnaround_table,
)
from repro.workloads import build_workload1
from repro.workloads.paper import WORKLOAD1_PROCESSORS


def run_workload(dynamic: bool):
    fw = ReshapeFramework(num_processors=WORKLOAD1_PROCESSORS,
                          dynamic=dynamic)
    jobs = build_workload1(fw, iterations=10)
    fw.run()
    return fw, jobs


@pytest.mark.benchmark(group="fig4")
def test_fig4_workload1(benchmark, report):
    state = {}

    def run_both():
        state["static"] = run_workload(dynamic=False)
        state["dynamic"] = run_workload(dynamic=True)

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    fw_s, jobs_s = state["static"]
    fw_d, jobs_d = state["dynamic"]

    report("Figure 4(a) — W1 processor allocation history (dynamic)")
    report(render_allocation_history(fw_d.timeline))
    report("\nFigure 4(b) — W1 total busy processors")
    report(render_busy_processors(fw_s.timeline, fw_d.timeline))
    report("\n" + turnaround_table(jobs_s, jobs_d,
                                   title="Table 4 — W1 turn-around"))

    util_s = fw_s.utilization()
    util_d = fw_d.utilization()
    report(f"\nutilization: static {util_s:.1%}  dynamic {util_d:.1%}"
           f"   (paper: 39.7% vs 70.7%)")

    # Everything finished, under both modes.
    for jobs in (jobs_s, jobs_d):
        for job in jobs.values():
            assert job.turnaround is not None, job.name

    # Headline claims: dynamic scheduling lifts utilization substantially
    # and improves turn-around for the long-running scalable jobs.
    assert util_d > util_s + 0.10
    for name in ("LU", "MM", "Jacobi"):
        assert jobs_d[name].turnaround < jobs_s[name].turnaround, name
    # The master-worker job finished before processors freed up in the
    # paper and barely changed; allow either direction but within 25%.
    mw_s = jobs_s["Master-worker"].turnaround
    mw_d = jobs_d["Master-worker"].turnaround
    assert mw_d < mw_s * 1.25
    # Dynamic timeline actually contains resizes.
    reasons = {c.reason for c in fw_d.timeline.changes}
    assert "expand" in reasons
    report.flush("fig4_workload1")
