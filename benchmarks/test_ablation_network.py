"""Ablation: network-model features.

Quantifies which network-model features shape LU's scaling curve.  The
headline finding: for broadcast-structured dense kernels the sweet-spot
phenomenon is *latency/software-overhead driven* — removing the
contention penalty or the backplane limit barely moves LU (those two
features bite on redistribution fan-in instead, see the schedule
ablation), while the ideal network (negligible latency) scales
monotonically to 48 processors.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import run_static
from repro.cluster.machine import MachineSpec
from repro.metrics import format_table
from repro.workloads.paper import make_application

CONFIGS = [(2, 2), (3, 4), (5, 5), (6, 8)]


def scaling_curve(spec: MachineSpec) -> dict[int, float]:
    out = {}
    for config in CONFIGS:
        app = make_application("lu", 12000, iterations=1)
        # Reference collective path for every variant: the fast path's
        # structural gate depends on the spec under ablation (backplane,
        # bandwidth), and mixing paths would contaminate the ~zero
        # physics deltas this ablation measures with tied-event
        # micro-ordering noise (docs/phantom.md).
        res = run_static(app, config, machine_spec=spec,
                         collective_fastpath=False)
        out[config[0] * config[1]] = res.mean_iteration_time
    return out


@pytest.mark.benchmark(group="ablation-network")
def test_ablation_network_features(benchmark, report):
    base = MachineSpec()
    variants = {
        "full model": base,
        "no contention penalty": dataclasses.replace(
            base, contention_penalty=0.0),
        "no backplane limit": dataclasses.replace(
            base, backplane_bandwidth=float("inf")),
        "ideal network": dataclasses.replace(
            base, contention_penalty=0.0,
            backplane_bandwidth=float("inf"),
            latency=1e-6, software_overhead=0.0,
            nic_bandwidth=1e9),
    }
    curves = {}

    def run_all():
        for name, spec in variants.items():
            curves[name] = scaling_curve(spec)
        return curves

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    procs = sorted(curves["full model"])
    rows = [[name] + [curve[p] for p in procs]
            for name, curve in curves.items()]
    report(format_table(
        ["network model"] + [f"{p} procs" for p in procs], rows,
        title="Ablation — LU(12000) iteration time per network model"))

    # Every feature removed makes the big-grid configuration faster.
    p_big = procs[-1]
    assert curves["no backplane limit"][p_big] <= \
        curves["full model"][p_big]
    assert curves["ideal network"][p_big] < curves["full model"][p_big]
    # On the ideal network, scaling is monotone to 48 processors — the
    # sweet-spot phenomenon comes from the network model, not the code.
    ideal = curves["ideal network"]
    assert all(ideal[a] > ideal[b]
               for a, b in zip(procs, procs[1:]))
    report.flush("ablation_network")
