"""Ablation: remap-scheduler policy variants.

DESIGN.md calls out two policy knobs:

* sweet-spot detection — the paper's simple any-improvement rule vs the
  threshold detector it sketches as future work;
* expansion-target choice — next-larger configuration vs greedily
  jumping to the largest that fits.

The bench runs LU(12000) alone on 36 processors under each combination
and reports sweet spot, total redistribution cost and turn-around.
"""

from __future__ import annotations

import pytest

from repro.core import ReshapeFramework, SweetSpotPolicy, ThresholdSweetSpot
from repro.core.policies import ExpansionPolicy, GreedyExpansionPolicy
from repro.metrics import format_table
from repro.workloads.paper import make_application

VARIANTS = {
    "simple + next-larger": (SweetSpotPolicy(), ExpansionPolicy()),
    "threshold(5%) + next-larger": (ThresholdSweetSpot(0.05),
                                    ExpansionPolicy()),
    "simple + greedy": (SweetSpotPolicy(), GreedyExpansionPolicy()),
    "threshold(5%) + greedy": (ThresholdSweetSpot(0.05),
                               GreedyExpansionPolicy()),
}


def run_variant(sweet_spot, expansion):
    fw = ReshapeFramework(num_processors=36, sweet_spot=sweet_spot,
                          expansion=expansion)
    app = make_application("lu", 12000, iterations=10)
    job = fw.submit(app, config=(1, 2))
    fw.run()
    final_procs = job.iteration_log[-1][1]
    return {
        "sweet_spot": final_procs[0] * final_procs[1],
        "redist": job.redistribution_time,
        "turnaround": job.turnaround,
        "resizes": sum(1 for c in fw.timeline.changes
                       if c.reason in ("expand", "shrink")),
    }


@pytest.mark.benchmark(group="ablation-policies")
def test_ablation_remap_policies(benchmark, report):
    results = {}

    def run_all():
        for name, (ss, ex) in VARIANTS.items():
            results[name] = run_variant(ss, ex)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, r["sweet_spot"], r["resizes"], r["redist"],
             r["turnaround"]] for name, r in results.items()]
    report(format_table(
        ["policy", "final procs", "resizes", "redist (s)",
         "turnaround (s)"], rows,
        title="Ablation — remap policies, LU(12000) on 36 processors"))

    base = results["simple + next-larger"]
    strict = results["threshold(5%) + next-larger"]
    greedy = results["simple + greedy"]
    # A stricter sweet-spot test settles at or below the simple rule's
    # allocation (it rejects marginal gains).
    assert strict["sweet_spot"] <= base["sweet_spot"]
    # Greedy expansion reaches its final size in fewer resizes and so
    # pays fewer redistribution events.
    assert greedy["resizes"] <= base["resizes"]
    # All variants finish.
    assert all(r["turnaround"] is not None for r in results.values())
    report.flush("ablation_policies")
