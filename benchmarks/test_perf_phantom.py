"""Micro-benchmark: phantom fast path host wall-clock (before/after).

Runs the paper's Figure 4 and Figure 5 experiments — workloads W1 and
W2, static and dynamic scheduling — entirely in phantom mode, twice:
once with the phantom fast paths disabled (the generator transfer
chain, generator collectives, sampled LU, reference delivery) and once
enabled (the network-replay point-to-point fast path, arithmetic
collectives, closed-form whole-call LU walks, generalized iteration
replay, cached per-rank redistribution delivery).  The two runs must
agree on the *simulated* clock — the fast path is clock-equivalent by
contract — while the *host* clock is the thing being bought: the
acceptance bar is a further >= 2x host-time reduction over the PR 2
fast path (which itself was >= 10x over the event path).

Two more sections isolate the hot paths: per-message host cost of
phantom point-to-point traffic, and the redistribution delivery lookup
(per-step scan vs cached per-rank plan) on the paper's 12000^2 matrix.

Results go to ``BENCH_phantom.json`` at the repository root (and a
human-readable table under ``benchmarks/results/``).  ``BENCH_SMOKE=1``
shrinks the workload for CI and skips the speedup assertions.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.blacs import ProcessGrid
from repro.cluster import Machine, MachineSpec
from repro.core import ReshapeFramework
from repro.darray import Descriptor
from repro.metrics import format_table
from repro.mpi import Phantom, World
from repro.redist.tables import (
    build_rank_plans,
    cached_rank_plans,
    cached_2d_schedule,
    message_nbytes,
)
from repro.simulate import Environment
from repro.workloads import build_workload1, build_workload2
from repro.workloads.paper import (
    WORKLOAD1_PROCESSORS,
    WORKLOAD2_PROCESSORS,
)

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

_ROOT = pathlib.Path(__file__).parents[1]
JSON_PATH = (_ROOT / "benchmarks" / "results" / "BENCH_phantom_smoke.json"
             if SMOKE else _ROOT / "BENCH_phantom.json")

#: PR 2's committed fig5 numbers (BENCH_phantom.json at the PR 2
#: merge): host speedup of the fast leg over the event path, and the
#: absolute fast-leg host time on the reference host.  The acceptance
#: comparison uses the *ratio* — both of this run's legs see the same
#: host conditions, so speedup-over-speedup is load-insensitive, while
#: absolute seconds against an idle-host constant are not.
PR2_FIG5_SPEEDUP = 12.462
PR2_FIG5_AFTER_HOST_S = 4.4505


def run_workload_pair(build, processors: int, fastpath: bool,
                      iterations: int):
    """One full figure experiment (static + dynamic) for a workload."""
    t0 = time.perf_counter()
    sim_clocks = []
    for dynamic in (False, True):
        fw = ReshapeFramework(num_processors=processors, dynamic=dynamic)
        fw.world.collective_fastpath = fastpath
        fw.world.p2p_fastpath = fastpath
        jobs = build(fw, iterations=iterations)
        fw.run()
        assert all(j.turnaround is not None for j in jobs.values())
        sim_clocks.append(fw.env.now)
    return time.perf_counter() - t0, sim_clocks


def time_p2p_messages(fastpath: bool, messages: int):
    """Host seconds per phantom point-to-point message (chain of
    blocking send/recv pairs — the redistribution/master-worker shape)."""
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=2))
    world = World(env, machine, launch_overhead=0.0,
                  collective_fastpath=fastpath, p2p_fastpath=fastpath)

    def main(comm):
        if comm.rank == 0:
            for i in range(messages):
                yield from comm.send(Phantom(10_000), dest=1, tag=0)
                yield from comm.recv(source=1, tag=1)
        else:
            for i in range(messages):
                yield from comm.recv(source=0, tag=0)
                yield from comm.send(Phantom(8), dest=0, tag=1)

    world.launch(main, processors=[0, 1])
    t0 = time.perf_counter()
    env.run()
    return (time.perf_counter() - t0) / (2 * messages)


def time_delivery_lookup(desc, src_shape, dst_shape, reps: int):
    """Reference per-step scan vs cached per-rank plan lookup."""
    schedule = cached_2d_schedule(desc.row_blocks, desc.col_blocks,
                                  src_shape, dst_shape)
    src_grid, dst_grid = ProcessGrid(*src_shape), ProcessGrid(*dst_shape)
    nranks = max(src_grid.size, dst_grid.size)

    def scan_all_ranks():
        # What every rank of the old driver did per redistribution.
        for rank in range(nranks):
            for step in schedule.steps:
                for msg in step:
                    nbytes = message_nbytes(desc.m, desc.n, desc.mb,
                                            desc.nb, desc.itemsize, msg)
                    src_rank = src_grid.rank_of(*msg.src)
                    dst_rank = dst_grid.rank_of(*msg.dst)
                    if src_rank == rank and nbytes:
                        pass
                    if dst_rank == rank and src_rank != rank and nbytes:
                        pass

    t0 = time.perf_counter()
    for _ in range(reps):
        scan_all_ranks()
    t_scan = (time.perf_counter() - t0) / reps

    args = (desc.row_blocks, desc.col_blocks, src_shape, dst_shape,
            desc.m, desc.n, desc.mb, desc.nb, desc.itemsize)
    build_rank_plans(schedule, src_grid, dst_grid, desc.m, desc.n,
                     desc.mb, desc.nb, desc.itemsize)  # build cost paid once
    cached_rank_plans(*args)                           # prime the cache
    t0 = time.perf_counter()
    for _ in range(reps):
        plan = cached_rank_plans(*args)
        for rank in range(nranks):
            plan.rank_steps(rank)
    t_plan = (time.perf_counter() - t0) / reps
    return t_scan, t_plan


def test_perf_phantom_fast_path(report):
    iterations = 2 if SMOKE else 10

    t5_slow, clocks5_slow = run_workload_pair(
        build_workload2, WORKLOAD2_PROCESSORS, False, iterations)
    t5_fast, clocks5_fast = run_workload_pair(
        build_workload2, WORKLOAD2_PROCESSORS, True, iterations)
    fig5_speedup = t5_slow / max(t5_fast, 1e-12)
    fig5_drift = max(
        abs(a - b) / a for a, b in zip(clocks5_slow, clocks5_fast))

    t4_slow, clocks4_slow = run_workload_pair(
        build_workload1, WORKLOAD1_PROCESSORS, False, iterations)
    t4_fast, clocks4_fast = run_workload_pair(
        build_workload1, WORKLOAD1_PROCESSORS, True, iterations)
    fig4_speedup = t4_slow / max(t4_fast, 1e-12)
    fig4_drift = max(
        abs(a - b) / a for a, b in zip(clocks4_slow, clocks4_fast))

    msgs = 500 if SMOKE else 5000
    # Best of two runs per leg: the per-message cost is µs-scale, where
    # scheduler noise on a shared host dominates single samples.
    p2p_before = min(time_p2p_messages(False, msgs) for _ in range(2))
    p2p_after = min(time_p2p_messages(True, msgs) for _ in range(2))

    n, block = (1200, 50) if SMOKE else (12000, 100)
    desc = Descriptor(m=n, n=n, mb=block, nb=block,
                      grid=ProcessGrid(2, 2))
    t_scan, t_plan = time_delivery_lookup(desc, (2, 2), (2, 3),
                                          reps=3 if SMOKE else 10)

    results = {
        "smoke": SMOKE,
        "workload": "fig4 W1 + fig5 W2 (static + dynamic), phantom mode",
        "iterations": iterations,
        "fig5": {
            "before": {"host_s": t5_slow, "simulated_s": clocks5_slow},
            "after": {"host_s": t5_fast, "simulated_s": clocks5_fast},
            "speedup": fig5_speedup,
            "simulated_clock_max_rel_drift": fig5_drift,
        },
        "fig4": {
            "before": {"host_s": t4_slow, "simulated_s": clocks4_slow},
            "after": {"host_s": t4_fast, "simulated_s": clocks4_fast},
            "speedup": fig4_speedup,
            "simulated_clock_max_rel_drift": fig4_drift,
        },
        "pr2_fig5_after_host_s": PR2_FIG5_AFTER_HOST_S,
        "pr2_fig5_speedup": PR2_FIG5_SPEEDUP,
        "further_reduction_vs_pr2": fig5_speedup / PR2_FIG5_SPEEDUP,
        "further_reduction_vs_pr2_host_s": PR2_FIG5_AFTER_HOST_S /
        max(t5_fast, 1e-12),
        "p2p_per_message": {
            "messages": 2 * msgs,
            "before_us": p2p_before * 1e6,
            "after_us": p2p_after * 1e6,
            "speedup": p2p_before / max(p2p_after, 1e-12),
        },
        "speedup": fig5_speedup,
        "simulated_clock_max_rel_drift": max(fig5_drift, fig4_drift),
        "redist_delivery": {
            "matrix": n,
            "block": block,
            "scan_s": t_scan,
            "plan_s": t_plan,
            "speedup": t_scan / max(t_plan, 1e-12),
        },
        "speedup_definition": (
            "host wall-clock of the full fig5 experiment with the "
            "phantom fast paths off vs on (World.collective_fastpath + "
            "World.p2p_fastpath); further_reduction_vs_pr2 compares the "
            "fast leg against PR 2's committed fast leg"),
    }
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows = [
        ["fig5 pair (host)", f"{t5_slow:.2f}", f"{t5_fast:.2f}",
         f"{fig5_speedup:.1f}x"],
        ["fig4 pair (host)", f"{t4_slow:.2f}", f"{t4_fast:.2f}",
         f"{fig4_speedup:.1f}x"],
        ["p2p per message", f"{p2p_before * 1e6:.1f} us",
         f"{p2p_after * 1e6:.1f} us",
         f"{results['p2p_per_message']['speedup']:.1f}x"],
        ["delivery lookup", f"{t_scan * 1e3:.3f} ms",
         f"{t_plan * 1e3:.3f} ms",
         f"{results['redist_delivery']['speedup']:.0f}x"],
    ]
    report(format_table(
        ["stage", "before", "after", "speedup"], rows,
        title=f"Phantom fast path — fig4 W1 / fig5 W2 "
              f"({'smoke' if SMOKE else 'full'})"))
    report(f"fig5 simulated clocks before: {clocks5_slow}")
    report(f"fig5 simulated clocks after:  {clocks5_fast}  "
           f"(max rel drift {fig5_drift:.2e})")
    report(f"fig4 simulated clocks before: {clocks4_slow}")
    report(f"fig4 simulated clocks after:  {clocks4_fast}  "
           f"(max rel drift {fig4_drift:.2e})")
    report(f"fig5 vs PR 2 ({PR2_FIG5_SPEEDUP:.1f}x then): "
           f"{results['further_reduction_vs_pr2']:.1f}x further "
           f"({results['further_reduction_vs_pr2_host_s']:.1f}x by "
           f"absolute host seconds)")
    report.flush("BENCH_phantom_smoke" if SMOKE else "BENCH_phantom")

    # The fast path must not change the physics.
    assert fig5_drift < 1e-6, results
    assert fig4_drift < 1e-6, results
    assert fig5_speedup > 1.0, results
    if not SMOKE:
        # Acceptance: simulated clocks within 1e-9 of the event path,
        # >= 10x over the event path on both figure workloads, and
        # >= 2x further host-time reduction over the PR 2 fast path.
        assert fig5_drift < 1e-9, results
        assert fig4_drift < 1e-9, results
        assert fig5_speedup >= 10.0, results
        # fig4 lands around 10x on an idle host; W1's MM job still pays
        # live first iterations per configuration and the figure is
        # memory-heavy, so give it wide host-load headroom (the
        # committed BENCH_phantom.json carries the idle-host number).
        assert fig4_speedup >= 4.0, results
        assert results["further_reduction_vs_pr2"] >= 1.8, results
        # The blocking ping-pong chain keeps two heap events (deposit,
        # matched receive) out of the original ~eight — ~1.5x per
        # message on an idle host.  Individual µs-scale samples are too
        # noisy for a tight floor, so only guard against regression; the
        # fleet-level wins are asserted through the figure workloads
        # above.
        assert results["p2p_per_message"]["speedup"] > 1.0, results
        assert results["redist_delivery"]["speedup"] >= 10.0, results
