"""Micro-benchmark: phantom fast path host wall-clock (before/after).

Runs the paper's Figure 5 experiment — workload W2, static and dynamic
scheduling — entirely in phantom mode, twice: once with the phantom
fast path disabled (the generator-collective / sampled-LU / reference
delivery paths) and once enabled (aggregate-event collectives, cached
per-rank redistribution delivery, closed-form LU panel tables with O(1)
iteration replay).  The two runs must agree on the *simulated* clock —
the fast path is clock-equivalent by contract — while the *host* clock
is the thing being bought: the acceptance bar is a >= 10x reduction.

A second section times the redistribution delivery in isolation: the
per-step O(ranks x messages) scan the driver used to do versus the
cached per-rank plan lookup, on the paper's 12000^2 matrix.

Results go to ``BENCH_phantom.json`` at the repository root (and a
human-readable table under ``benchmarks/results/``).  ``BENCH_SMOKE=1``
shrinks the workload for CI and skips the speedup assertion.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.blacs import ProcessGrid
from repro.core import ReshapeFramework
from repro.darray import Descriptor
from repro.metrics import format_table
from repro.redist.tables import (
    build_rank_plans,
    cached_rank_plans,
    cached_2d_schedule,
    message_nbytes,
)
from repro.workloads import build_workload2
from repro.workloads.paper import WORKLOAD2_PROCESSORS

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

_ROOT = pathlib.Path(__file__).parents[1]
JSON_PATH = (_ROOT / "benchmarks" / "results" / "BENCH_phantom_smoke.json"
             if SMOKE else _ROOT / "BENCH_phantom.json")


def run_fig5_pair(fastpath: bool, iterations: int):
    """One full Figure 5 experiment (static + dynamic W2)."""
    t0 = time.perf_counter()
    sim_clocks = []
    for dynamic in (False, True):
        fw = ReshapeFramework(num_processors=WORKLOAD2_PROCESSORS,
                              dynamic=dynamic)
        fw.world.collective_fastpath = fastpath
        jobs = build_workload2(fw, iterations=iterations)
        fw.run()
        assert all(j.turnaround is not None for j in jobs.values())
        sim_clocks.append(fw.env.now)
    return time.perf_counter() - t0, sim_clocks


def time_delivery_lookup(desc, src_shape, dst_shape, reps: int):
    """Reference per-step scan vs cached per-rank plan lookup."""
    schedule = cached_2d_schedule(desc.row_blocks, desc.col_blocks,
                                  src_shape, dst_shape)
    src_grid, dst_grid = ProcessGrid(*src_shape), ProcessGrid(*dst_shape)
    nranks = max(src_grid.size, dst_grid.size)

    def scan_all_ranks():
        # What every rank of the old driver did per redistribution.
        for rank in range(nranks):
            for step in schedule.steps:
                for msg in step:
                    nbytes = message_nbytes(desc.m, desc.n, desc.mb,
                                            desc.nb, desc.itemsize, msg)
                    src_rank = src_grid.rank_of(*msg.src)
                    dst_rank = dst_grid.rank_of(*msg.dst)
                    if src_rank == rank and nbytes:
                        pass
                    if dst_rank == rank and src_rank != rank and nbytes:
                        pass

    t0 = time.perf_counter()
    for _ in range(reps):
        scan_all_ranks()
    t_scan = (time.perf_counter() - t0) / reps

    args = (desc.row_blocks, desc.col_blocks, src_shape, dst_shape,
            desc.m, desc.n, desc.mb, desc.nb, desc.itemsize)
    build_rank_plans(schedule, src_grid, dst_grid, desc.m, desc.n,
                     desc.mb, desc.nb, desc.itemsize)  # build cost paid once
    cached_rank_plans(*args)                           # prime the cache
    t0 = time.perf_counter()
    for _ in range(reps):
        plan = cached_rank_plans(*args)
        for rank in range(nranks):
            plan.rank_steps(rank)
    t_plan = (time.perf_counter() - t0) / reps
    return t_scan, t_plan


def test_perf_phantom_fast_path(report):
    iterations = 2 if SMOKE else 10

    t_slow, clocks_slow = run_fig5_pair(fastpath=False,
                                        iterations=iterations)
    t_fast, clocks_fast = run_fig5_pair(fastpath=True,
                                        iterations=iterations)
    speedup = t_slow / max(t_fast, 1e-12)
    clock_drift = max(
        abs(a - b) / a for a, b in zip(clocks_slow, clocks_fast))

    n, block = (1200, 50) if SMOKE else (12000, 100)
    desc = Descriptor(m=n, n=n, mb=block, nb=block,
                      grid=ProcessGrid(2, 2))
    t_scan, t_plan = time_delivery_lookup(desc, (2, 2), (2, 3),
                                          reps=3 if SMOKE else 10)

    results = {
        "smoke": SMOKE,
        "workload": "fig5 W2 (static + dynamic), phantom mode",
        "iterations": iterations,
        "before": {"host_s": t_slow, "simulated_s": clocks_slow},
        "after": {"host_s": t_fast, "simulated_s": clocks_fast},
        "speedup": speedup,
        "simulated_clock_max_rel_drift": clock_drift,
        "redist_delivery": {
            "matrix": n,
            "block": block,
            "scan_s": t_scan,
            "plan_s": t_plan,
            "speedup": t_scan / max(t_plan, 1e-12),
        },
        "speedup_definition": (
            "host wall-clock of the full fig5 experiment with the "
            "phantom fast path off vs on (World.collective_fastpath)"),
    }
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows = [
        ["fig5 pair (host)", f"{t_slow:.2f}", f"{t_fast:.2f}",
         f"{speedup:.1f}x"],
        ["delivery lookup", f"{t_scan * 1e3:.3f} ms",
         f"{t_plan * 1e3:.3f} ms",
         f"{results['redist_delivery']['speedup']:.0f}x"],
    ]
    report(format_table(
        ["stage", "before", "after", "speedup"], rows,
        title=f"Phantom fast path — fig5 W2 "
              f"({'smoke' if SMOKE else 'full'})"))
    report(f"simulated clocks before: {clocks_slow}")
    report(f"simulated clocks after:  {clocks_fast}  "
           f"(max rel drift {clock_drift:.2e})")
    report.flush("BENCH_phantom_smoke" if SMOKE else "BENCH_phantom")

    # The fast path must not change the physics.
    assert clock_drift < 1e-6, results
    assert speedup > 1.0, results
    if not SMOKE:
        # Acceptance: >= 10x host-time reduction on the fig5-scale
        # phantom workload.
        assert speedup >= 10.0, results
        assert results["redist_delivery"]["speedup"] >= 10.0, results
