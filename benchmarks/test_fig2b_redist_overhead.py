"""Figure 2(b): data-redistribution overhead at each expansion step.

Each point: the cost of redistributing an n x n block-cyclic matrix from
one Table 2 configuration to the next larger one.  Paper shape: cost
grows with matrix size, and for a fixed size *decreases* as the
processor count grows (less data per processor to move, more wires).
"""

from __future__ import annotations

import pytest

from repro.blacs import ProcessGrid
from repro.cluster import Machine, MachineSpec
from repro.darray import Descriptor, DistributedMatrix
from repro.metrics import format_table
from repro.mpi import World
from repro.redist import redistribute
from repro.simulate import Environment
from repro.workloads.paper import PROCESSOR_CONFIGS

SIZES = [8000, 12000, 14000, 16000, 20000, 21000, 24000]


def redistribution_cost(n: int, old: tuple[int, int],
                        new: tuple[int, int]) -> float:
    env = Environment()
    machine = Machine(env, MachineSpec())
    world = World(env, machine, launch_overhead=0.0)
    block = 120  # ScaLAPACK-ish block size for big dense matrices
    desc = Descriptor(m=n, n=n, mb=block, nb=block,
                      grid=ProcessGrid(*old))
    dm = DistributedMatrix(desc, materialized=False)
    out = {}

    def main(comm):
        res = yield from redistribute(comm, dm, ProcessGrid(*new))
        out[comm.rank] = res.elapsed

    nprocs = max(old[0] * old[1], new[0] * new[1])
    world.launch(main, processors=list(range(nprocs)))
    env.run()
    return out[0]


@pytest.mark.benchmark(group="fig2b")
def test_fig2b_redistribution_overhead(benchmark, report):
    curves: dict[int, list[tuple[int, float]]] = {}

    def run_all():
        for size in SIZES:
            configs = PROCESSOR_CONFIGS[("LU", size)]
            series = []
            for old, new in zip(configs, configs[1:]):
                cost = redistribution_cost(size, old, new)
                series.append((new[0] * new[1], cost))
            curves[size] = series
        return curves

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for size in SIZES:
        for procs, cost in curves[size]:
            rows.append([size, procs, cost])
    report(format_table(
        ["matrix size", "procs after expansion", "redistribution (s)"],
        rows,
        title="Figure 2(b) — redistribution overhead per expansion"))

    # Shape assertion 1: cost grows with matrix size (compare the first
    # expansion step of the smallest and largest sizes).
    assert curves[24000][0][1] > curves[8000][0][1]
    # Shape assertion 2: for a fixed size the cost *trend* is downward
    # as processors grow (the paper's wording); the cheapest expansion
    # comes after the first one.  The tail may tick back up once the
    # switch fabric saturates at very large grids.
    for size in SIZES:
        series = curves[size]
        assert min(c for _p, c in series[1:]) < series[0][1], size
    # Magnitude: the paper's Fig 2(b) spans roughly 2-23 seconds.
    all_costs = [c for s in curves.values() for _, c in s]
    assert min(all_costs) > 0.2
    assert max(all_costs) < 120.0
    report.flush("fig2b_redist_overhead")
