"""Figure 2(a): LU iteration time vs processor count, per matrix size.

Paper series: running time of one LU factorization for matrices of
8000..24000 over the Table 2 processor configurations.  The reproduced
shape: times fall steeply at small processor counts, flatten, and the
benefit of adding processors is far larger for big matrices.
"""

from __future__ import annotations

import pytest

from repro.api import run_static
from repro.cluster.machine import MachineSpec
from repro.metrics import format_table
from repro.workloads.paper import PROCESSOR_CONFIGS, make_application

#: Paper's reference curve for the 12000 series (Fig 3a table column).
PAPER_12000 = {2: 129.63, 4: 112.52, 6: 82.31, 9: 79.61, 12: 69.85,
               16: 74.91}

SIZES = [8000, 12000, 14000, 16000, 20000, 21000, 24000]


def _measure(size: int) -> dict[int, float]:
    out: dict[int, float] = {}
    for config in PROCESSOR_CONFIGS[("LU", size)]:
        app = make_application("lu", size, iterations=1)
        result = run_static(app, config, machine_spec=MachineSpec())
        out[config[0] * config[1]] = result.mean_iteration_time
    return out


@pytest.mark.benchmark(group="fig2a")
def test_fig2a_lu_scaling(benchmark, report):
    curves: dict[int, dict[int, float]] = {}

    def run_all():
        for size in SIZES:
            curves[size] = _measure(size)
        return curves

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    all_procs = sorted({p for c in curves.values() for p in c})
    rows = []
    for p in all_procs:
        rows.append([p] + [curves[s].get(p) for s in SIZES])
    report(format_table(
        ["procs"] + [f"n={s}" for s in SIZES], rows,
        title="Figure 2(a) — LU iteration time (s) vs processors"))

    # Shape assertions mirroring the paper's observations.
    for size in SIZES:
        curve = curves[size]
        procs = sorted(curve)
        # Strong improvement from the smallest to the largest-but-one
        # configuration for every size.
        assert curve[procs[0]] > curve[procs[-2]], size
    # Larger matrices gain more from resizing (paper: "performance
    # benefits are greater for larger problem sizes").
    def relative_gain(size):
        c = curves[size]
        ps = sorted(c)
        return (c[ps[0]] - min(c.values())) / c[ps[0]]

    assert relative_gain(24000) > relative_gain(8000)

    # The 12000 series stays within a factor ~2 of the paper's numbers
    # at small processor counts (the calibration anchor).
    sim = curves[12000]
    for procs in (2, 4, 6):
        assert sim[procs] == pytest.approx(PAPER_12000[procs], rel=0.6)
    report("\nPaper 12000 series: " + str(PAPER_12000))
    report.flush("fig2a_lu_scaling")
