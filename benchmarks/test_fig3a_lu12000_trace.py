"""Figure 3(a): the resize trace of LU(12000) under ReSHAPE.

The paper's table shows, per resize step: processor count, iteration
time T, the improvement dT, and the redistribution cost.  Its story:
the application grows as long as iterations get faster, overshoots once
(16 processors was worse than 12), is shrunk back, and holds for the
remaining iterations.

The reproduction runs the same experiment on the simulated cluster and
asserts the same story: monotone growth, exactly one overshoot/shrink
pair, then a hold at the sweet spot.
"""

from __future__ import annotations

import pytest

from repro.core import ReshapeFramework
from repro.metrics import format_table
from repro.workloads.paper import make_application


@pytest.mark.benchmark(group="fig3a")
def test_fig3a_lu12000_resize_trace(benchmark, report):
    state = {}

    def run():
        fw = ReshapeFramework(num_processors=36)
        app = make_application("lu", 12000, iterations=10)
        job = fw.submit(app, config=(1, 2))
        fw.run()
        state["fw"], state["job"] = fw, job
        return job

    benchmark.pedantic(run, rounds=1, iterations=1)
    fw, job = state["fw"], state["job"]

    rows = []
    prev_t = None
    for it, config, t, redist in job.iteration_log:
        procs = config[0] * config[1]
        dt = None if prev_t is None else prev_t - t
        rows.append([procs, t, dt, redist])
        prev_t = t
    report(format_table(
        ["Processors", "Iteration time (s)", "dT (s)",
         "Redistribution (s)"],
        rows, title="Figure 3(a) — LU(12000) resize trace under ReSHAPE"))

    procs_seq = [cfg[0] * cfg[1] for _, cfg, _, _ in job.iteration_log]
    times = {cfg[0] * cfg[1]: t for _, cfg, t, _ in job.iteration_log}

    # Grew from the starting set...
    assert procs_seq[0] == 2
    assert max(procs_seq) > procs_seq[0]
    # ...overshot exactly once: the largest visited size was slower than
    # the size before it, and the job was shrunk back and held there.
    peak = max(procs_seq)
    peak_idx = procs_seq.index(peak)
    assert peak_idx >= 1
    before_peak = procs_seq[peak_idx - 1]
    assert times[peak] > times[before_peak], \
        "the overshoot configuration should have been slower"
    # After the shrink the allocation holds at the sweet spot.
    tail = procs_seq[peak_idx + 1:]
    assert tail, "job should keep iterating after the shrink"
    assert all(p == before_peak for p in tail), \
        f"allocation should hold at {before_peak}, got {tail}"
    # Redistribution costs were recorded for every resize.
    resize_costs = [r for _, _, _, r in job.iteration_log if r > 0]
    assert len(resize_costs) >= 2

    report(f"\nsweet spot: {before_peak} processors "
           f"(paper: 12; overshoot at {peak}, paper: 16)")
    report.flush("fig3a_lu12000_trace")
