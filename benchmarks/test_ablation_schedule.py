"""Ablation: redistribution schedule quality.

DESIGN.md calls out the contention-free circulant schedule as a design
choice; this bench quantifies it against (a) the naive all-classes-in-
one-step schedule and (b) the general bipartite edge-coloring
construction, on an expansion that fans many senders into few NICs.
"""

from __future__ import annotations

import pytest

from repro.blacs import ProcessGrid
from repro.cluster import Machine, MachineSpec
from repro.darray import Descriptor, DistributedMatrix
from repro.metrics import format_table
from repro.mpi import World
from repro.redist import (
    build_1d_schedule,
    build_naive_1d_schedule,
    edge_coloring_schedule,
    redistribute,
)
from repro.redist.schedule import Message2D, Schedule2D
from repro.simulate import Environment


def _as_2d(sched_1d, row_blocks, src_grid, dst_grid):
    """Lift a 1-D (column) schedule to the Schedule2D the driver takes."""
    all_rows = tuple(range(row_blocks))
    return Schedule2D(
        src_grid=src_grid, dst_grid=dst_grid,
        row_blocks=row_blocks, col_blocks=sched_1d.nblocks,
        steps=[[Message2D(src=(0, m.src), dst=(0, m.dst),
                          row_blocks=all_rows, col_blocks=m.blocks)
                for m in step] for step in sched_1d.steps])


def timed_redistribution(builder, n=16000, P=8, Q=12, block=200):
    env = Environment()
    machine = Machine(env, MachineSpec())
    world = World(env, machine, launch_overhead=0.0)
    desc = Descriptor(m=n, n=n, mb=block, nb=block,
                      grid=ProcessGrid(1, P))
    dm = DistributedMatrix(desc, materialized=False)
    nblocks = desc.col_blocks
    schedule = (None if builder is None else
                _as_2d(builder(nblocks, P, Q), desc.row_blocks,
                       (1, P), (1, Q)))
    out = {}

    def main(comm):
        res = yield from redistribute(comm, dm, ProcessGrid(1, Q),
                                      schedule=schedule)
        out[comm.rank] = res.elapsed

    world.launch(main, processors=list(range(max(P, Q))))
    env.run()
    return out[0]


@pytest.mark.benchmark(group="ablation-schedule")
def test_ablation_schedule_quality(benchmark, report):
    results = {}

    def run_all():
        results["circulant"] = timed_redistribution(build_1d_schedule)
        results["edge-coloring"] = timed_redistribution(
            edge_coloring_schedule)
        results["naive (1 step)"] = timed_redistribution(
            build_naive_1d_schedule)
        results["driver default"] = timed_redistribution(None)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, t, t / results["circulant"]]
            for name, t in results.items()]
    report(format_table(
        ["schedule", "redistribution (s)", "vs circulant"],
        rows, title="Ablation — schedule quality (16000^2, 8 -> 12)"))

    # The circulant construction is the best schedule: it beats both the
    # naive single step and the generic edge-coloring fallback (whose
    # per-step permutations are contention-free but, because ranks run
    # ahead into later steps, collide across step boundaries — the
    # circulant's arithmetic structure keeps even *overlapping* steps
    # conflict-free).
    assert results["circulant"] <= results["naive (1 step)"]
    assert results["circulant"] <= results["edge-coloring"]
    assert results["driver default"] == \
        pytest.approx(results["circulant"], rel=1e-6)
    report.flush("ablation_schedule")
