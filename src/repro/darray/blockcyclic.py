"""Block-cyclic index arithmetic (the ScaLAPACK TOOLS routines).

All functions work on one dimension at a time; 2-D layouts apply them to
rows and columns independently.  Conventions match ScaLAPACK: ``n``
global elements in blocks of ``nb``, dealt round-robin to ``nprocs``
processes starting at process ``isrc``.
"""

from __future__ import annotations


def numroc(n: int, nb: int, iproc: int, isrc: int, nprocs: int) -> int:
    """NUMber of Rows Or Columns owned locally by process ``iproc``.

    Faithful port of ScaLAPACK's ``NUMROC``.
    """
    if n < 0 or nb < 1 or nprocs < 1:
        raise ValueError("bad numroc arguments")
    if not 0 <= iproc < nprocs or not 0 <= isrc < nprocs:
        raise ValueError("process index out of range")
    mydist = (nprocs + iproc - isrc) % nprocs
    nblocks = n // nb
    count = (nblocks // nprocs) * nb
    extra = nblocks % nprocs
    if mydist < extra:
        count += nb
    elif mydist == extra:
        count += n % nb
    return count


def block_owner(block: int, isrc: int, nprocs: int) -> int:
    """Process owning global block index ``block``."""
    if block < 0:
        raise ValueError("negative block index")
    return (block + isrc) % nprocs


def global_to_local(gindex: int, nb: int, isrc: int,
                    nprocs: int) -> tuple[int, int]:
    """Map a global element index to ``(owner_process, local_index)``."""
    if gindex < 0:
        raise ValueError("negative global index")
    block = gindex // nb
    owner = block_owner(block, isrc, nprocs)
    local_block = block // nprocs
    return owner, local_block * nb + gindex % nb


def local_to_global(lindex: int, iproc: int, nb: int, isrc: int,
                    nprocs: int) -> int:
    """Map a local element index on ``iproc`` back to its global index."""
    if lindex < 0:
        raise ValueError("negative local index")
    local_block = lindex // nb
    mydist = (nprocs + iproc - isrc) % nprocs
    gblock = local_block * nprocs + mydist
    return gblock * nb + lindex % nb


def local_blocks(n: int, nb: int, iproc: int, isrc: int,
                 nprocs: int) -> list[tuple[int, int, int]]:
    """Blocks owned by ``iproc``: list of ``(gblock, gstart, length)``.

    ``gstart`` is the first global element of the block; ``length`` is
    the block's extent (the trailing block may be short).
    """
    out = []
    nblocks = (n + nb - 1) // nb
    mydist = (nprocs + iproc - isrc) % nprocs
    for gblock in range(mydist, nblocks, nprocs):
        gstart = gblock * nb
        length = min(nb, n - gstart)
        if length > 0:
            out.append((gblock, gstart, length))
    return out
