"""Block-cyclic index arithmetic (the ScaLAPACK TOOLS routines).

All functions work on one dimension at a time; 2-D layouts apply them to
rows and columns independently.  Conventions match ScaLAPACK: ``n``
global elements in blocks of ``nb``, dealt round-robin to ``nprocs``
processes starting at process ``isrc``.

The scalar routines (``numroc``, ``global_to_local``, ...) are the
faithful ports; the array routines below them are their vectorized
counterparts used on the redistribution hot path, where per-element
Python loops would dominate the simulation wall-clock.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


def numroc(n: int, nb: int, iproc: int, isrc: int, nprocs: int) -> int:
    """NUMber of Rows Or Columns owned locally by process ``iproc``.

    Faithful port of ScaLAPACK's ``NUMROC``.
    """
    if n < 0 or nb < 1 or nprocs < 1:
        raise ValueError("bad numroc arguments")
    if not 0 <= iproc < nprocs or not 0 <= isrc < nprocs:
        raise ValueError("process index out of range")
    mydist = (nprocs + iproc - isrc) % nprocs
    nblocks = n // nb
    count = (nblocks // nprocs) * nb
    extra = nblocks % nprocs
    if mydist < extra:
        count += nb
    elif mydist == extra:
        count += n % nb
    return count


def block_owner(block: int, isrc: int, nprocs: int) -> int:
    """Process owning global block index ``block``."""
    if block < 0:
        raise ValueError("negative block index")
    return (block + isrc) % nprocs


def global_to_local(gindex: int, nb: int, isrc: int,
                    nprocs: int) -> tuple[int, int]:
    """Map a global element index to ``(owner_process, local_index)``."""
    if gindex < 0:
        raise ValueError("negative global index")
    block = gindex // nb
    owner = block_owner(block, isrc, nprocs)
    local_block = block // nprocs
    return owner, local_block * nb + gindex % nb


def local_to_global(lindex: int, iproc: int, nb: int, isrc: int,
                    nprocs: int) -> int:
    """Map a local element index on ``iproc`` back to its global index."""
    if lindex < 0:
        raise ValueError("negative local index")
    local_block = lindex // nb
    mydist = (nprocs + iproc - isrc) % nprocs
    gblock = local_block * nprocs + mydist
    return gblock * nb + lindex % nb


def local_blocks(n: int, nb: int, iproc: int, isrc: int,
                 nprocs: int) -> list[tuple[int, int, int]]:
    """Blocks owned by ``iproc``: list of ``(gblock, gstart, length)``.

    ``gstart`` is the first global element of the block; ``length`` is
    the block's extent (the trailing block may be short).
    """
    out = []
    nblocks = (n + nb - 1) // nb
    mydist = (nprocs + iproc - isrc) % nprocs
    for gblock in range(mydist, nblocks, nprocs):
        gstart = gblock * nb
        length = min(nb, n - gstart)
        if length > 0:
            out.append((gblock, gstart, length))
    return out


# ---------------------------------------------------------------------------
# vectorized counterparts (redistribution hot path)
# ---------------------------------------------------------------------------

def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """``concatenate([arange(s, s + l) for s, l in zip(starts, lengths)])``
    without the Python loop.  Zero-length ranges contribute nothing."""
    starts = np.asarray(starts, dtype=np.intp)
    lengths = np.asarray(lengths, dtype=np.intp)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    # Offset of each output element within its own range.
    ends = np.cumsum(lengths)
    within = np.arange(total, dtype=np.intp) - np.repeat(ends - lengths,
                                                         lengths)
    return np.repeat(starts, lengths) + within


@lru_cache(maxsize=1024)
def cyclic_global_indices(n: int, nb: int, iproc: int, isrc: int,
                          nprocs: int) -> np.ndarray:
    """Global element indices of ``iproc``'s local array, in storage order.

    ``out[l]`` is the global index of local element ``l`` — the
    vectorized form of ``local_to_global(l, iproc, nb, isrc, nprocs)``
    for every local element at once.  Cached (read-only) because the
    same layouts recur at every resize point.
    """
    nblocks = (n + nb - 1) // nb
    mydist = (nprocs + iproc - isrc) % nprocs
    gblocks = np.arange(mydist, nblocks, nprocs, dtype=np.intp)
    gstarts = gblocks * nb
    lengths = np.minimum(nb, n - gstarts)
    out = concat_ranges(gstarts, lengths)
    out.flags.writeable = False
    return out


@lru_cache(maxsize=4096)
def local_block_spans(n: int, nb: int, blocks: tuple[int, ...],
                      nprocs: int) -> tuple[tuple[int, int], ...]:
    """``(local_start, length)`` of each in-range global block of an
    ``isrc = 0`` layout, on the process owning them.

    The in-range filter and the lengths depend only on the global layout
    (``n``, ``nb``), so sender and receiver of a redistribution message
    derive identical span lists from their own descriptors.
    """
    out = []
    for block in blocks:
        length = min(nb, n - block * nb)
        if length > 0:
            out.append(((block // nprocs) * nb, length))
    return tuple(out)


@lru_cache(maxsize=4096)
def local_block_numbers(n: int, nb: int, blocks: tuple[int, ...],
                        nprocs: int) -> np.ndarray:
    """Local block numbers of the in-range global ``blocks`` on their
    owner (``isrc = 0``), cached read-only — the index set of a
    block-granular ``np.take``."""
    arr = np.asarray(blocks, dtype=np.intp)
    arr = arr[arr * nb < n]
    out = arr // nprocs
    out.flags.writeable = False
    return out


@lru_cache(maxsize=4096)
def local_block_indices(n: int, nb: int, blocks: tuple[int, ...],
                        nprocs: int) -> np.ndarray:
    """Local element indices covered by global ``blocks`` on their owner.

    All ``blocks`` must live on the same process of an ``isrc = 0``
    layout (true for every redistribution message, whose blocks share
    one (source, destination) pair).  Blocks past the global extent
    contribute nothing.  Cached (read-only): messages repeat across
    schedule steps and resize points.
    """
    arr = np.asarray(blocks, dtype=np.intp)
    lengths = np.clip(n - arr * nb, 0, nb)
    keep = lengths > 0
    arr, lengths = arr[keep], lengths[keep]
    out = concat_ranges((arr // nprocs) * nb, lengths)
    out.flags.writeable = False
    return out
