"""Block-cyclic distributed arrays (ScaLAPACK-style).

A :class:`Descriptor` captures how a global ``m x n`` array is dealt in
``mb x nb`` blocks, round-robin, over a ``pr x pc`` process grid — the
layout ScaLAPACK, PBLAS and the paper's redistribution algorithm all
speak.  A :class:`DistributedMatrix` couples a descriptor with per-rank
local storage, in one of two modes:

* **materialized** — real numpy blocks; used by the tests and the small
  examples, where kernels and redistribution are verified numerically.
* **phantom** — shape-only bookkeeping; used at paper scale, where only
  byte counts (and therefore simulated wire time) matter.
"""

from repro.darray.blockcyclic import (
    block_owner,
    concat_ranges,
    cyclic_global_indices,
    global_to_local,
    local_block_indices,
    local_blocks,
    local_to_global,
    numroc,
)
from repro.darray.descriptor import Descriptor
from repro.darray.distributed import (
    DistributedMatrix,
    copy_rect,
    release_strips,
    strip_pool,
)

__all__ = [
    "Descriptor",
    "DistributedMatrix",
    "copy_rect",
    "release_strips",
    "strip_pool",
    "block_owner",
    "concat_ranges",
    "cyclic_global_indices",
    "global_to_local",
    "local_block_indices",
    "local_blocks",
    "local_to_global",
    "numroc",
]
