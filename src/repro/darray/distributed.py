"""Distributed matrices: descriptor + per-rank local storage.

The simulator is a single OS process, so a :class:`DistributedMatrix`
holds every rank's local array in one list; rank code only ever touches
its own entry (``local(rank)``), preserving SPMD discipline.  In phantom
mode the list holds ``None`` and only shapes/bytes are tracked.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.darray.blockcyclic import local_blocks
from repro.darray.descriptor import Descriptor


class DistributedMatrix:
    """A 2-D block-cyclic distributed array.

    ``materialized=True`` allocates a real numpy local array per rank;
    ``materialized=False`` (phantom) tracks only the layout, which is all
    the paper-scale simulations need to charge communication time.
    """

    def __init__(self, desc: Descriptor, *, materialized: bool = True,
                 dtype=np.float64):
        self.desc = desc
        self.materialized = materialized
        self.dtype = np.dtype(dtype)
        if materialized:
            self._locals: list[Optional[np.ndarray]] = [
                np.zeros(desc.local_shape_of_rank(r), dtype=self.dtype)
                for r in range(desc.grid.size)
            ]
        else:
            self._locals = [None] * desc.grid.size

    # -- storage access ---------------------------------------------------
    def local(self, rank: int) -> np.ndarray:
        """This rank's local array (materialized mode only)."""
        if not self.materialized:
            raise RuntimeError("phantom matrix has no local storage")
        arr = self._locals[rank]
        assert arr is not None
        return arr

    def set_local(self, rank: int, array: np.ndarray) -> None:
        if not self.materialized:
            raise RuntimeError("phantom matrix has no local storage")
        expected = self.desc.local_shape_of_rank(rank)
        if tuple(array.shape) != expected:
            raise ValueError(f"local array shape {array.shape} != "
                             f"descriptor shape {expected}")
        self._locals[rank] = np.ascontiguousarray(array, dtype=self.dtype)

    def local_nbytes(self, rank: int) -> int:
        prow, pcol = self.desc.grid.coords(rank)
        return self.desc.local_nbytes(prow, pcol)

    # -- global <-> local (verification paths; not charged to the network) --
    @classmethod
    def from_global(cls, global_array: np.ndarray, desc: Descriptor,
                    ) -> "DistributedMatrix":
        """Deal a global array out according to ``desc`` (materialized)."""
        if global_array.shape != (desc.m, desc.n):
            raise ValueError(f"array shape {global_array.shape} != "
                             f"({desc.m},{desc.n})")
        dm = cls(desc, materialized=True, dtype=global_array.dtype)
        for rank in range(desc.grid.size):
            prow, pcol = desc.grid.coords(rank)
            rows = local_blocks(desc.m, desc.mb, prow, desc.rsrc,
                                desc.grid.pr)
            cols = local_blocks(desc.n, desc.nb, pcol, desc.csrc,
                                desc.grid.pc)
            loc = dm.local(rank)
            li = 0
            for _rb, rstart, rlen in rows:
                lj = 0
                for _cb, cstart, clen in cols:
                    loc[li:li + rlen, lj:lj + clen] = \
                        global_array[rstart:rstart + rlen,
                                     cstart:cstart + clen]
                    lj += clen
                li += rlen
        return dm

    def to_global(self) -> np.ndarray:
        """Reassemble the global array (materialized mode only)."""
        if not self.materialized:
            raise RuntimeError("cannot gather a phantom matrix")
        desc = self.desc
        out = np.zeros((desc.m, desc.n), dtype=self.dtype)
        for rank in range(desc.grid.size):
            prow, pcol = desc.grid.coords(rank)
            rows = local_blocks(desc.m, desc.mb, prow, desc.rsrc,
                                desc.grid.pr)
            cols = local_blocks(desc.n, desc.nb, pcol, desc.csrc,
                                desc.grid.pc)
            loc = self.local(rank)
            li = 0
            for _rb, rstart, rlen in rows:
                lj = 0
                for _cb, cstart, clen in cols:
                    out[rstart:rstart + rlen, cstart:cstart + clen] = \
                        loc[li:li + rlen, lj:lj + clen]
                    lj += clen
                li += rlen
        return out

    # -- block addressing within local storage ------------------------------
    def local_block_slices(self, rank: int, brow: int, bcol: int,
                           ) -> tuple[slice, slice]:
        """Where global block ``(brow, bcol)`` lives in rank's local array.

        The caller must ensure ``rank`` owns the block.
        """
        desc = self.desc
        if desc.rsrc != 0 or desc.csrc != 0:
            raise NotImplementedError(
                "block addressing assumes rsrc == csrc == 0")
        prow, pcol = desc.grid.coords(rank)
        own = desc.owner_of_block(brow, bcol)
        if own != (prow, pcol):
            raise ValueError(f"block ({brow},{bcol}) owned by {own}, "
                             f"not ({prow},{pcol})")
        lrow_block = brow // desc.grid.pr
        lcol_block = bcol // desc.grid.pc
        rstart = lrow_block * desc.mb
        cstart = lcol_block * desc.nb
        rlen = min(desc.mb, desc.m - brow * desc.mb)
        clen = min(desc.nb, desc.n - bcol * desc.nb)
        return slice(rstart, rstart + rlen), slice(cstart, cstart + clen)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "materialized" if self.materialized else "phantom"
        return f"<DistributedMatrix {self.desc} {mode}>"
