"""Distributed matrices: descriptor + per-rank local storage.

The simulator is a single OS process, so a :class:`DistributedMatrix`
holds every rank's local array in one list; rank code only ever touches
its own entry (``local(rank)``), preserving SPMD discipline.  In phantom
mode the list holds ``None`` and only shapes/bytes are tracked.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.darray.blockcyclic import (
    local_block_indices,
    local_block_numbers,
    local_block_spans,
)
from repro.darray.descriptor import Descriptor


class DistributedMatrix:
    """A 2-D block-cyclic distributed array.

    ``materialized=True`` allocates a real numpy local array per rank;
    ``materialized=False`` (phantom) tracks only the layout, which is all
    the paper-scale simulations need to charge communication time.
    """

    def __init__(self, desc: Descriptor, *, materialized: bool = True,
                 dtype=np.float64):
        self.desc = desc
        self.materialized = materialized
        self.dtype = np.dtype(dtype)
        if materialized:
            self._locals: list[Optional[np.ndarray]] = [
                np.zeros(desc.local_shape_of_rank(r), dtype=self.dtype)
                for r in range(desc.grid.size)
            ]
        else:
            self._locals = [None] * desc.grid.size

    # -- storage access ---------------------------------------------------
    def local(self, rank: int) -> np.ndarray:
        """This rank's local array (materialized mode only)."""
        if not self.materialized:
            raise RuntimeError("phantom matrix has no local storage")
        arr = self._locals[rank]
        assert arr is not None
        return arr

    def set_local(self, rank: int, array: np.ndarray) -> None:
        if not self.materialized:
            raise RuntimeError("phantom matrix has no local storage")
        expected = self.desc.local_shape_of_rank(rank)
        if tuple(array.shape) != expected:
            raise ValueError(f"local array shape {array.shape} != "
                             f"descriptor shape {expected}")
        self._locals[rank] = np.ascontiguousarray(array, dtype=self.dtype)

    def local_nbytes(self, rank: int) -> int:
        prow, pcol = self.desc.grid.coords(rank)
        return self.desc.local_nbytes(prow, pcol)

    # -- global <-> local (verification paths; not charged to the network) --
    @classmethod
    def from_global(cls, global_array: np.ndarray, desc: Descriptor,
                    ) -> "DistributedMatrix":
        """Deal a global array out according to ``desc`` (materialized).

        One gather per rank: ``local[i, j] = global[gr[i], gc[j]]`` where
        ``gr``/``gc`` are the rank's global index tables.
        """
        if global_array.shape != (desc.m, desc.n):
            raise ValueError(f"array shape {global_array.shape} != "
                             f"({desc.m},{desc.n})")
        dm = cls(desc, materialized=True, dtype=global_array.dtype)
        for rank in range(desc.grid.size):
            prow, pcol = desc.grid.coords(rank)
            grows = desc.global_row_indices(prow)
            gcols = desc.global_col_indices(pcol)
            dm.local(rank)[...] = global_array[np.ix_(grows, gcols)]
        return dm

    def to_global(self) -> np.ndarray:
        """Reassemble the global array (materialized mode only)."""
        if not self.materialized:
            raise RuntimeError("cannot gather a phantom matrix")
        desc = self.desc
        out = np.zeros((desc.m, desc.n), dtype=self.dtype)
        for rank in range(desc.grid.size):
            prow, pcol = desc.grid.coords(rank)
            grows = desc.global_row_indices(prow)
            gcols = desc.global_col_indices(pcol)
            out[np.ix_(grows, gcols)] = self.local(rank)
        return out

    # -- block addressing within local storage ------------------------------
    def local_block_slices(self, rank: int, brow: int, bcol: int,
                           ) -> tuple[slice, slice]:
        """Where global block ``(brow, bcol)`` lives in rank's local array.

        The caller must ensure ``rank`` owns the block.
        """
        desc = self.desc
        if desc.rsrc != 0 or desc.csrc != 0:
            raise NotImplementedError(
                "block addressing assumes rsrc == csrc == 0")
        prow, pcol = desc.grid.coords(rank)
        own = desc.owner_of_block(brow, bcol)
        if own != (prow, pcol):
            raise ValueError(f"block ({brow},{bcol}) owned by {own}, "
                             f"not ({prow},{pcol})")
        lrow_block = brow // desc.grid.pr
        lcol_block = bcol // desc.grid.pc
        rstart = lrow_block * desc.mb
        cstart = lcol_block * desc.nb
        rlen = min(desc.mb, desc.m - brow * desc.mb)
        clen = min(desc.nb, desc.n - bcol * desc.nb)
        return slice(rstart, rstart + rlen), slice(cstart, cstart + clen)

    # -- vectorized block-rectangle access (redistribution hot path) ---------
    #
    # The wire format of one aggregated message is a list of row strips:
    # one 2-D array per in-range row block, its columns the in-range
    # column blocks concatenated in message order.  Strip shapes depend
    # only on the global layout (m, n, mb, nb), so the sender and
    # receiver — whose grids differ — agree on the format without
    # negotiation.  Row-strip temporaries stay small enough for the heap
    # allocator to recycle, which keeps a cold redistribution free of
    # the page-fault churn a monolithic buffer per message would pay.
    def _col_plan(self, col_blocks: tuple[int, ...]):
        """How to move this message's columns within a local strip.

        Block-granular ``np.take``/assignment when every in-range column
        block is full and the local array tiles evenly (the common
        case); element-index gather/scatter otherwise.  Both produce
        byte-identical strips.
        """
        desc = self.desc
        if desc.rsrc != 0 or desc.csrc != 0:
            raise NotImplementedError(
                "block addressing assumes rsrc == csrc == 0")
        spans = local_block_spans(desc.n, desc.nb, col_blocks,
                                  desc.grid.pc)
        return spans, local_block_numbers(desc.n, desc.nb, col_blocks,
                                          desc.grid.pc)

    def pack_rect(self, rank: int, row_blocks: tuple[int, ...],
                  col_blocks: tuple[int, ...]) -> list[np.ndarray]:
        """Gather the cross product ``row_blocks x col_blocks`` from
        ``rank``'s local array into the message wire format (one dense
        strip per in-range row block).

        The caller must ensure ``rank`` owns every in-range block (true
        for schedule messages).
        """
        desc = self.desc
        loc = self.local(rank)
        cspans, cblocks = self._col_plan(col_blocks)
        rspans = local_block_spans(desc.m, desc.mb, row_blocks,
                                   desc.grid.pr)
        nlc = loc.shape[1]
        if all(l == desc.nb for _s, l in cspans) and nlc % desc.nb == 0:
            tiled = loc.reshape(loc.shape[0], nlc // desc.nb, desc.nb)
            width = len(cspans) * desc.nb
            return [np.take(tiled[rs:rs + rl], cblocks, axis=1)
                    .reshape(rl, width) for rs, rl in rspans]
        cidx = local_block_indices(desc.n, desc.nb, col_blocks,
                                   desc.grid.pc)
        return [loc[rs:rs + rl][:, cidx] for rs, rl in rspans]

    def unpack_rect(self, rank: int, row_blocks: tuple[int, ...],
                    col_blocks: tuple[int, ...],
                    strips: list[np.ndarray]) -> None:
        """Scatter a :meth:`pack_rect` payload into ``rank``'s local array."""
        desc = self.desc
        loc = self.local(rank)
        cspans, cblocks = self._col_plan(col_blocks)
        rspans = local_block_spans(desc.m, desc.mb, row_blocks,
                                   desc.grid.pr)
        nlc = loc.shape[1]
        if all(l == desc.nb for _s, l in cspans) and nlc % desc.nb == 0:
            tiled = loc.reshape(loc.shape[0], nlc // desc.nb, desc.nb)
            for (rs, rl), strip in zip(rspans, strips):
                tiled[rs:rs + rl][:, cblocks, :] = \
                    strip.reshape(rl, len(cspans), desc.nb)
            return
        cidx = local_block_indices(desc.n, desc.nb, col_blocks,
                                   desc.grid.pc)
        for (rs, rl), strip in zip(rspans, strips):
            loc[rs:rs + rl][:, cidx] = strip

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "materialized" if self.materialized else "phantom"
        return f"<DistributedMatrix {self.desc} {mode}>"
