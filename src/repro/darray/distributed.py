"""Distributed matrices: descriptor + per-rank local storage.

The simulator is a single OS process, so a :class:`DistributedMatrix`
holds every rank's local array in one list; rank code only ever touches
its own entry (``local(rank)``), preserving SPMD discipline.  In phantom
mode the list holds ``None`` and only shapes/bytes are tracked.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.darray.blockcyclic import (
    local_block_indices,
    local_block_numbers,
    local_block_spans,
)
from repro.darray.descriptor import Descriptor


class StripPool:
    """Reusable wire-format strip buffers for the redistribution copy path.

    A redistribution's aggregated messages repeat the same strip shapes
    at every step and at every resize point; allocating them fresh costs
    first-touch page faults that show up directly in the memory-bound
    copy path.  The pool recycles buffers by (shape, dtype) — callers
    take strips during pack and give them back after unpack.
    """

    #: Buffers kept per (shape, dtype) key; beyond this they are dropped
    #: back to the allocator so the pool stays bounded.
    max_per_key = 32
    #: Total retained bytes across all keys; give() drops buffers past
    #: this, so a session cycling through many distinct layouts cannot
    #: accumulate unbounded dead memory.
    budget_bytes = 256 * 2**20

    def __init__(self):
        self._free: dict[tuple, list] = {}
        self._bytes = 0

    def take(self, shape: tuple, dtype) -> np.ndarray:
        stack = self._free.get((shape, dtype))
        if stack:
            array = stack.pop()
            self._bytes -= array.nbytes
            return array
        return np.empty(shape, dtype=dtype)

    def give(self, array: np.ndarray) -> None:
        if self._bytes + array.nbytes > self.budget_bytes:
            return
        key = (array.shape, array.dtype)
        stack = self._free.setdefault(key, [])
        if len(stack) < self.max_per_key:
            stack.append(array)
            self._bytes += array.nbytes

    def clear(self) -> None:
        self._free.clear()
        self._bytes = 0


strip_pool = StripPool()


def release_strips(strips: list) -> None:
    """Return a consumed :meth:`DistributedMatrix.pack_rect` payload's
    buffers to the shared pool (only for ``pooled=True`` packs)."""
    for strip in strips:
        strip_pool.give(strip)


class _PathTimer:
    """Runtime choice between equivalent copy strategies.

    The gather/scatter and slice-run paths produce identical bytes but
    their relative speed depends on block geometry and the BLAS/host —
    measured, not guessed: the first few calls of each strategy per
    layout key are timed (keeping each strategy's best per-byte cost,
    so one scheduler hiccup cannot lock in the wrong path), after which
    the faster one handles that layout.
    """

    __slots__ = ("_times", "_counts")

    #: Samples per strategy before locking the choice in.
    trials = 3

    def __init__(self):
        self._times: dict[tuple, dict[str, float]] = {}
        self._counts: dict[tuple, dict[str, int]] = {}

    def pick(self, key: tuple, names: tuple) -> tuple[str, bool]:
        """``(strategy, measure)`` — measure is True while exploring."""
        counts = self._counts.setdefault(key, {})
        for name in names:
            if counts.get(name, 0) < self.trials:
                return name, True
        return min(self._times[key], key=self._times[key].get), False

    def record(self, key: tuple, name: str, seconds: float,
               nbytes: int) -> None:
        per_byte = seconds / max(nbytes, 1)
        seen = self._times.setdefault(key, {})
        if name not in seen or per_byte < seen[name]:
            seen[name] = per_byte
        self._counts[key][name] = self._counts[key].get(name, 0) + 1


_pack_paths = _PathTimer()
_unpack_paths = _PathTimer()


class DistributedMatrix:
    """A 2-D block-cyclic distributed array.

    ``materialized=True`` allocates a real numpy local array per rank;
    ``materialized=False`` (phantom) tracks only the layout, which is all
    the paper-scale simulations need to charge communication time.
    """

    def __init__(self, desc: Descriptor, *, materialized: bool = True,
                 dtype=np.float64):
        self.desc = desc
        self.materialized = materialized
        self.dtype = np.dtype(dtype)
        if materialized:
            self._locals: list[Optional[np.ndarray]] = [
                np.zeros(desc.local_shape_of_rank(r), dtype=self.dtype)
                for r in range(desc.grid.size)
            ]
        else:
            self._locals = [None] * desc.grid.size

    # -- storage access ---------------------------------------------------
    def local(self, rank: int) -> np.ndarray:
        """This rank's local array (materialized mode only)."""
        if not self.materialized:
            raise RuntimeError("phantom matrix has no local storage")
        arr = self._locals[rank]
        assert arr is not None
        return arr

    def set_local(self, rank: int, array: np.ndarray) -> None:
        if not self.materialized:
            raise RuntimeError("phantom matrix has no local storage")
        expected = self.desc.local_shape_of_rank(rank)
        if tuple(array.shape) != expected:
            raise ValueError(f"local array shape {array.shape} != "
                             f"descriptor shape {expected}")
        self._locals[rank] = np.ascontiguousarray(array, dtype=self.dtype)

    def local_nbytes(self, rank: int) -> int:
        prow, pcol = self.desc.grid.coords(rank)
        return self.desc.local_nbytes(prow, pcol)

    # -- global <-> local (verification paths; not charged to the network) --
    @classmethod
    def from_global(cls, global_array: np.ndarray, desc: Descriptor,
                    ) -> "DistributedMatrix":
        """Deal a global array out according to ``desc`` (materialized).

        One gather per rank: ``local[i, j] = global[gr[i], gc[j]]`` where
        ``gr``/``gc`` are the rank's global index tables.
        """
        if global_array.shape != (desc.m, desc.n):
            raise ValueError(f"array shape {global_array.shape} != "
                             f"({desc.m},{desc.n})")
        dm = cls(desc, materialized=True, dtype=global_array.dtype)
        for rank in range(desc.grid.size):
            prow, pcol = desc.grid.coords(rank)
            grows = desc.global_row_indices(prow)
            gcols = desc.global_col_indices(pcol)
            dm.local(rank)[...] = global_array[np.ix_(grows, gcols)]
        return dm

    def to_global(self) -> np.ndarray:
        """Reassemble the global array (materialized mode only)."""
        if not self.materialized:
            raise RuntimeError("cannot gather a phantom matrix")
        desc = self.desc
        out = np.zeros((desc.m, desc.n), dtype=self.dtype)
        for rank in range(desc.grid.size):
            prow, pcol = desc.grid.coords(rank)
            grows = desc.global_row_indices(prow)
            gcols = desc.global_col_indices(pcol)
            out[np.ix_(grows, gcols)] = self.local(rank)
        return out

    # -- block addressing within local storage ------------------------------
    def local_block_slices(self, rank: int, brow: int, bcol: int,
                           ) -> tuple[slice, slice]:
        """Where global block ``(brow, bcol)`` lives in rank's local array.

        The caller must ensure ``rank`` owns the block.
        """
        desc = self.desc
        if desc.rsrc != 0 or desc.csrc != 0:
            raise NotImplementedError(
                "block addressing assumes rsrc == csrc == 0")
        prow, pcol = desc.grid.coords(rank)
        own = desc.owner_of_block(brow, bcol)
        if own != (prow, pcol):
            raise ValueError(f"block ({brow},{bcol}) owned by {own}, "
                             f"not ({prow},{pcol})")
        lrow_block = brow // desc.grid.pr
        lcol_block = bcol // desc.grid.pc
        rstart = lrow_block * desc.mb
        cstart = lcol_block * desc.nb
        rlen = min(desc.mb, desc.m - brow * desc.mb)
        clen = min(desc.nb, desc.n - bcol * desc.nb)
        return slice(rstart, rstart + rlen), slice(cstart, cstart + clen)

    # -- vectorized block-rectangle access (redistribution hot path) ---------
    #
    # The wire format of one aggregated message is a list of row strips:
    # one 2-D array per in-range row block, its columns the in-range
    # column blocks concatenated in message order.  Strip shapes depend
    # only on the global layout (m, n, mb, nb), so the sender and
    # receiver — whose grids differ — agree on the format without
    # negotiation.  Row-strip temporaries stay small enough for the heap
    # allocator to recycle, which keeps a cold redistribution free of
    # the page-fault churn a monolithic buffer per message would pay.
    def _col_plan(self, col_blocks: tuple[int, ...]):
        """How to move this message's columns within a local strip.

        Block-granular ``np.take``/assignment when every in-range column
        block is full and the local array tiles evenly (the common
        case); element-index gather/scatter otherwise.  Both produce
        byte-identical strips.
        """
        desc = self.desc
        if desc.rsrc != 0 or desc.csrc != 0:
            raise NotImplementedError(
                "block addressing assumes rsrc == csrc == 0")
        spans = local_block_spans(desc.n, desc.nb, col_blocks,
                                  desc.grid.pc)
        return spans, local_block_numbers(desc.n, desc.nb, col_blocks,
                                          desc.grid.pc)

    def _pack_key(self, cspans, granular: bool) -> tuple:
        """Layout signature for the runtime path choice (geometry that
        decides gather vs slice-run speed)."""
        return (self.desc.nb, len(cspans), self.dtype.itemsize, granular)

    def pack_rect(self, rank: int, row_blocks: tuple[int, ...],
                  col_blocks: tuple[int, ...], *,
                  pooled: bool = False) -> list[np.ndarray]:
        """Gather the cross product ``row_blocks x col_blocks`` from
        ``rank``'s local array into the message wire format (one dense
        strip per in-range row block).

        The caller must ensure ``rank`` owns every in-range block (true
        for schedule messages).  With ``pooled=True`` the strips come
        from the shared :class:`StripPool`; the consumer must hand them
        back via :func:`release_strips` after unpacking.  The gather
        strategy (block-granular ``np.take`` vs per-span slice runs) is
        chosen at runtime per layout (see :class:`_PathTimer`); both
        produce byte-identical strips.
        """
        desc = self.desc
        loc = self.local(rank)
        cspans, cblocks = self._col_plan(col_blocks)
        rspans = local_block_spans(desc.m, desc.mb, row_blocks,
                                   desc.grid.pr)
        width = sum(l for _s, l in cspans)
        granular = (all(l == desc.nb for _s, l in cspans)
                    and loc.shape[1] % desc.nb == 0)
        key = self._pack_key(cspans, granular)
        strategy, measure = _pack_paths.pick(
            key, ("take", "slices") if granular else ("gather", "slices"))
        t0 = time.perf_counter() if measure else 0.0

        out = []
        if strategy == "take":
            tiled = loc.reshape(loc.shape[0], loc.shape[1] // desc.nb,
                                desc.nb)
            for rs, rl in rspans:
                strip = (strip_pool.take((rl, width), self.dtype)
                         if pooled else np.empty((rl, width), self.dtype))
                np.take(tiled[rs:rs + rl], cblocks, axis=1,
                        out=strip.reshape(rl, len(cspans), desc.nb))
                out.append(strip)
        elif strategy == "gather":
            cidx = local_block_indices(desc.n, desc.nb, col_blocks,
                                       desc.grid.pc)
            for rs, rl in rspans:
                strip = (strip_pool.take((rl, width), self.dtype)
                         if pooled else np.empty((rl, width), self.dtype))
                np.take(loc[rs:rs + rl], cidx, axis=1, out=strip)
                out.append(strip)
        else:  # "slices": one contiguous copy per (row strip, col span)
            for rs, rl in rspans:
                strip = (strip_pool.take((rl, width), self.dtype)
                         if pooled else np.empty((rl, width), self.dtype))
                off = 0
                for cs, cl in cspans:
                    strip[:, off:off + cl] = loc[rs:rs + rl, cs:cs + cl]
                    off += cl
                out.append(strip)
        if measure:
            nbytes = sum(s.nbytes for s in out)
            _pack_paths.record(key, strategy,
                               time.perf_counter() - t0, nbytes)
        return out

    def unpack_rect(self, rank: int, row_blocks: tuple[int, ...],
                    col_blocks: tuple[int, ...],
                    strips: list[np.ndarray]) -> None:
        """Scatter a :meth:`pack_rect` payload into ``rank``'s local array."""
        desc = self.desc
        loc = self.local(rank)
        cspans, cblocks = self._col_plan(col_blocks)
        rspans = local_block_spans(desc.m, desc.mb, row_blocks,
                                   desc.grid.pr)
        granular = (all(l == desc.nb for _s, l in cspans)
                    and loc.shape[1] % desc.nb == 0)
        key = self._pack_key(cspans, granular)
        strategy, measure = _unpack_paths.pick(
            key, ("take", "slices") if granular else ("gather", "slices"))
        t0 = time.perf_counter() if measure else 0.0

        if strategy == "take":
            tiled = loc.reshape(loc.shape[0], loc.shape[1] // desc.nb,
                                desc.nb)
            for (rs, rl), strip in zip(rspans, strips):
                tiled[rs:rs + rl][:, cblocks, :] = \
                    strip.reshape(rl, len(cspans), desc.nb)
        elif strategy == "gather":
            cidx = local_block_indices(desc.n, desc.nb, col_blocks,
                                       desc.grid.pc)
            for (rs, rl), strip in zip(rspans, strips):
                loc[rs:rs + rl][:, cidx] = strip
        else:
            for (rs, rl), strip in zip(rspans, strips):
                off = 0
                for cs, cl in cspans:
                    loc[rs:rs + rl, cs:cs + cl] = strip[:, off:off + cl]
                    off += cl
        if measure:
            nbytes = sum(s.nbytes for s in strips)
            _unpack_paths.record(key, strategy,
                                 time.perf_counter() - t0, nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "materialized" if self.materialized else "phantom"
        return f"<DistributedMatrix {self.desc} {mode}>"


def copy_rect(src_dm: DistributedMatrix, src_rank: int,
              dst_dm: DistributedMatrix, dst_rank: int,
              row_blocks: tuple[int, ...],
              col_blocks: tuple[int, ...]) -> None:
    """Fused local-copy message: scatter ``row_blocks x col_blocks``
    straight from ``src_rank``'s local array into ``dst_rank``'s.

    Equivalent to ``dst.unpack_rect(..., src.pack_rect(...))`` but with
    no wire-format temporaries at all — one contiguous slice copy per
    (row strip, column span) pair.  Local copies are the largest
    messages of a redistribution (everything that did not change owner),
    so halving their memory traffic is the single biggest copy-path win.
    """
    src_desc = src_dm.desc
    dst_desc = dst_dm.desc
    if src_desc.rsrc != 0 or src_desc.csrc != 0 \
            or dst_desc.rsrc != 0 or dst_desc.csrc != 0:
        raise NotImplementedError(
            "block addressing assumes rsrc == csrc == 0")
    src = src_dm.local(src_rank)
    dst = dst_dm.local(dst_rank)
    src_rspans = local_block_spans(src_desc.m, src_desc.mb, row_blocks,
                                   src_desc.grid.pr)
    dst_rspans = local_block_spans(dst_desc.m, dst_desc.mb, row_blocks,
                                   dst_desc.grid.pr)
    src_cspans = local_block_spans(src_desc.n, src_desc.nb, col_blocks,
                                   src_desc.grid.pc)
    dst_cspans = local_block_spans(dst_desc.n, dst_desc.nb, col_blocks,
                                   dst_desc.grid.pc)
    for (srs, rl), (drs, _drl) in zip(src_rspans, dst_rspans):
        for (scs, cl), (dcs, _dcl) in zip(src_cspans, dst_cspans):
            dst[drs:drs + rl, dcs:dcs + cl] = src[srs:srs + rl,
                                                  scs:scs + cl]
