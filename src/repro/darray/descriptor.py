"""Array descriptors for 2-D block-cyclic layouts."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blacs.grid import ProcessGrid
from repro.darray.blockcyclic import (
    block_owner,
    cyclic_global_indices,
    local_blocks,
    numroc,
)


@dataclass(frozen=True)
class Descriptor:
    """How a global ``m x n`` array is spread over a ``pr x pc`` grid.

    Mirrors a ScaLAPACK array descriptor: block sizes ``mb x nb``, first
    block at grid position ``(rsrc, csrc)``.  The descriptor is pure
    arithmetic — storage lives in :class:`~repro.darray.DistributedMatrix`.
    """

    m: int
    n: int
    mb: int
    nb: int
    grid: ProcessGrid
    rsrc: int = 0
    csrc: int = 0
    itemsize: int = 8  # float64

    def __post_init__(self):
        if self.m < 0 or self.n < 0:
            raise ValueError("negative global extent")
        if self.mb < 1 or self.nb < 1:
            raise ValueError("block sizes must be positive")
        if not (0 <= self.rsrc < self.grid.pr and
                0 <= self.csrc < self.grid.pc):
            raise ValueError("source process outside grid")

    # -- local extents ------------------------------------------------------
    def local_shape(self, prow: int, pcol: int) -> tuple[int, int]:
        """Local array shape on grid process ``(prow, pcol)``."""
        lm = numroc(self.m, self.mb, prow, self.rsrc, self.grid.pr)
        ln = numroc(self.n, self.nb, pcol, self.csrc, self.grid.pc)
        return lm, ln

    def local_shape_of_rank(self, rank: int) -> tuple[int, int]:
        return self.local_shape(*self.grid.coords(rank))

    def local_nbytes(self, prow: int, pcol: int) -> int:
        lm, ln = self.local_shape(prow, pcol)
        return lm * ln * self.itemsize

    @property
    def global_nbytes(self) -> int:
        return self.m * self.n * self.itemsize

    # -- block arithmetic -----------------------------------------------------
    @property
    def row_blocks(self) -> int:
        """Number of global row-blocks."""
        return (self.m + self.mb - 1) // self.mb

    @property
    def col_blocks(self) -> int:
        """Number of global column-blocks."""
        return (self.n + self.nb - 1) // self.nb

    def owner_of_block(self, brow: int, bcol: int) -> tuple[int, int]:
        """Grid coords of the process owning global block ``(brow, bcol)``."""
        return (block_owner(brow, self.rsrc, self.grid.pr),
                block_owner(bcol, self.csrc, self.grid.pc))

    def owner_of_element(self, i: int, j: int) -> tuple[int, int]:
        """Grid coords of the process owning global element ``(i, j)``."""
        return self.owner_of_block(i // self.mb, j // self.nb)

    def my_row_blocks(self, prow: int) -> list[tuple[int, int, int]]:
        """Row blocks owned by grid row ``prow``: (gblock, gstart, length)."""
        return local_blocks(self.m, self.mb, prow, self.rsrc, self.grid.pr)

    def my_col_blocks(self, pcol: int) -> list[tuple[int, int, int]]:
        """Column blocks owned by grid column ``pcol``."""
        return local_blocks(self.n, self.nb, pcol, self.csrc, self.grid.pc)

    def global_row_indices(self, prow: int) -> np.ndarray:
        """Global row index of every local row on grid row ``prow``, in
        local storage order (cached, read-only)."""
        return cyclic_global_indices(self.m, self.mb, prow, self.rsrc,
                                     self.grid.pr)

    def global_col_indices(self, pcol: int) -> np.ndarray:
        """Global column index of every local column on grid column
        ``pcol``, in local storage order (cached, read-only)."""
        return cyclic_global_indices(self.n, self.nb, pcol, self.csrc,
                                     self.grid.pc)

    def with_grid(self, grid: ProcessGrid) -> "Descriptor":
        """Same global array and blocking, different process grid."""
        return Descriptor(m=self.m, n=self.n, mb=self.mb, nb=self.nb,
                          grid=grid, rsrc=0, csrc=0,
                          itemsize=self.itemsize)

    def __repr__(self) -> str:
        return (f"Descriptor({self.m}x{self.n}, blocks {self.mb}x{self.nb}, "
                f"grid {self.grid.pr}x{self.grid.pc})")
