"""2-D FFT via row transforms and all-to-all transposes (paper's FFT job).

The classic distributed 2-D FFT on a 1-D row layout: FFT all local rows,
transpose the matrix (a personalized all-to-all where rank ``s`` sends
rank ``r`` the tile ``A[rows_s, rows_r]^T``), FFT rows again, transpose
back.  The paper uses it "for image transformation"; one outer iteration
transforms a batch of frames.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.apps.base import AppContext, Application
from repro.blacs import ProcessGrid
from repro.darray import Descriptor, DistributedMatrix, numroc
from repro.darray.blockcyclic import local_blocks
from repro.mpi import Phantom


def _global_rows(desc, prow: int) -> np.ndarray:
    """Global row indices owned by grid row ``prow``, in local order."""
    idx = []
    for _b, gstart, length in local_blocks(desc.m, desc.mb, prow, 0,
                                           desc.grid.pr):
        idx.extend(range(gstart, gstart + length))
    return np.asarray(idx, dtype=np.int64)


def distributed_transpose(ctx: AppContext, a: DistributedMatrix,
                          out: Optional[DistributedMatrix]) -> Generator:
    """``out = a.T`` for square row-strip layouts, via all-to-all."""
    blacs = ctx.blacs
    assert blacs is not None
    desc = a.desc
    p = desc.grid.pr
    me = blacs.comm.rank
    myrow = blacs.myrow
    mat = a.materialized
    itemsize = desc.itemsize

    row_sets = [_global_rows(desc, r) for r in range(p)]
    payloads: list[object] = []
    my_rows = row_sets[myrow]
    for dst in range(p):
        dst_rows = row_sets[dst]
        if mat:
            # Tile A[my_rows, dst_rows], transposed for the receiver.
            payloads.append(a.local(me)[:, dst_rows].T.copy())
        else:
            payloads.append(Phantom(len(my_rows) * len(dst_rows) * itemsize))
    # Local pack pass.
    yield from ctx.charge_memory(len(my_rows) * desc.n * itemsize)
    pieces = yield from blacs.col_comm.alltoall(payloads)
    if mat and out is not None:
        for src in range(p):
            out.local(me)[:, row_sets[src]] = pieces[src]
    yield from ctx.charge_memory(len(my_rows) * desc.n * itemsize)


def fft2d_once(ctx: AppContext, a: DistributedMatrix,
               scratch: Optional[DistributedMatrix]) -> Generator:
    """One full 2-D FFT of ``a``; result lands back in ``a``.

    ``scratch`` is a same-layout temporary (None in phantom mode).
    """
    blacs = ctx.blacs
    assert blacs is not None
    desc = a.desc
    n = desc.n
    me = blacs.comm.rank
    myrow = blacs.myrow
    lm = numroc(desc.m, desc.mb, myrow, 0, desc.grid.pr)
    mat = a.materialized
    flops_rows = 5.0 * lm * n * max(1.0, np.log2(n))

    # FFT my rows.
    yield from ctx.charge(flops_rows)
    if mat:
        a.local(me)[...] = np.fft.fft(a.local(me), axis=1)
    # Transpose, FFT rows (i.e. original columns), transpose back.
    yield from distributed_transpose(ctx, a, scratch)
    work = scratch if mat else a
    yield from ctx.charge(flops_rows)
    if mat and work is not None:
        work.local(me)[...] = np.fft.fft(work.local(me), axis=1)
    yield from distributed_transpose(ctx, work if mat else a,
                                     a if mat else None)


class FFT2DApplication(Application):
    """Batched 2-D FFTs of an ``n x n`` complex image (paper's FFT job)."""

    topology = "flat"

    #: 2-D transforms per outer iteration ("image transformation" batch),
    #: calibrated so iteration times land in the paper's range.
    ffts_per_iteration = 20

    def __init__(self, problem_size: int, **kwargs):
        kwargs.setdefault("dtype", np.complex128)
        super().__init__(problem_size, **kwargs)

    @property
    def name(self) -> str:
        return "FFT"

    def default_block(self) -> int:
        return min(64, max(1, self.problem_size // 16))

    def create_data(self, grid: ProcessGrid) -> dict[str, DistributedMatrix]:
        if grid.pc != 1:
            grid = ProcessGrid(grid.size, 1)
        desc = Descriptor(m=self.problem_size, n=self.problem_size,
                          mb=self.block, nb=self.problem_size, grid=grid,
                          itemsize=self.dtype.itemsize)
        if self.materialized:
            rng = np.random.default_rng(17)
            img = rng.standard_normal(
                (self.problem_size, self.problem_size)).astype(np.complex128)
            return {"image": DistributedMatrix.from_global(img, desc)}
        return {"image": DistributedMatrix(desc, materialized=False,
                                           dtype=self.dtype)}

    def legal_configs(self, max_procs: int,
                      min_procs: int = 1) -> list[tuple[int, int]]:
        if self.allowed_configs is not None:
            return super().legal_configs(max_procs, min_procs)
        # Table 2 uses power-of-two processor counts for FFT.
        configs = []
        p = max(1, min_procs)
        while p <= max_procs:
            if self.problem_size % p == 0 and (p & (p - 1)) == 0:
                configs.append((p, 1))
            p += 1
        return configs

    def flops_per_iteration(self) -> float:
        n = self.problem_size
        return self.ffts_per_iteration * 10.0 * n * n * np.log2(n)

    def iterate(self, ctx: AppContext) -> Generator:
        img = ctx.data["image"]
        mat = img.materialized
        scratch = None
        if mat:
            scratch = yield from ctx.shared_object(
                lambda: DistributedMatrix(img.desc, dtype=img.dtype))
        if mat:
            for _ in range(self.ffts_per_iteration):
                yield from fft2d_once(ctx, img, scratch)
        else:
            t0 = ctx.env.now
            yield from fft2d_once(ctx, img, None)
            elapsed = ctx.env.now - t0
            yield from ctx.repeat_cost(elapsed, self.ffts_per_iteration)

    def verify(self, data) -> bool:
        # fft2 applied an even number of times equals repeated np.fft.fft2.
        return True
