"""Dense Jacobi iteration on a row-block layout (paper's Jacobi job).

Solves ``A x = b`` iteratively: ``x' = D^{-1} (b - (A - D) x)``.  The
matrix is distributed in block-cyclic row strips over a flat ``p x 1``
grid; each sweep is a local matvec followed by a ring allgather that
rebuilds the replicated iterate — the communication pattern of every
1-D-distributed dense iterative solver.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.apps.base import AppContext, Application
from repro.blacs import ProcessGrid
from repro.darray import Descriptor, DistributedMatrix, numroc
from repro.darray.blockcyclic import cyclic_global_indices
from repro.mpi import Phantom


def jacobi_sweep(ctx: AppContext, a: DistributedMatrix,
                 x: np.ndarray | None, b: np.ndarray | None) -> Generator:
    """One Jacobi sweep; returns the new replicated iterate (or None)."""
    blacs = ctx.blacs
    assert blacs is not None
    desc = a.desc
    n = desc.n
    pr = desc.grid.pr
    myrow = blacs.myrow
    me = blacs.comm.rank
    mat = a.materialized
    lm = numroc(n, desc.mb, myrow, 0, pr)

    # Local matvec on my row strip: 2 * lm * n flops.
    yield from ctx.charge(2.0 * float(lm) * n)
    local_update: object
    if mat and x is not None and b is not None:
        loc = a.local(me)
        grows = cyclic_global_indices(n, desc.mb, myrow, 0, pr)
        diag = loc[np.arange(lm), grows]
        r = b[grows] - loc @ x + diag * x[grows]
        local_update = (grows, r / diag)
    else:
        local_update = Phantom(lm * desc.itemsize)

    # Rebuild the replicated iterate: ring allgather of row strips.
    pieces = yield from blacs.col_comm.allgather(local_update)
    if mat and x is not None:
        x_new = np.empty_like(x)
        for piece in pieces:
            grows, vals = piece
            x_new[grows] = vals
        return x_new
    return None


class JacobiApplication(Application):
    """Iterative dense Jacobi solve on an ``n x n`` system."""

    topology = "flat"

    #: Inner sweeps folded into one outer (resizable) iteration; the
    #: paper's outer iteration is a unit of work between resize points.
    inner_sweeps = 20

    @property
    def name(self) -> str:
        return "Jacobi"

    def default_block(self) -> int:
        return min(50, max(1, self.problem_size // 20))

    def create_data(self, grid: ProcessGrid) -> dict[str, DistributedMatrix]:
        if grid.pc != 1:
            grid = ProcessGrid(grid.size, 1)
        desc = Descriptor(m=self.problem_size, n=self.problem_size,
                          mb=self.block, nb=self.problem_size, grid=grid,
                          itemsize=self.dtype.itemsize)
        if self.materialized:
            rng = np.random.default_rng(5)
            n = self.problem_size
            a = rng.standard_normal((n, n))
            # Diagonal dominance guarantees Jacobi convergence.
            a[np.arange(n), np.arange(n)] = np.abs(a).sum(axis=1) + 1.0
            return {"A": DistributedMatrix.from_global(
                a.astype(self.dtype), desc)}
        return {"A": DistributedMatrix(desc, materialized=False,
                                       dtype=self.dtype)}

    def legal_configs(self, max_procs: int,
                      min_procs: int = 1) -> list[tuple[int, int]]:
        if self.allowed_configs is not None:
            return super().legal_configs(max_procs, min_procs)
        # Flat topology, but arranged as p x 1 row strips.
        configs = super().legal_configs(max_procs, min_procs)
        return [(p, 1) for _one, p in configs]

    def flops_per_iteration(self) -> float:
        return 2.0 * self.problem_size ** 2 * self.inner_sweeps

    def iterate(self, ctx: AppContext) -> Generator:
        mat = ctx.data["A"].materialized
        n = self.problem_size
        state = ctx.data.setdefault("_solver_state", {})  # type: ignore
        if mat:
            if "x" not in state:
                rng = np.random.default_rng(6)
                state["b"] = rng.standard_normal(n).astype(self.dtype)
                state["x"] = np.zeros(n, dtype=self.dtype)
            x, b = state["x"], state["b"]
            for _sweep in range(self.inner_sweeps):
                x = yield from jacobi_sweep(ctx, ctx.data["A"], x, b)
            if ctx.comm.rank == 0:
                state["x"] = x
        else:
            # Phantom: one real sweep samples the cost, the rest repeat.
            t0 = ctx.env.now
            yield from jacobi_sweep(ctx, ctx.data["A"], None, None)
            elapsed = ctx.env.now - t0
            yield from ctx.repeat_cost(elapsed, self.inner_sweeps)

    def verify(self, data) -> bool:
        state = data.get("_solver_state", {})
        if "x" not in state:
            return True
        a = data["A"].to_global()
        residual = np.linalg.norm(a @ state["x"] - state["b"])
        return bool(residual < 1e-6 * np.linalg.norm(state["b"]) + 1e-8)
