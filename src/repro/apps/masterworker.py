"""Synthetic master-worker application (paper's Master-worker job).

"A synthetic master-worker application.  Each iteration requires 20000
fixed-time work units."  (Table 1)

Rank 0 deals chunks of work units to workers on demand (classic
self-scheduling); workers compute a fixed number of flops per unit and
report back.  There is no global data, so resizing never redistributes
anything — which is exactly why the paper's Figure 3(b) shows no
difference between checkpointing and ReSHAPE for this job.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import AppContext, Application
from repro.blacs import ProcessGrid
from repro.darray import DistributedMatrix
from repro.mpi import ANY_SOURCE

_WORK_TAG = 31
_RESULT_TAG = 32
_STOP = -1


class MasterWorkerApplication(Application):
    """Self-scheduling master-worker with fixed-time units."""

    topology = "flat"

    #: Units per outer iteration (Table 1).
    units_per_iteration = 20000
    #: Units handed out per message; bounds messaging cost realistically.
    chunk_size = 200

    def __init__(self, problem_size: int, **kwargs):
        """``problem_size`` is the job's total work in flops (the paper
        writes Master-worker(4000000000)); each of the
        ``units_per_iteration x iterations`` units costs an equal share.
        """
        super().__init__(problem_size, **kwargs)

    @property
    def name(self) -> str:
        return "Master-worker"

    def default_block(self) -> int:
        return 1

    @property
    def unit_flops(self) -> float:
        total_units = self.units_per_iteration * max(1, self.iterations)
        return float(self.problem_size) / total_units

    def create_data(self, grid: ProcessGrid) -> dict[str, DistributedMatrix]:
        return {}  # nothing to redistribute

    def legal_configs(self, max_procs: int,
                      min_procs: int = 1) -> list[tuple[int, int]]:
        if self.allowed_configs is not None:
            return super().legal_configs(max_procs, min_procs)
        # Master + at least one worker; any count up to the machine.
        lo = max(2, min_procs)
        return [(1, p) for p in range(lo, max_procs + 1, 2)]

    def flops_per_iteration(self) -> float:
        return self.unit_flops * self.units_per_iteration

    def iterate(self, ctx: AppContext) -> Generator:
        comm = ctx.comm
        if comm.size < 2:
            # Degenerate single-process fallback: master does the work.
            yield from ctx.charge(self.flops_per_iteration())
            return
        if comm.rank == 0:
            yield from self._master(ctx)
        else:
            yield from self._worker(ctx)

    def _master(self, ctx: AppContext) -> Generator:
        comm = ctx.comm
        remaining = self.units_per_iteration
        outstanding = 0
        # Prime every worker with one chunk.
        for worker in range(1, comm.size):
            take = min(self.chunk_size, remaining)
            if take == 0:
                break
            yield from comm.send(take, dest=worker, tag=_WORK_TAG)
            remaining -= take
            outstanding += 1
        # Deal further chunks as results come back.
        while outstanding > 0:
            _result, status = yield from comm.recv_status(ANY_SOURCE,
                                                          _RESULT_TAG)
            outstanding -= 1
            take = min(self.chunk_size, remaining)
            if take > 0:
                yield from comm.send(take, dest=status.source,
                                     tag=_WORK_TAG)
                remaining -= take
                outstanding += 1
        # This iteration is over; tell workers to fall through.
        for worker in range(1, comm.size):
            yield from comm.send(_STOP, dest=worker, tag=_WORK_TAG)

    def _worker(self, ctx: AppContext) -> Generator:
        comm = ctx.comm
        done = 0
        while True:
            chunk = yield from comm.recv(source=0, tag=_WORK_TAG)
            if chunk == _STOP:
                break
            yield from ctx.charge(chunk * self.unit_flops)
            done += chunk
            yield from comm.send(done, dest=0, tag=_RESULT_TAG)
