"""SUMMA distributed matrix multiply (the PDGEMM role).

C = A @ B on a ``pr x pc`` grid: for each block step ``k``, the owning
grid column broadcasts its panel of A along grid rows, the owning grid
row broadcasts its panel of B down grid columns, and every rank does a
local GEMM accumulation — the classic SUMMA pattern whose communication
volume per rank is ``n*nb*(pr + pc)`` per sweep.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.apps.base import AppContext, Application
from repro.blacs import ProcessGrid
from repro.darray import Descriptor, DistributedMatrix, numroc
from repro.darray.blockcyclic import global_to_local
from repro.mpi import Phantom


def pdgemm(ctx: AppContext, a: DistributedMatrix, b: DistributedMatrix,
           c: DistributedMatrix) -> Generator:
    """C = A @ B, collective over the grid (square matrices, same desc)."""
    blacs = ctx.blacs
    assert blacs is not None
    desc = a.desc
    n, nb = desc.n, desc.nb
    if desc.m != n or desc.mb != nb:
        raise ValueError("pdgemm reproduction needs square blocks/matrices")
    grid = desc.grid
    pr, pc = grid.pr, grid.pc
    myrow, mycol = blacs.myrow, blacs.mycol
    me = blacs.comm.rank
    mat = a.materialized and b.materialized and c.materialized
    itemsize = desc.itemsize

    lm = numroc(n, nb, myrow, 0, pr)
    ln = numroc(n, nb, mycol, 0, pc)
    if mat:
        c.local(me)[...] = 0.0

    for k in range(desc.col_blocks):
        j0 = k * nb
        w = min(nb, n - j0)
        pcol_k = k % pc
        prow_k = k % pr

        # Panel of A: my local rows x w, from grid column pcol_k.
        a_piece: object = None
        if mycol == pcol_k:
            if mat:
                _own, lc0 = global_to_local(j0, nb, 0, pc)
                a_piece = a.local(me)[:, lc0:lc0 + w].copy()
            else:
                a_piece = Phantom(lm * w * itemsize)
        a_piece = yield from blacs.row_bcast(a_piece, root_col=pcol_k)

        # Panel of B: w x my local cols, from grid row prow_k.
        b_piece: object = None
        if myrow == prow_k:
            if mat:
                _own, lr0 = global_to_local(j0, nb, 0, pr)
                b_piece = b.local(me)[lr0:lr0 + w, :].copy()
            else:
                b_piece = Phantom(w * ln * itemsize)
        b_piece = yield from blacs.col_bcast(b_piece, root_row=prow_k)

        # Local GEMM accumulation.
        if lm > 0 and ln > 0 and w > 0:
            yield from ctx.charge(2.0 * lm * ln * w)
            if mat:
                c.local(me)[...] += a_piece @ b_piece


class MatMulApplication(Application):
    """Ten C = A @ B products of ``n x n`` matrices (paper's MM job)."""

    topology = "grid"

    @property
    def name(self) -> str:
        return "MM"

    def default_block(self) -> int:
        return min(64, max(1, self.problem_size // 8))

    def create_data(self, grid: ProcessGrid) -> dict[str, DistributedMatrix]:
        desc = Descriptor(m=self.problem_size, n=self.problem_size,
                          mb=self.block, nb=self.block, grid=grid,
                          itemsize=self.dtype.itemsize)
        if self.materialized:
            rng = np.random.default_rng(99)
            a = rng.standard_normal((self.problem_size, self.problem_size))
            b = rng.standard_normal((self.problem_size, self.problem_size))
            return {
                "A": DistributedMatrix.from_global(a.astype(self.dtype),
                                                   desc),
                "B": DistributedMatrix.from_global(b.astype(self.dtype),
                                                   desc),
                "C": DistributedMatrix(desc, dtype=self.dtype),
            }
        return {name: DistributedMatrix(desc, materialized=False,
                                        dtype=self.dtype)
                for name in ("A", "B", "C")}

    def flops_per_iteration(self) -> float:
        return 2.0 * self.problem_size ** 3

    def iterate(self, ctx: AppContext) -> Generator:
        # SUMMA's sweep has no internal sampling, so the barrier-anchored
        # measure-once replay is what keeps phantom MM fast: the walk is
        # measured twice (confirm=2 — the sweep has no internal barriers,
        # so stability is verified rather than assumed) and replayed in
        # O(1) per iteration afterwards.
        yield from self.replay_iterations(
            ctx,
            lambda: pdgemm(ctx, ctx.data["A"], ctx.data["B"],
                           ctx.data["C"]),
            key=(self.problem_size, self.block), confirm=2)
