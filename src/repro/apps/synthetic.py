"""Synthetic fixed-work application for scheduler scale studies.

The paper's five applications exercise the communication substrate; the
10k-job scheduler studies need the opposite — a job whose *simulation*
cost is a handful of events, so tens of thousands of them stress the
event kernel and the scheduler wake path rather than the MPI layer.
Each iteration charges a fixed per-rank compute time (perfect speedup:
``serial_seconds / ranks``) and nothing else; there is no global data,
so resizes never redistribute anything.

Used by :meth:`repro.workloads.generator.WorkloadGenerator.generate_scale`
and ``benchmarks/test_perf_engine.py``.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import AppContext, Application
from repro.blacs import ProcessGrid
from repro.darray import DistributedMatrix


class SyntheticApplication(Application):
    """Fixed-duration iterations on a flat grid; minimal event count.

    ``problem_size`` is the serial work of one iteration in seconds
    scaled by 1000 (so it remains an int as the base class expects):
    ``problem_size=500`` means one iteration costs 0.5 simulated
    seconds on one processor.
    """

    topology = "flat"
    needs_blacs = False

    @property
    def name(self) -> str:
        return "Synthetic"

    def default_block(self) -> int:
        return 1

    @property
    def serial_seconds(self) -> float:
        return self.problem_size / 1000.0

    def create_data(self, grid: ProcessGrid) -> dict[str, DistributedMatrix]:
        return {}  # nothing to redistribute

    def legal_configs(self, max_procs: int,
                      min_procs: int = 1) -> list[tuple[int, int]]:
        if self.allowed_configs is not None:
            return super().legal_configs(max_procs, min_procs)
        return [(1, p) for p in range(max(1, min_procs), max_procs + 1)]

    def iterate(self, ctx: AppContext) -> Generator:
        # One timeout per rank: the whole iteration is a single event.
        yield ctx.env.sleep(self.serial_seconds / ctx.size)

    def closed_form_duration(self, config, machine) -> float:
        """Perfect-speedup compute with no communication, assuming the
        configuration never changes.  The framework honors that
        assumption by only booking jobs closed-form when no resize
        decision could fire (single iteration, or static scheduling);
        otherwise the ranks execute and resize points stay live."""
        ranks = config[0] * config[1]
        return self.iterations * self.serial_seconds / ranks
