"""Distributed right-looking block LU with partial pivoting (PDGETRF role).

The kernel follows ScaLAPACK's structure exactly:

for each block column ``k``:
  1. *panel factorization* on the owning grid column — per column:
     distributed pivot search (max-allreduce down the column), pivot row
     swap, pivot row broadcast, rank-1 update of the panel;
  2. *pivot application* — the recorded row swaps are broadcast across
     the grid row and applied to all non-panel columns;
  3. *U row computation* — the unit-lower triangular solve applied to
     the block row, on the owning grid row;
  4. *panel/U broadcasts* — L panel along grid rows, U block row down
     grid columns;
  5. *trailing-matrix update* — local GEMM on every rank.

In materialized mode every step does real arithmetic (verified against
``P A = L U`` in the tests); in phantom mode the same communication
pattern runs with :class:`~repro.mpi.Phantom` payloads and the per-column
pivot traffic of a panel is sampled once and charged ``w`` times
(deterministic simulation makes one sample exact).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Generator, Optional

import numpy as np
import scipy.linalg as sla

from repro.apps.base import AppContext, Application
from repro.blacs import ProcessGrid
from repro.darray import Descriptor, DistributedMatrix, numroc
from repro.darray.blockcyclic import global_to_local
from repro.mpi import Phantom, payload_nbytes
from repro.mpi.datatypes import HEADER_BYTES
from repro.mpi.fastcoll import (
    bcast_children,
    detached_call,
    p2p_time,
    replay_chain,
)
from repro.simulate import Event


# ---------------------------------------------------------------------------
# Closed-form per-panel cost tables (phantom mode).
#
# Phantom pdgetrf used to execute one representative pivot round (and one
# representative row swap) per panel with real simulated transfers and
# charge the remaining repetitions at the measured cost.  Because the
# sampled rounds start from a barrier, their per-rank cost is a pure
# function of (grid column shape, panel width, network parameters) — so
# it can be computed once with the fast-path collective replay
# (``repro.mpi.fastcoll``) and cached, advancing the clock in O(1) per
# panel with no event machinery at all.  The tables engage only when the
# grid communicator qualifies for the fast path; otherwise the sampled
# reference path below runs unchanged.
# ---------------------------------------------------------------------------

def _lu_cost_tables(machine) -> dict:
    tables = getattr(machine, "_lu_phantom_tables", None)
    if tables is None:
        tables = machine._lu_phantom_tables = {}
    return tables


@lru_cache(maxsize=512)
def _swaps_list_nbytes(w: int) -> int:
    """Wire size of a ``w``-entry pivot list, as the reference broadcast
    would measure it (cached: the per-element walk is a hot path)."""
    return payload_nbytes([(0, 0)] * w)


def _pivot_round_table(machine, col_nodes: tuple, prow_k: int,
                       w: int, itemsize: int) -> tuple:
    """``(times, sends_by_row)`` for one pivot round, entered synchronized.

    One round is the max-allreduce of the ``(value, prow, lrow)``
    candidate followed by the pivot-row broadcast from ``prow_k`` — the
    communication the sampled reference path performs once per panel.
    ``times[row]`` is that grid row's round duration; ``sends_by_row``
    the wire sizes each row puts on the network (for stats mirroring).
    """
    key = ("pivot-round", col_nodes, prow_k, w, itemsize)
    tables = _lu_cost_tables(machine)
    entry = tables.get(key)
    if entry is None:
        pr = len(col_nodes)
        cand_nb = payload_nbytes((1.0, 0, 0))
        times = replay_chain(machine.network, list(col_nodes), [
            # allreduce = binomial reduce to rank 0, then broadcast.
            ("reduce", 0, [Phantom(cand_nb)] * pr),
            ("bcast", 0, [Phantom(cand_nb)] * pr),
            # Pivot-row segment broadcast from the pivot's home row.
            ("bcast", prow_k, [Phantom(w * itemsize)] * pr),
        ])
        sends_by_row = []
        for row in range(pr):
            row_sends = []
            if row != 0:
                row_sends.append(cand_nb)          # reduce: leaf-to-parent
            row_sends.extend([cand_nb] *
                             len(bcast_children(row, 0, pr)))
            row_sends.extend([w * itemsize] *
                             len(bcast_children(row, prow_k, pr)))
            sends_by_row.append(tuple(row_sends))
        entry = tables[key] = (times, tuple(sends_by_row))
    return entry


def _mirror_round_sends(stats, net_stats, sends: tuple) -> None:
    """Book one rank's sampled sends (pivot rounds never book their
    repetitions — the reference path samples once per panel)."""
    for nbytes in sends:
        stats.sends += 1
        stats.bytes_sent += nbytes
        net_stats.messages += 1
        net_stats.bytes += nbytes + HEADER_BYTES


def _copy_matrix(dm: DistributedMatrix) -> DistributedMatrix:
    """Deep copy (materialized) or layout copy (phantom) of a matrix."""
    out = DistributedMatrix(dm.desc, materialized=dm.materialized,
                            dtype=dm.dtype)
    if dm.materialized:
        for rank in range(dm.desc.grid.size):
            out.local(rank)[...] = dm.local(rank)
    return out


# ---------------------------------------------------------------------------
# Whole-call closed form (phantom fast path)
#
# PR 2 closed-formed the pivot rounds and row swaps but still walked the
# panels live — per panel two rendezvous barriers and four token
# broadcasts through the event machinery, which dominated phantom host
# time once everything else was fast.  The walk below computes the whole
# factorization detachedly: one rendezvous collects every rank's entry
# time, the per-panel collective chain (barriers, pivot rounds, swap
# exchanges, L/U broadcasts, local charges) is replayed with the same
# detached CollSim the cost tables use, and each rank receives its
# completion through one scheduled event.  A pdgetrf call costs O(ranks)
# heap events regardless of matrix size.
# ---------------------------------------------------------------------------

def _synthetic_swaps(n: int, nb: int, j0: int, w: int) -> list:
    """Phantom mode's deterministic pivot choices for one panel (a real
    factorization swaps nearly every row)."""
    return [(j0 + jj, min(n - 1, j0 + jj + nb)) for jj in range(w)]


def _pdgetrf_walk(machine, desc: Descriptor, nodes: list[int],
                  entries: list[float], row_stats: list, col_stats: list,
                  grid_stats) -> tuple[list[float], list]:
    """Per-rank completion times and pivots of one phantom ``pdgetrf``.

    Mirrors the sampled reference path panel by panel: the collective
    sequence is replayed with :func:`repro.mpi.fastcoll.detached_call`
    over persistent scratch engines (NIC serialization between
    consecutive panel operations is preserved), pivot rounds and swap
    exchanges come from the closed-form tables, and local flops advance
    each rank's clock arithmetically.  Stats are booked exactly as the
    sampled path books them (one pivot round and one swap per panel,
    full traffic for barriers and broadcasts).
    """
    network = machine.network
    net_stats = network.stats
    grid = desc.grid
    pr, pc = grid.pr, grid.pc
    size = pr * pc
    n, nb, itemsize = desc.n, desc.nb, desc.itemsize
    T = list(entries)
    engines: dict = {}
    flop = [machine.nodes[nodes[r]].flop_rate for r in range(size)]
    rows = [grid.row_members(row) for row in range(pr)]
    cols = [grid.col_members(col) for col in range(pc)]
    row_nodes = [[nodes[r] for r in members] for members in rows]
    col_nodes = [[nodes[r] for r in members] for members in cols]
    lm = [numroc(n, nb, row, 0, pr) for row in range(pr)]
    ln = [numroc(n, nb, col, 0, pc) for col in range(pc)]

    def coll(kind, members, member_nodes, payloads, root, stats):
        # A collective call books its tag (the collectives counter)
        # before the size-1 early return, so mirror that even when no
        # traffic moves.
        stats.collectives += len(members)
        if len(members) == 1:
            return
        times = detached_call(network, member_nodes, kind,
                              [T[r] for r in members], payloads,
                              root=root, engines=engines, stats=stats)
        for i, r in enumerate(members):
            T[r] = times[i]

    def bcast(members, member_nodes, nbytes, root, stats):
        payloads: list = [None] * len(members)
        payloads[root] = Phantom(nbytes)
        coll("bcast", members, member_nodes, payloads, root, stats)

    ipiv: list = []
    for k in range(desc.col_blocks):
        j0 = k * nb
        w = min(nb, n - j0)
        pcol_k = k % pc
        prow_k = k % pr

        # ---- 1. panel factorization (grid column pcol_k) -------------
        members = cols[pcol_k]
        cstats = col_stats[pcol_k]
        coll("barrier", members, col_nodes[pcol_k], [None] * pr, 0,
             cstats)
        round_times, sends_by_row = _pivot_round_table(
            machine, tuple(col_nodes[pcol_k]), prow_k, w, itemsize)
        cstats.collectives += 3 * pr           # reduce + 2 broadcasts
        for row, r in enumerate(members):
            _mirror_round_sends(cstats, net_stats, sends_by_row[row])
            T[r] += w * round_times[row]
            # Rank-1 updates of the panel below each pivot row.
            rows_below = max(0, lm[row] - numroc(j0, nb, row, 0, pr))
            T[r] += float(rows_below) * w * (w + 1) / flop[r]

        panel_swaps = _synthetic_swaps(n, nb, j0, w)
        ipiv.extend(panel_swaps)
        # Share the pivot choices across each grid row.
        list_nbytes = _swaps_list_nbytes(w)
        for row in range(pr):
            bcast(rows[row], row_nodes[row], list_nbytes, pcol_k,
                  row_stats[row])

        # ---- 2. apply row swaps --------------------------------------
        real_swaps = [(a, b) for a, b in panel_swaps if a != b]
        if real_swaps:
            coll("barrier", list(range(size)), nodes, [None] * size, 0,
                 grid_stats)
            g1, g2 = real_swaps[0]
            p1, _l1 = global_to_local(g1, nb, 0, pr)
            p2, _l2 = global_to_local(g2, nb, 0, pr)
            if p1 != p2:
                _own, lc0 = global_to_local(j0, nb, 0, pc)
                for col in range(pc):
                    if col == pcol_k:
                        segments = ((0, lc0), (lc0 + w, ln[col]))
                    else:
                        segments = ((0, ln[col]),)
                    for row, other in ((p1, p2), (p2, p1)):
                        r = grid.rank_of(row, col)
                        o = grid.rank_of(other, col)
                        cost = 0.0
                        for lc_from, lc_to in segments:
                            width = lc_to - lc_from
                            if width <= 0:
                                continue
                            nbytes = width * itemsize
                            cost += p2p_time(network, nodes[r], nodes[o],
                                             nbytes)
                            col_stats[col].sends += 1
                            col_stats[col].bytes_sent += nbytes
                            net_stats.messages += 1
                            net_stats.bytes += nbytes + HEADER_BYTES
                        T[r] += len(real_swaps) * cost

        # ---- 3. L11 broadcast + triangular solve (grid row prow_k) ---
        bcast(rows[prow_k], row_nodes[prow_k], w * w * itemsize, pcol_k,
              row_stats[prow_k])
        for col in range(pc):
            cols_right = ln[col] - numroc(j0 + w, nb, col, 0, pc)
            if cols_right > 0:
                r = grid.rank_of(prow_k, col)
                T[r] += float(w) * w * cols_right / flop[r]

        # ---- 4. broadcast L panel along rows, U row down columns -----
        rows_below_k = [lm[row] - numroc(j0 + w, nb, row, 0, pr)
                        for row in range(pr)]
        cols_right_k = [ln[col] - numroc(j0 + w, nb, col, 0, pc)
                        for col in range(pc)]
        for row in range(pr):
            if rows_below_k[row] > 0:
                bcast(rows[row], row_nodes[row],
                      rows_below_k[row] * w * itemsize, pcol_k,
                      row_stats[row])
        for col in range(pc):
            if cols_right_k[col] > 0:
                bcast(cols[col], col_nodes[col],
                      w * cols_right_k[col] * itemsize, prow_k,
                      col_stats[col])

        # ---- 5. trailing-matrix update -------------------------------
        for row in range(pr):
            if rows_below_k[row] <= 0:
                continue
            for col in range(pc):
                if cols_right_k[col] > 0:
                    r = grid.rank_of(row, col)
                    T[r] += (2.0 * rows_below_k[row] *
                             cols_right_k[col] * w / flop[r])
    return T, ipiv


class _WalkCall:
    """Rendezvous for one closed-form phantom ``pdgetrf`` call.

    Ranks join with their entry times; the last arrival runs the walk
    and schedules every rank's completion (value: the shared pivot
    list).  Completion times never precede the last arrival because
    panel 0's swap barrier spans the whole grid.
    """

    def __init__(self, calls: dict, seq: int, size: int):
        self._calls = calls
        self._seq = seq
        self.size = size
        self.entries: dict = {}
        self.events: dict = {}

    def join(self, ctx: AppContext, work: DistributedMatrix):
        env = ctx.env
        rank = ctx.blacs.comm.rank
        ev = Event(env)
        self.events[rank] = ev
        self.entries[rank] = (env.now, ctx)
        if len(self.entries) == self.size:
            self._calls.pop(self._seq, None)
            self._compute(env, work)
        return ev

    def _compute(self, env, work: DistributedMatrix) -> None:
        desc = work.desc
        grid = desc.grid
        ctxs = {r: c for r, (_t, c) in self.entries.items()}
        machine = ctxs[0].machine
        comm = ctxs[0].blacs.comm
        nodes = [machine.node_of(p) for p in comm.processors]
        row_stats = [ctxs[grid.rank_of(row, 0)].blacs.row_comm.stats
                     for row in range(grid.pr)]
        col_stats = [ctxs[grid.rank_of(0, col)].blacs.col_comm.stats
                     for col in range(grid.pc)]
        times, ipiv = _pdgetrf_walk(
            machine, desc, nodes,
            [self.entries[r][0] for r in range(self.size)],
            row_stats, col_stats, comm.stats)
        env.schedule_many((self.events[r], ipiv, times[r])
                          for r in range(self.size))


def _pdgetrf_fast(ctx: AppContext, work: DistributedMatrix) -> Generator:
    """Closed-form phantom ``pdgetrf``: rendezvous, walk, one event."""
    blacs = ctx.blacs
    assert blacs is not None
    comm = blacs.comm
    shared = comm._shared
    calls = getattr(shared, "_lu_walk_calls", None)
    if calls is None:
        calls = shared._lu_walk_calls = {}
    seq = getattr(comm, "_lu_walk_seq", 0)
    comm._lu_walk_seq = seq + 1
    call = calls.get(seq)
    if call is None:
        call = calls[seq] = _WalkCall(calls, seq, comm.size)
    ipiv = yield call.join(ctx, work)
    return list(ipiv)


def pdgetrf(ctx: AppContext, work: DistributedMatrix) -> Generator:
    """Factor ``work`` in place; returns the pivot list ``[(j, gp), ...]``.

    Collective over ``ctx.blacs`` (all grid ranks call it).  ``work``
    must be square with square blocks laid out with ``rsrc = csrc = 0``.
    """
    blacs = ctx.blacs
    assert blacs is not None
    desc = work.desc
    n = desc.n
    nb = desc.nb
    if desc.m != n or desc.mb != nb:
        raise ValueError("pdgetrf needs a square matrix with square blocks")
    grid = desc.grid
    pr, pc = grid.pr, grid.pc
    myrow, mycol = blacs.myrow, blacs.mycol
    me = blacs.comm.rank
    mat = work.materialized
    local = work.local(me) if mat else None
    itemsize = desc.itemsize
    # Phantom mode rides the whole-call closed form when the grid
    # qualifies for the collective fast path (all ranks must agree; the
    # eligibility is a pure function of communicator + machine + flag)
    # AND owns its NICs outright — the detached walk replays on a
    # private network, which rank-sharing jobs (cpus_per_node > 1)
    # would invalidate.  n == 1 lacks the panel-0 swap barrier the
    # rendezvous relies on.
    fast = (None if mat else blacs.comm._fastcoll())
    if fast is not None and fast.exclusive and (grid.size == 1 or n > 1):
        result = yield from _pdgetrf_fast(ctx, work)
        return result

    ipiv: list[tuple[int, int]] = []
    nblocks = desc.col_blocks

    for k in range(nblocks):
        j0 = k * nb
        w = min(nb, n - j0)
        pcol_k = k % pc          # grid column owning the panel
        prow_k = k % pr          # grid row owning the diagonal block row
        # Local extents relative to the trailing matrix.
        lr_panel = numroc(j0, nb, myrow, 0, pr)       # rows above panel
        lr_below = numroc(j0 + w, nb, myrow, 0, pr)   # rows above trailing
        lc_right = numroc(j0 + w, nb, mycol, 0, pc)   # cols left of trailing
        lm = numroc(n, nb, myrow, 0, pr)
        ln = numroc(n, nb, mycol, 0, pc)

        # ---- 1. panel factorization (grid column pcol_k) ----------------
        panel_swaps: list[tuple[int, int]] = []
        if mycol == pcol_k:
            panel_swaps = yield from _factor_panel(
                ctx, work, k, j0, w, lr_panel)
        # Share the pivot choices across the grid row (everyone needs them
        # to apply row swaps and to build the global ipiv).
        panel_swaps = yield from blacs.row_bcast(panel_swaps,
                                                 root_col=pcol_k)
        ipiv.extend(panel_swaps)

        # ---- 2. apply row swaps to non-panel columns ---------------------
        yield from _apply_row_swaps(ctx, work, panel_swaps, j0, w)

        # ---- 3. triangular solve for the U block row ----------------------
        # L11 (w x w unit lower) lives on (prow_k, pcol_k); the owning grid
        # row needs it to solve for U12.
        l11: Optional[np.ndarray] = None
        if myrow == prow_k:
            if mycol == pcol_k:
                if mat:
                    _own, lr0 = global_to_local(j0, nb, 0, pr)
                    _own, lc0 = global_to_local(j0, nb, 0, pc)
                    l11 = local[lr0:lr0 + w, lc0:lc0 + w].copy()
                else:
                    l11 = Phantom(w * w * itemsize)  # type: ignore[assignment]
            l11 = yield from blacs.row_bcast(l11, root_col=pcol_k)
            # Solve L11 * U12 = A12 for my local trailing columns.
            cols_right = ln - lc_right
            if cols_right > 0:
                yield from ctx.charge(float(w) * w * cols_right)
                if mat:
                    _own, lr0 = global_to_local(j0, nb, 0, pr)
                    block = local[lr0:lr0 + w, lc_right:ln]
                    local[lr0:lr0 + w, lc_right:ln] = sla.solve_triangular(
                        l11, block, lower=True, unit_diagonal=True)

        # ---- 4. broadcast L panel along rows, U row down columns ---------
        rows_below = lm - lr_below
        cols_right = ln - lc_right
        l_piece: object = None
        if mycol == pcol_k and rows_below > 0:
            if mat:
                _own, lc0 = global_to_local(j0, nb, 0, pc)
                l_piece = local[lr_below:lm, lc0:lc0 + w].copy()
            else:
                l_piece = Phantom(rows_below * w * itemsize)
        if rows_below > 0:
            l_piece = yield from blacs.row_bcast(l_piece, root_col=pcol_k)

        u_piece: object = None
        if myrow == prow_k and cols_right > 0:
            if mat:
                _own, lr0 = global_to_local(j0, nb, 0, pr)
                u_piece = local[lr0:lr0 + w, lc_right:ln].copy()
            else:
                u_piece = Phantom(w * cols_right * itemsize)
        if cols_right > 0:
            u_piece = yield from blacs.col_bcast(u_piece, root_row=prow_k)

        # ---- 5. trailing-matrix update ------------------------------------
        if rows_below > 0 and cols_right > 0:
            yield from ctx.charge(2.0 * rows_below * cols_right * w)
            if mat:
                assert isinstance(l_piece, np.ndarray)
                assert isinstance(u_piece, np.ndarray)
                local[lr_below:lm, lc_right:ln] -= l_piece @ u_piece

    return ipiv


def _factor_panel(ctx: AppContext, work: DistributedMatrix, k: int,
                  j0: int, w: int, lr_panel: int) -> Generator:
    """Factor panel ``k`` within its owning grid column; returns swaps.

    Every rank of the grid column participates.  In phantom mode one
    column's communication is executed and the rest charged by
    repetition (the sampled reference path; the fast path replays whole
    calls in closed form and never reaches this code).
    """
    blacs = ctx.blacs
    assert blacs is not None
    desc = work.desc
    nb = desc.nb
    pr = desc.grid.pr
    myrow = blacs.myrow
    me = blacs.comm.rank
    mat = work.materialized
    local = work.local(me) if mat else None
    n = desc.n
    lm = numroc(n, nb, myrow, 0, pr)
    _own, lc0 = global_to_local(j0, nb, 0, desc.grid.pc)

    swaps: list[tuple[int, int]] = []
    if mat:
        for jj in range(w):
            gj = j0 + jj
            # Local pivot candidate among rows with global index >= gj.
            lr_start = numroc(gj, nb, myrow, 0, pr)
            if lr_start < lm:
                col = local[lr_start:lm, lc0 + jj]
                li = int(np.argmax(np.abs(col)))
                cand = (float(abs(col[li])), myrow, lr_start + li)
            else:
                cand = (-1.0, myrow, -1)
            # Max-allreduce down the column (value, prow, localrow).
            best = yield from blacs.col_comm.allreduce(
                cand, op=_PIVOT_MAX)
            gp = _local_to_global_row(best[2], best[1], nb, pr)
            swaps.append((gj, gp))
            yield from _swap_panel_rows(ctx, work, gj, gp, lc0, lc0 + w)
            # Broadcast the pivot row's panel segment from its new home.
            prow_j, lr_j = global_to_local(gj, nb, 0, pr)
            piece = None
            if myrow == prow_j:
                piece = local[lr_j, lc0 + jj:lc0 + w].copy()
            piece = yield from blacs.col_bcast(piece, root_row=prow_j)
            # Rank-1 update of the panel below row gj.
            lr_below = numroc(gj + 1, nb, myrow, 0, pr)
            if lr_below < lm and piece[0] != 0.0:
                colv = local[lr_below:lm, lc0 + jj] / piece[0]
                local[lr_below:lm, lc0 + jj] = colv
                if jj + 1 < w:
                    local[lr_below:lm, lc0 + jj + 1:lc0 + w] -= \
                        np.outer(colv, piece[1:])
                yield from ctx.charge(2.0 * (lm - lr_below) * (w - jj))
    else:
        # Phantom: run one representative pivot column for real, then
        # charge the remaining w-1 columns at the measured cost.  The
        # column is synchronized first so the sample is the pure cost of
        # one pivot round — otherwise arrival skew would be multiplied
        # by w and compound across panels.
        yield from blacs.col_comm.barrier()
        t0 = ctx.env.now
        cand = (1.0, myrow, 0)
        best = yield from blacs.col_comm.allreduce(cand, op=_PIVOT_MAX)
        piece = yield from blacs.col_bcast(
            Phantom(w * desc.itemsize) if myrow == k % pr else None,
            root_row=k % pr)
        elapsed = ctx.env.now - t0
        yield from ctx.repeat_cost(elapsed, w)
    if not mat:
        # Rank-1 updates: sum over columns jj of 2*(rows below)*(w - jj).
        rows_below = max(0, lm - lr_panel)
        yield from ctx.charge(float(rows_below) * w * (w + 1))
        # Synthetic pivot choices so pivot-application traffic is still
        # charged downstream (a real factorization swaps nearly every
        # row); must match the closed-form walk's formula exactly.
        swaps = _synthetic_swaps(n, nb, j0, w)
    return swaps


def _local_to_global_row(lrow: int, prow: int, nb: int, pr: int) -> int:
    from repro.darray.blockcyclic import local_to_global
    return local_to_global(lrow, prow, nb, 0, pr)


def _swap_panel_rows(ctx: AppContext, work: DistributedMatrix,
                     g1: int, g2: int, lc_from: int, lc_to: int) -> Generator:
    """Exchange global rows g1 and g2 within local columns [lc_from, lc_to).

    Executed by the grid column owning those columns; rows may live on
    different grid rows (point-to-point exchange) or the same (local).
    """
    if g1 == g2:
        return
    blacs = ctx.blacs
    assert blacs is not None
    desc = work.desc
    pr = desc.grid.pr
    me = blacs.comm.rank
    mat = work.materialized
    p1, l1 = global_to_local(g1, desc.mb, 0, pr)
    p2, l2 = global_to_local(g2, desc.mb, 0, pr)
    myrow = blacs.myrow
    if myrow not in (p1, p2):
        return
    local = work.local(me) if mat else None
    if p1 == p2:
        if mat:
            tmp = local[l1, lc_from:lc_to].copy()
            local[l1, lc_from:lc_to] = local[l2, lc_from:lc_to]
            local[l2, lc_from:lc_to] = tmp
        return
    mine, theirs = (l1, p2) if myrow == p1 else (l2, p1)
    width = lc_to - lc_from
    if mat:
        payload: object = local[mine, lc_from:lc_to].copy()
    else:
        payload = Phantom(width * desc.itemsize)
    other = yield from blacs.col_comm.sendrecv(
        payload, dest=theirs, source=theirs, send_tag=11, recv_tag=11)
    if mat:
        local[mine, lc_from:lc_to] = other


def _apply_row_swaps(ctx: AppContext, work: DistributedMatrix,
                     swaps: list[tuple[int, int]], j0: int,
                     w: int) -> Generator:
    """Apply recorded pivots to all columns outside the panel."""
    blacs = ctx.blacs
    assert blacs is not None
    desc = work.desc
    mat = work.materialized
    pc = desc.grid.pc
    mycol = blacs.mycol
    ln = numroc(desc.n, desc.nb, mycol, 0, pc)
    # Local column positions of the panel on its owning grid column.
    pcol_k = (j0 // desc.nb) % pc
    if mycol == pcol_k:
        _own, lc0 = global_to_local(j0, desc.nb, 0, pc)
        segments = [(0, lc0), (lc0 + w, ln)]
    else:
        segments = [(0, ln)]
    real_swaps = [(a, b) for a, b in swaps if a != b]
    if mat:
        for g1, g2 in real_swaps:
            for lc_from, lc_to in segments:
                if lc_to > lc_from:
                    yield from _swap_panel_rows(ctx, work, g1, g2,
                                                lc_from, lc_to)
    elif real_swaps:
        # Phantom: sample one swap of the full local width, charge the
        # rest (synchronized first — see _factor_panel).
        yield from blacs.comm.barrier()
        t0 = ctx.env.now
        g1, g2 = real_swaps[0]
        for lc_from, lc_to in segments:
            if lc_to > lc_from:
                yield from _swap_panel_rows(ctx, work, g1, g2,
                                            lc_from, lc_to)
        elapsed = ctx.env.now - t0
        yield from ctx.repeat_cost(elapsed, len(real_swaps))


class _PivotMax:
    """Reduce operator choosing the (value, prow, lrow) with max value."""

    name = "pivot-max"

    def __call__(self, a, b):
        return a if a[0] >= b[0] else b


_PIVOT_MAX = _PivotMax()


class LUApplication(Application):
    """Ten LU factorizations of an ``n x n`` matrix (paper's LU job)."""

    topology = "grid"

    def __init__(self, problem_size: int, **kwargs):
        super().__init__(problem_size, **kwargs)

    @property
    def name(self) -> str:
        return "LU"

    def default_block(self) -> int:
        # ScaLAPACK-era sweet spot; small problems get smaller blocks.
        return min(64, max(1, self.problem_size // 8))

    def create_data(self, grid: ProcessGrid) -> dict[str, DistributedMatrix]:
        desc = Descriptor(m=self.problem_size, n=self.problem_size,
                          mb=self.block, nb=self.block, grid=grid,
                          itemsize=self.dtype.itemsize)
        if self.materialized:
            rng = np.random.default_rng(1234)
            a = rng.standard_normal((self.problem_size, self.problem_size))
            return {"A": DistributedMatrix.from_global(
                a.astype(self.dtype), desc)}
        return {"A": DistributedMatrix(desc, materialized=False,
                                       dtype=self.dtype)}

    def flops_per_iteration(self) -> float:
        return 2.0 / 3.0 * self.problem_size ** 3

    def iterate(self, ctx: AppContext) -> Generator:
        # Measure-once iteration replay (Application.replay_iterations):
        # a phantom factorization's per-rank duration is a pure function
        # of the configuration, so after one measured walk the clock
        # advances in O(1) per iteration.
        result = yield from self.replay_iterations(
            ctx, lambda: self._factor_once(ctx),
            key=(self.problem_size, self.block))
        return [] if result is None else result

    def _factor_once(self, ctx: AppContext) -> Generator:
        # Factor a working copy so the persistent data (what resizing
        # redistributes) stays intact across iterations.
        work = yield from ctx.shared_object(
            lambda: _copy_matrix(ctx.data["A"]))
        yield from ctx.charge_memory(work.local_nbytes(ctx.comm.rank))
        ipiv = yield from pdgetrf(ctx, work)
        return ipiv
