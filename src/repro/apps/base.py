"""Application base class and the per-rank execution context."""

from __future__ import annotations

import abc
from typing import Generator, Optional

import numpy as np

from repro.blacs import BlacsContext, ProcessGrid
from repro.cluster.machine import Machine
from repro.cluster.topology import legal_configs_for
from repro.darray import DistributedMatrix
from repro.mpi.comm import Comm


class AppContext:
    """What one rank of a running application sees.

    Holds the current communicator/BLACS context/data — all of which the
    resizing library swaps out at a resize point — plus helpers to charge
    local computation to the simulated clock.
    """

    def __init__(self, comm: Comm, blacs: Optional[BlacsContext],
                 data: dict[str, DistributedMatrix], machine: Machine):
        self.comm = comm
        self.blacs = blacs
        self.data = data
        self.machine = machine
        #: Set by runtimes that drive iterations between barriers (the
        #: resizing library's iteration loop and ``run_static`` both
        #: do).  :meth:`Application.replay_iterations` requires it — an
        #: unanchored iteration's duration depends on arbitrary caller
        #: state and must not be replayed.
        self.iteration_anchored = False

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def env(self):
        return self.comm.env

    @property
    def materialized(self) -> bool:
        """True when any global array holds real data (the data dict can
        also carry plain bookkeeping entries, e.g. replay caches)."""
        return any(dm.materialized for dm in self.data.values()
                   if isinstance(dm, DistributedMatrix))

    def charge(self, flops: float) -> Generator:
        """Occupy this rank's processor for ``flops`` of local work."""
        node = self.machine.nodes[self.comm.node_of(self.comm.rank)]
        yield self.env.sleep(flops / node.flop_rate)

    def charge_memory(self, nbytes: float) -> Generator:
        """One pass over ``nbytes`` of local memory (copies, transposes)."""
        node = self.machine.nodes[self.comm.node_of(self.comm.rank)]
        yield self.env.sleep(nbytes / node.memory_bandwidth)

    def shared_object(self, factory) -> Generator:
        """SPMD-safe shared object: rank 0 builds it, everyone gets it.

        The simulator runs all ranks in one OS process, so "distributed"
        objects (e.g. a working copy of a DistributedMatrix) are one
        Python object shared by reference; the broadcast that shares the
        reference is charged as a real (tiny) collective.
        """
        obj = factory() if self.comm.rank == 0 else None
        obj = yield from self.comm.bcast(obj, root=0)
        return obj

    def repeat_cost(self, elapsed_once: float, count: int) -> Generator:
        """Charge ``count - 1`` repetitions of an already-measured cost.

        Pattern for phantom-mode kernels: perform one representative
        communication round for real (so its cost reflects current
        contention), measure it, then charge the remaining ``count - 1``
        identical rounds as a single timeout.  The simulation is
        deterministic, so one sample of an identical op is exact.
        """
        if count > 1 and elapsed_once > 0:
            yield self.env.sleep((count - 1) * elapsed_once)
        elif count <= 1:
            return


class Application(abc.ABC):
    """An iterative, resizable SPMD application (the paper's model).

    Concrete applications define their data layout, one outer iteration,
    and their legal processor configurations.  The ReSHAPE runtime calls
    :meth:`iterate` once per outer iteration on every rank and handles
    resize points between iterations.
    """

    #: "grid" for nearly-square 2-D topologies (LU, MM); "flat" for 1-D.
    topology: str = "grid"

    #: Whether the runtime must build a BLACS context for this
    #: application's ranks.  Dense-matrix kernels need one; pure
    #: compute/self-scheduling apps can skip the (simulated) context
    #: setup collectives.  Only new applications opt out — flipping an
    #: existing app would change its startup cost and with it every
    #: recorded timeline.
    needs_blacs: bool = True

    def __init__(self, problem_size: int, *, block: int = 0,
                 iterations: int = 10, materialized: bool = False,
                 allowed_configs: Optional[list[tuple[int, int]]] = None,
                 dtype=np.float64):
        if problem_size <= 0:
            raise ValueError("problem size must be positive")
        self.problem_size = problem_size
        self.block = block or self.default_block()
        self.iterations = iterations
        self.materialized = materialized
        #: Explicit legal configurations (e.g. the paper's Table 2 rows);
        #: None means "derive from divisibility rules".
        self.allowed_configs = allowed_configs
        self.dtype = np.dtype(dtype)

    # -- hooks ------------------------------------------------------------
    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short name, e.g. ``"LU"``."""

    def default_block(self) -> int:
        """Default block size when the caller does not pin one."""
        return max(1, self.problem_size // 100)

    @abc.abstractmethod
    def create_data(self, grid: ProcessGrid) -> dict[str, DistributedMatrix]:
        """Allocate the application's global data on ``grid``."""

    @abc.abstractmethod
    def iterate(self, ctx: AppContext) -> Generator:
        """One outer iteration, executed SPMD by every rank."""

    def replay_iterations(self, ctx: AppContext, body, *, key=(),
                          confirm: int = 1, tol: float = 0.0) -> Generator:
        """Run one outer iteration, replaying measured durations when
        that is provably equivalent (the measure-once trick PR 2 built
        for LU, generalized).

        ``body`` is a zero-argument callable returning the iteration
        generator.  In phantom mode, when the runtime barriers around
        iterations (``ctx.iteration_anchored``) and the communicator
        rides the phantom fast path (deterministic simulation, no
        tracing), an iteration's per-rank duration is a pure function of
        the processor configuration — so after ``confirm`` fully
        measured iterations at a configuration (whose per-rank duration
        vectors must agree within relative ``tol`` when ``confirm > 1``)
        the remaining iterations advance the clock in O(1) per rank.
        Replayed iterations book no traffic (documented in
        ``docs/phantom.md``) and return ``None``; anything else — a
        materialized run, a custom non-anchored driver, the fast path
        switched off, unstable measurements — runs ``body`` live.

        The decision is SPMD-safe: the shared cache is complete for
        iteration ``k-1`` before any rank enters iteration ``k`` (the
        runtime barrier guarantees it), so every rank takes the same
        branch.
        """
        comm = ctx.comm
        fast = None if (self.materialized or ctx.materialized) \
            else comm._fastcoll()
        if (fast is None or not fast.exclusive
                or not ctx.iteration_anchored):
            # fast.exclusive: ranks sharing NICs with other jobs
            # (cpus_per_node > 1) make iteration durations depend on
            # concurrent traffic — never replay those.
            result = yield from body()
            return result
        cache = ctx.data.setdefault("_iter_replay", {})
        ckey = (self.name, tuple(comm.processors),
                None if ctx.blacs is None else ctx.blacs.grid.shape,
                *key)
        runs = cache.setdefault(ckey, [])
        size = comm.size
        done = [r for r in runs if len(r) == size]
        if len(done) >= confirm:
            last = done[-1]
            stable = True
            if confirm > 1:
                prev = done[-2]
                for rank in range(size):
                    a, b = prev[rank], last[rank]
                    if a != b and abs(a - b) > tol * max(abs(a), abs(b)):
                        stable = False
                        break
            if stable:
                if last[comm.rank] > 0:
                    yield ctx.env.sleep(last[comm.rank])
                return None
        if len(runs) == len(done):
            runs.append({})
        slot = runs[-1]
        t0 = ctx.env.now
        result = yield from body()
        slot[comm.rank] = ctx.env.now - t0
        return result

    def legal_configs(self, max_procs: int,
                      min_procs: int = 1) -> list[tuple[int, int]]:
        """Processor configurations this problem size can run on."""
        if self.allowed_configs is not None:
            return sorted(
                (c for c in self.allowed_configs
                 if min_procs <= c[0] * c[1] <= max_procs),
                key=lambda c: (c[0] * c[1], c))
        return legal_configs_for(self.problem_size, max_procs,
                                 topology=self.topology,
                                 min_procs=min_procs)

    def flops_per_iteration(self) -> float:
        """Total flops of one outer iteration (for documentation/models)."""
        return 0.0

    def closed_form_duration(self, config: tuple[int, int],
                             machine: Machine) -> Optional[float]:
        """Whole-run duration on ``config``, when it is a closed form.

        Applications whose execution involves no communication (e.g.
        :class:`~repro.apps.synthetic.SyntheticApplication`) can report
        their runtime here; the framework then books the job as a
        single completion event instead of launching rank processes —
        the scheduler-scale analogue of the phantom fast paths.  The
        framework only takes this path when no resize decision could
        alter the job's allocation (a single-iteration job, or static
        scheduling); a multi-iteration job under dynamic scheduling
        executes its ranks so its resize points stay live.  ``None``
        (the default) means "must be executed".
        """
        return None

    def verify(self, data: dict[str, DistributedMatrix]) -> bool:
        """Numeric check after a run (materialized mode); default: trivial."""
        return True

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} n={self.problem_size} "
                f"block={self.block}>")
