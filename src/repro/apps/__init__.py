"""The paper's five workload applications (Table 1), as real SPMD kernels.

Every application is written against the simulated MPI/BLACS/darray
substrate as genuine distributed code — panel broadcasts, ring
allgathers, all-to-all transposes — so communication costs emerge from
the algorithms rather than from closed-form formulas.  Local computation
is charged to the simulated clock through a calibrated flop model; in
materialized mode the arithmetic is also actually performed and verified
against numpy/scipy references.

=============  =====================================================
Application    Kernel
=============  =====================================================
LU             Right-looking block LU with partial pivoting
               (the role of ScaLAPACK's PDGETRF)
MM             SUMMA matrix-matrix multiply (the role of PDGEMM)
Jacobi         Dense Jacobi iteration, row-block layout
FFT            2-D FFT via row FFTs + all-to-all transpose
Master-worker  Fixed-time work units dealt from a master
=============  =====================================================
"""

from repro.apps.base import AppContext, Application
from repro.apps.fft2d import FFT2DApplication
from repro.apps.jacobi import JacobiApplication
from repro.apps.lu import LUApplication
from repro.apps.masterworker import MasterWorkerApplication
from repro.apps.matmul import MatMulApplication
from repro.apps.synthetic import SyntheticApplication

__all__ = [
    "AppContext",
    "Application",
    "FFT2DApplication",
    "JacobiApplication",
    "LUApplication",
    "MasterWorkerApplication",
    "MatMulApplication",
    "SyntheticApplication",
]


def application_by_name(name: str, **kwargs):
    """Factory used by workload configs: name -> Application instance."""
    table = {
        "lu": LUApplication,
        "mm": MatMulApplication,
        "matmul": MatMulApplication,
        "jacobi": JacobiApplication,
        "masterworker": MasterWorkerApplication,
        "master-worker": MasterWorkerApplication,
        "fft": FFT2DApplication,
        "fft2d": FFT2DApplication,
    }
    key = name.strip().lower()
    if key not in table:
        raise ValueError(f"unknown application {name!r}")
    return table[key](**kwargs)
