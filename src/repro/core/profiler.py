"""Performance Profiler: per-job, per-configuration performance history.

"The Performance Profiler maintains lists of the various processor sizes
each application has run on and the performance of the application at
each of those sizes.  The Profiler also maintains a list of possible
shrink points of various applications and the anticipated impact on the
application's performance."  (§3.1)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from statistics import fmean
from typing import Optional

from repro.redist.costs import RedistributionCostLog


@dataclass
class ShrinkPoint:
    """A configuration a job can fall back to, with expected impact."""

    job_id: int
    config: tuple[int, int]
    processors_freed: int
    expected_degradation: float  # seconds added per iteration (>= 0)


@dataclass
class _JobHistory:
    """Everything the profiler knows about one job."""

    #: iteration times observed at each configuration.
    times: dict[tuple[int, int], list[float]] = \
        field(default_factory=lambda: defaultdict(list))
    #: configurations in first-visited order (shrink candidates).
    visited: list[tuple[int, int]] = field(default_factory=list)
    #: the configuration before the most recent resize, if any.
    previous_config: Optional[tuple[int, int]] = None
    #: what the last resize did: "expand", "shrink" or None.
    last_action: Optional[str] = None
    redistribution: RedistributionCostLog = \
        field(default_factory=RedistributionCostLog)


class PerformanceProfiler:
    """Collects resize-point reports and answers policy questions."""

    def __init__(self):
        self._jobs: dict[int, _JobHistory] = defaultdict(_JobHistory)

    # -- recording ----------------------------------------------------------
    def record_iteration(self, job_id: int, config: tuple[int, int],
                         iteration_time: float) -> None:
        hist = self._jobs[job_id]
        config = tuple(config)
        hist.times[config].append(iteration_time)
        if config not in hist.visited:
            hist.visited.append(config)

    def record_resize(self, job_id: int, action: str,
                      old_config: tuple[int, int],
                      new_config: tuple[int, int],
                      nbytes: int, elapsed: float, when: float,
                      bytes_moved: Optional[int] = None) -> None:
        """Record one resize.  ``nbytes`` is the redistributed payload;
        ``bytes_moved`` the wire traffic actually observed (optional)."""
        hist = self._jobs[job_id]
        hist.previous_config = tuple(old_config)
        hist.last_action = action
        hist.redistribution.record(old_config, new_config, nbytes,
                                   elapsed, when, bytes_moved=bytes_moved)

    def forget(self, job_id: int) -> None:
        self._jobs.pop(job_id, None)

    # -- queries ------------------------------------------------------------
    def mean_time(self, job_id: int,
                  config: tuple[int, int]) -> Optional[float]:
        times = self._jobs[job_id].times.get(tuple(config))
        if not times:
            return None
        return fmean(times)

    def latest_time(self, job_id: int,
                    config: tuple[int, int]) -> Optional[float]:
        times = self._jobs[job_id].times.get(tuple(config))
        if not times:
            return None
        return times[-1]

    def visited_configs(self, job_id: int) -> list[tuple[int, int]]:
        return list(self._jobs[job_id].visited)

    def previous_config(self, job_id: int) -> Optional[tuple[int, int]]:
        return self._jobs[job_id].previous_config

    def last_action(self, job_id: int) -> Optional[str]:
        return self._jobs[job_id].last_action

    def has_expanded(self, job_id: int) -> bool:
        """Has this job ever been grown beyond a configuration?"""
        return self.last_expansion(job_id) is not None

    def last_expansion(self, job_id: int):
        """Most recent expansion record (from/to configs), or None."""
        for rec in reversed(self._jobs[job_id].redistribution.records):
            if _size(rec.to_config) > _size(rec.from_config):
                return rec
        return None

    def redistribution_log(self, job_id: int) -> RedistributionCostLog:
        return self._jobs[job_id].redistribution

    def shrink_points(self, job_id: int,
                      current: tuple[int, int]) -> list[ShrinkPoint]:
        """Configurations this job may shrink to, smallest-loss first.

        "Applications can only shrink to processor configurations on
        which they have previously run."  Expected degradation is the
        difference of mean iteration times (0 when unknown).
        """
        hist = self._jobs[job_id]
        cur_size = _size(current)
        cur_time = self.mean_time(job_id, current)
        points = []
        for config in hist.visited:
            size = _size(config)
            if size >= cur_size:
                continue
            then = self.mean_time(job_id, config)
            degradation = 0.0
            if then is not None and cur_time is not None:
                degradation = max(0.0, then - cur_time)
            points.append(ShrinkPoint(job_id=job_id, config=config,
                                      processors_freed=cur_size - size,
                                      expected_degradation=degradation))
        # Prefer freeing fewer processors (less disruption) first.
        points.sort(key=lambda sp: sp.processors_freed)
        return points


def _size(config: tuple[int, int]) -> int:
    return config[0] * config[1]
