"""System Monitor: tracks running jobs and recovers their resources.

"An application monitor is instantiated on every compute node... If an
application fails due to an internal error or finishes its execution
successfully, the application monitor sends a job error or a job end
signal to the System Monitor.  The System Monitor then deletes the job
and recovers the application's resources."  (§3.1)

In the simulation the per-node application monitors collapse to the
first-rank callback (the paper itself only has the first node's monitor
talk to the System Monitor).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.job import Job, JobState
from repro.core.pool import ProcessorPool


class SystemMonitor:
    """Receives job end/error signals and reclaims processors."""

    def __init__(self, pool: ProcessorPool,
                 on_resources_freed: Optional[Callable[[], None]] = None):
        self.pool = pool
        self.on_resources_freed = on_resources_freed
        self.running: dict[int, Job] = {}
        self.finished: list[Job] = []
        self.failed: list[Job] = []

    def job_started(self, job: Job) -> None:
        self.running[job.job_id] = job

    def job_ended(self, job: Job, now: float) -> None:
        """Job-end signal from the application monitor on the first node."""
        self.running.pop(job.job_id, None)
        job.state = JobState.FINISHED
        job.end_time = now
        self.pool.release_all(job.job_id)
        job.processors = []
        self.finished.append(job)
        if self.on_resources_freed:
            self.on_resources_freed()

    def job_failed(self, job: Job, now: float, error: str = "") -> None:
        """Job-error signal: delete the job and recover its resources.

        A no-op for jobs not currently running, so simultaneous error
        signals from several ranks release the processors exactly once.
        """
        if self.running.pop(job.job_id, None) is None:
            return
        job.state = JobState.FAILED
        job.end_time = now
        self.pool.release_all(job.job_id)
        job.processors = []
        self.failed.append(job)
        if self.on_resources_freed:
            self.on_resources_freed()
