"""The machine's processor pool as the scheduler sees it, and the
reservation ledger the wake path keeps over it."""

from __future__ import annotations

from typing import Optional


class ProcessorPool:
    """Tracks which machine processors are free versus assigned to jobs.

    The pool hands out the lowest-numbered free processors (the paper's
    cluster is homogeneous, so identity only matters for node mapping),
    and supports partial release for shrink operations.
    """

    def __init__(self, total: int):
        if total < 1:
            raise ValueError("pool must have at least one processor")
        self.total = total
        self._free: set[int] = set(range(total))
        self._owner: dict[int, int] = {}  # processor -> job_id

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def busy_count(self) -> int:
        return self.total - len(self._free)

    def free_processors(self) -> list[int]:
        return sorted(self._free)

    def owner_of(self, processor: int) -> Optional[int]:
        return self._owner.get(processor)

    def processors_of(self, job_id: int) -> list[int]:
        return sorted(p for p, j in self._owner.items() if j == job_id)

    def allocate(self, count: int, job_id: int) -> list[int]:
        """Take ``count`` free processors for ``job_id``."""
        if count < 0:
            raise ValueError("negative allocation")
        if count > len(self._free):
            raise RuntimeError(f"allocation of {count} processors with "
                               f"only {len(self._free)} free")
        chosen = sorted(self._free)[:count]
        for p in chosen:
            self._free.discard(p)
            self._owner[p] = job_id
        return chosen

    def release(self, processors: list[int], job_id: int) -> None:
        """Return specific processors held by ``job_id`` to the pool."""
        for p in processors:
            if self._owner.get(p) != job_id:
                raise RuntimeError(f"processor {p} not held by job "
                                   f"{job_id}")
            del self._owner[p]
            self._free.add(p)

    def release_all(self, job_id: int) -> list[int]:
        """Return everything ``job_id`` holds; returns what was freed."""
        held = self.processors_of(job_id)
        self.release(held, job_id)
        return held


class ReservationLedger:
    """Reservation-style bookkeeping for the scheduler's wake path.

    When the queue head cannot start, the ledger records its claim on
    the idle processors: how many of the free processors the head will
    take (``reserved``) and how many more must come free before it can
    start (``shortfall``).  Two consumers:

    * The framework's wake filter — a resource release or arrival that
      cannot possibly start anything (fewer free processors than the
      smallest queued request, and short of the head's claim) skips the
      scheduler pass entirely instead of probing the queue.
    * The expansion path — processors under the head's claim are not
      "idle" for expansion purposes (:meth:`available_for_expansion`).
      This never changes a decision — the paper only expands when the
      queue is empty, and an empty queue holds no reservation — but it
      keeps the invariant explicit instead of coincidental.

    The ledger is bookkeeping only: every decision still comes from the
    queue and pool state, so scan and indexed schedulers stay
    bit-identical (``tests/test_scheduler_indexed.py``).
    """

    def __init__(self, pool: ProcessorPool):
        self.pool = pool
        #: job_id of the blocked queue head, or None.
        self.holder: Optional[int] = None
        #: Free processors the blocked head has claimed.
        self.reserved = 0
        #: Additional processors the head needs before it can start.
        self.shortfall = 0
        #: Wake-filter statistics (reported by the engine benchmark).
        self.wakes_taken = 0
        self.wakes_skipped = 0

    def refresh(self, queue, free: int) -> int:
        """Re-derive the head's claim from current state; returns the
        shortfall (0 when the head fits or the queue is empty)."""
        head = queue.head()
        if head is None:
            self.clear()
            return 0
        need = head.requested_size
        self.holder = head.job_id
        self.reserved = min(free, need)
        self.shortfall = max(0, need - free)
        return self.shortfall

    def clear(self) -> None:
        self.holder = None
        self.reserved = 0
        self.shortfall = 0

    def available_for_expansion(self, free: int) -> int:
        """Idle processors not spoken for by the blocked head's claim."""
        if self.holder is None:
            return free
        return max(0, free - self.reserved)
