"""The machine's processor pool as the scheduler sees it."""

from __future__ import annotations

from typing import Optional


class ProcessorPool:
    """Tracks which machine processors are free versus assigned to jobs.

    The pool hands out the lowest-numbered free processors (the paper's
    cluster is homogeneous, so identity only matters for node mapping),
    and supports partial release for shrink operations.
    """

    def __init__(self, total: int):
        if total < 1:
            raise ValueError("pool must have at least one processor")
        self.total = total
        self._free: set[int] = set(range(total))
        self._owner: dict[int, int] = {}  # processor -> job_id

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def busy_count(self) -> int:
        return self.total - len(self._free)

    def free_processors(self) -> list[int]:
        return sorted(self._free)

    def owner_of(self, processor: int) -> Optional[int]:
        return self._owner.get(processor)

    def processors_of(self, job_id: int) -> list[int]:
        return sorted(p for p, j in self._owner.items() if j == job_id)

    def allocate(self, count: int, job_id: int) -> list[int]:
        """Take ``count`` free processors for ``job_id``."""
        if count < 0:
            raise ValueError("negative allocation")
        if count > len(self._free):
            raise RuntimeError(f"allocation of {count} processors with "
                               f"only {len(self._free)} free")
        chosen = sorted(self._free)[:count]
        for p in chosen:
            self._free.discard(p)
            self._owner[p] = job_id
        return chosen

    def release(self, processors: list[int], job_id: int) -> None:
        """Return specific processors held by ``job_id`` to the pool."""
        for p in processors:
            if self._owner.get(p) != job_id:
                raise RuntimeError(f"processor {p} not held by job "
                                   f"{job_id}")
            del self._owner[p]
            self._free.add(p)

    def release_all(self, job_id: int) -> list[int]:
        """Return everything ``job_id`` holds; returns what was freed."""
        held = self.processors_of(job_id)
        self.release(held, job_id)
        return held
