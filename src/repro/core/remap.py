"""Remap Scheduler: the expand/shrink decision engine of §3.1.

Decision rules, verbatim from the paper:

Expand when
  1. there are idle processors in the system, and
  2. there are no jobs waiting to be scheduled on the idle processors, and
  3. there has been an improvement in the iteration time due to a
     previous expansion or the job has never been expanded.

Shrink when the job has previously run on a smaller processor set and
  1. at the last resize point the application expanded to a size that
     did not provide any performance benefit (shrink back), or
  2. there are applications waiting in the queue: if the job can free
     enough processors to start the next queued job it shrinks just that
     far; otherwise it shrinks to its smallest shrink point (its
     starting processor set) and waits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.job import Job
from repro.core.policies import ExpansionPolicy, SweetSpotPolicy
from repro.core.pool import ProcessorPool, ReservationLedger
from repro.core.profiler import PerformanceProfiler


@dataclass
class RemapDecision:
    """What the scheduler told a job at a resize point."""

    action: str                                   # "expand"|"shrink"|"none"
    new_config: Optional[tuple[int, int]] = None
    #: For expansions: machine processors granted (already reserved).
    added_processors: list[int] = field(default_factory=list)

    @property
    def is_resize(self) -> bool:
        return self.action in ("expand", "shrink")


class RemapScheduler:
    """Evaluates resize requests against pool, queue and profiler state."""

    def __init__(self, pool: ProcessorPool, queue,
                 profiler: PerformanceProfiler, *,
                 max_procs: Optional[int] = None,
                 dynamic: bool = True,
                 sweet_spot: Optional[SweetSpotPolicy] = None,
                 expansion: Optional[ExpansionPolicy] = None,
                 ledger: Optional[ReservationLedger] = None):
        self.pool = pool
        self.queue = queue
        self.profiler = profiler
        self.max_procs = max_procs or pool.total
        self.dynamic = dynamic
        self.sweet_spot = sweet_spot or SweetSpotPolicy()
        self.expansion = expansion or ExpansionPolicy()
        self.ledger = ledger or ReservationLedger(pool)
        self.decisions: list[tuple[float, int, RemapDecision]] = []

    def decide(self, job: Job, iteration_time: float,
               redistribution_time: float, now: float) -> RemapDecision:
        """Process one resize-point report and return the verdict."""
        assert job.config is not None
        self.profiler.record_iteration(job.job_id, job.config,
                                       iteration_time)
        decision = self._decide_inner(job)
        self.decisions.append((now, job.job_id, decision))
        return decision

    # ------------------------------------------------------------------
    def _decide_inner(self, job: Job) -> RemapDecision:
        if not self.dynamic:
            return RemapDecision(action="none")
        current = job.config
        assert current is not None
        # Bring the reservation ledger up to date with the queue head's
        # claim before judging idle capacity.
        self.ledger.refresh(self.queue, self.pool.free_count)

        # -- shrink rule 1: last expansion did not pay ------------------
        if self.sweet_spot.expansion_regretted(self.profiler, job.job_id,
                                               current):
            prev = self.profiler.previous_config(job.job_id)
            if prev is not None and _size(prev) < _size(current):
                return RemapDecision(action="shrink", new_config=prev)

        # -- shrink rule 2: queued jobs need processors ------------------
        if not self.queue.empty:
            return self._shrink_for_queue(job, current)

        # -- expansion ---------------------------------------------------
        # Idle processors net of the ledger's head reservation (always
        # equal to free_count here: the queue is empty, so no head holds
        # a claim — the ledger keeps that invariant explicit).
        idle = self.ledger.available_for_expansion(self.pool.free_count)
        if idle > 0 and self.queue.empty and \
                self.sweet_spot.expansion_worthwhile(self.profiler,
                                                     job.job_id, current):
            configs = job.app.legal_configs(self.max_procs)
            target = self.expansion.choose(configs, current, idle,
                                           reserved=self.ledger.reserved)
            if target is not None:
                added = self.pool.allocate(_size(target) - _size(current),
                                           job.job_id)
                return RemapDecision(action="expand", new_config=target,
                                     added_processors=added)
        return RemapDecision(action="none")

    def _shrink_for_queue(self, job: Job,
                          current: tuple[int, int]) -> RemapDecision:
        # refresh() re-derives the head's claim from current queue/pool
        # state and returns the shortfall (== needed_for_head) — no
        # reliance on an earlier refresh having run.
        needed = self.ledger.refresh(self.queue, self.pool.free_count)
        if needed <= 0:
            # Head already fits; let the application scheduler start it.
            return RemapDecision(action="none")
        points = self.profiler.shrink_points(job.job_id, current)
        if not points:
            return RemapDecision(action="none")
        # Smallest sacrifice that frees enough for the queued job...
        for point in points:  # sorted by processors_freed ascending
            if point.processors_freed >= needed:
                return RemapDecision(action="shrink",
                                     new_config=point.config)
        # ...otherwise give up everything down to the starting set.
        deepest = max(points, key=lambda sp: sp.processors_freed)
        return RemapDecision(action="shrink", new_config=deepest.config)


def _size(config: tuple[int, int]) -> int:
    return config[0] * config[1]
