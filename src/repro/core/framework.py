"""The ReSHAPE framework: wiring of scheduler, monitor, pool and jobs.

One object owns a simulated machine and runs a whole experiment:

    fw = ReshapeFramework(num_processors=36)
    fw.submit(LUApplication(21000), config=(2, 3), arrival=0.0)
    fw.submit(JacobiApplication(8000), config=(4, 1), arrival=465.0)
    fw.run()

With ``dynamic=False`` the identical machinery performs the paper's
*static scheduling* baseline (every remap decision is "no change"), so
Table 4/5 comparisons are apples-to-apples.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

from repro.apps.base import Application
from repro.blacs import ProcessGrid
from repro.cluster.machine import Machine, MachineSpec
from repro.core.events import TimelineRecorder
from repro.core.job import Job, JobState
from repro.core.monitor import SystemMonitor
from repro.core.policies import (
    ExpansionPolicy,
    SweetSpotPolicy,
    resolve_expansion,
    resolve_sweet_spot,
)
from repro.core.pool import ProcessorPool, ReservationLedger
from repro.core.profiler import PerformanceProfiler
from repro.core.queue import make_job_queue
from repro.core.remap import RemapDecision, RemapScheduler
from repro.mpi import World
from repro.simulate import Environment


class ReshapeFramework:
    """Application scheduling and monitoring module (paper §3.1)."""

    def __init__(self, *,
                 env: Optional[Environment] = None,
                 machine_spec: Optional[MachineSpec] = None,
                 machine: Optional[Machine] = None,
                 num_processors: Optional[int] = None,
                 dynamic: bool = True,
                 backfill: bool = True,
                 scheduler: str = "indexed",
                 direct_execution: bool = True,
                 sweet_spot: Union[SweetSpotPolicy, str, None] = None,
                 expansion: Union[ExpansionPolicy, str, None] = None,
                 redistribution_method: str = "reshape",
                 rpc_latency: float = 2e-3,
                 spec: Optional[MachineSpec] = None):
        if spec is not None:
            # One-release shim: ``spec=`` predates the declarative
            # ScenarioSpec layer, where "spec" now means the scenario.
            warnings.warn("ReshapeFramework(spec=...) is deprecated; "
                          "pass machine_spec=...", DeprecationWarning,
                          stacklevel=2)
            machine_spec = machine_spec if machine_spec is not None else spec
        self.env = env or Environment()
        self.machine = machine or Machine(self.env,
                                          machine_spec or MachineSpec())
        total = num_processors or self.machine.total_processors
        if total > self.machine.total_processors:
            raise ValueError("num_processors exceeds the machine")
        self.pool = ProcessorPool(total)
        #: ``"indexed"`` (size-indexed queue + reservation ledger) or
        #: ``"scan"`` (the seed's O(n)-per-wake scan) — decisions are
        #: identical, only the wake cost differs.
        self.queue = make_job_queue(scheduler, backfill=backfill)
        self.ledger = ReservationLedger(self.pool)
        self.profiler = PerformanceProfiler()
        self.remap = RemapScheduler(self.pool, self.queue, self.profiler,
                                    max_procs=total, dynamic=dynamic,
                                    sweet_spot=resolve_sweet_spot(sweet_spot),
                                    expansion=resolve_expansion(expansion),
                                    ledger=self.ledger)
        self.monitor = SystemMonitor(self.pool,
                                     on_resources_freed=self._wake)
        self.world = World(self.env, self.machine)
        self.timeline = TimelineRecorder()
        self.dynamic = dynamic
        if redistribution_method not in ("reshape", "checkpoint"):
            raise ValueError(f"unknown redistribution method "
                             f"{redistribution_method!r}")
        self.redistribution_method = redistribution_method
        #: Book jobs that report a closed-form runtime as one completion
        #: event instead of launching rank processes (the scheduler-scale
        #: analogue of the phantom fast paths; only applications with no
        #: communication and no resize points qualify — see
        #: ``Application.closed_form_duration``).
        self.direct_execution = direct_execution
        #: Cost of one application <-> scheduler message exchange.
        self.rpc_latency = rpc_latency
        self.jobs: list[Job] = []
        #: The Application Scheduler is handler-table driven, not a
        #: generator process: arrivals, scheduling passes and direct
        #: completions are packed records jumping straight to the
        #: methods below (one queue tuple per hop, no Event objects, no
        #: generator-resume machinery on the per-job path).
        self._wake_pending = False
        self._h_arrival = self.env.register_handler(self._on_arrival)
        self._h_pass = self.env.register_handler(self._scheduler_pass)
        self._h_complete = self.env.register_handler(self._complete_direct)

    # ------------------------------------------------------------------
    # Submission and the Application Scheduler
    # ------------------------------------------------------------------
    def submit(self, app: Application, config: tuple[int, int], *,
               arrival: float = 0.0, name: Optional[str] = None,
               priority: int = 0) -> Job:
        """Submit ``app`` to arrive at ``arrival`` requesting ``config``."""
        job = Job(app=app, initial_config=tuple(config),
                  arrival_time=arrival, name=name, priority=priority)
        if job.requested_size > self.pool.total:
            raise ValueError(f"job {job.name} requests "
                             f"{job.requested_size} processors; the "
                             f"experiment has {self.pool.total}")
        self.jobs.append(job)
        # One packed record per arrival — not a per-job driver process.
        self.env.call_at(max(job.arrival_time, self.env.now),
                         self._h_arrival, job)
        return job

    def _on_arrival(self, job: Job) -> None:
        job.state = JobState.QUEUED
        self.queue.enqueue(job)
        self._wake()

    def _wake(self) -> None:
        """Book a scheduling pass — unless nothing can start.

        The reservation ledger makes the filter exact: a wake is useful
        only if some queued job fits the free processors (with simple
        backfill, that is ``min queued size <= free``).  Anything else
        would probe the queue and find nothing, so it is skipped; every
        state change that could flip the answer (arrival, release,
        shrink) comes back through here.
        """
        if self._wake_pending:
            return
        if not self.queue.can_start(self.pool.free_count):
            self.ledger.wakes_skipped += 1
            return
        self.ledger.wakes_taken += 1
        self._wake_pending = True
        self.env.call_at(self.env.now, self._h_pass, None)

    def _scheduler_pass(self, _arg) -> None:
        """One FCFS/backfill scheduling pass (the §3.1 scheduler body)."""
        self._wake_pending = False
        while True:
            job = self.queue.next_startable(self.pool.free_count)
            if job is None:
                break
            self._start_job(job)
        # Record the blocked head's claim on the idle processors (0
        # when the queue is empty or drained).
        self.ledger.refresh(self.queue, self.pool.free_count)

    def _start_job(self, job: Job) -> None:
        """Job Startup: allocate, build data, launch rank processes."""
        self.queue.remove(job)
        processors = self.pool.allocate(job.requested_size, job.job_id)
        job.processors = processors
        job.config = job.initial_config
        job.state = JobState.RUNNING
        job.start_time = self.env.now
        grid = ProcessGrid(*job.initial_config)
        data = job.app.create_data(grid)
        job.data.clear()
        job.data.update(data)
        self.monitor.job_started(job)
        self.timeline.record(self.env.now, job.job_id, job.name,
                             job.requested_size, job.config, "start")
        # Closed-form booking must never bypass a live resize decision:
        # a multi-iteration job under dynamic scheduling hits resize
        # points that can change its allocation, so only jobs that
        # cannot be resized (single iteration, or static scheduling
        # where every decision is "no change") qualify.
        if self.direct_execution and \
                (job.app.iterations <= 1 or not self.dynamic):
            duration = job.app.closed_form_duration(job.initial_config,
                                                    self.machine)
            if duration is not None:
                self.env.call_at(self.env.now + duration,
                                 self._h_complete, job)
                return
        from repro.api.resize import resizable_main
        self.world.launch(resizable_main, processors=processors,
                          args=(self, job), name=job.name)

    def _complete_direct(self, job: Job) -> None:
        """Completion of a closed-form job (no rank processes ran)."""
        job.iterations_done = job.app.iterations
        self.job_complete(job)

    # ------------------------------------------------------------------
    # Callbacks from the resizing library (rank 0 of each job)
    # ------------------------------------------------------------------
    def remap_request(self, job: Job, iteration_time: float,
                      redistribution_time: float) -> RemapDecision:
        """Resize-point report -> decision (Remap Scheduler)."""
        return self.remap.decide(job, iteration_time, redistribution_time,
                                 now=self.env.now)

    def notify_resized(self, job: Job, old_config: tuple[int, int],
                       new_config: tuple[int, int], action: str, *,
                       nbytes_payload: int, nbytes_moved: int,
                       elapsed: float,
                       added: Optional[list[int]] = None) -> None:
        """Resize completed: update ownership, history and the timeline.

        ``nbytes_payload`` is the total payload of the redistributed
        arrays; ``nbytes_moved`` the bytes that actually crossed the
        wire (local copies excluded) — the profiler keeps both so cost
        prediction can use real traffic instead of a modelled fraction.
        """
        self.profiler.record_resize(job.job_id, action, old_config,
                                    new_config, nbytes_payload, elapsed,
                                    when=self.env.now,
                                    bytes_moved=nbytes_moved)
        job.redistribution_time += elapsed
        new_size = new_config[0] * new_config[1]
        if action == "expand":
            assert added is not None
            job.processors = job.processors + list(added)
        else:
            freed = job.processors[new_size:]
            job.processors = job.processors[:new_size]
            if freed:
                self.pool.release(freed, job.job_id)
        job.config = tuple(new_config)
        self.timeline.record(self.env.now, job.job_id, job.name,
                             new_size, job.config, action)
        if action == "shrink":
            self._wake()

    def job_complete(self, job: Job) -> None:
        """Job-end signal from the application monitor."""
        self.timeline.record(self.env.now, job.job_id, job.name, 0,
                             None, "finish")
        self.monitor.job_ended(job, self.env.now)

    def job_error(self, job: Job, error: str) -> None:
        """Job-error signal: delete the job, recover its resources.

        Idempotent: several ranks of a failing job (parents and spawned
        children alike) may all report; only the first signal acts.  The
        timeline records a distinct ``"error"`` event (processor count 0,
        so utilization accounting matches ``"finish"``).
        """
        if job.job_id not in self.monitor.running:
            return
        self.timeline.record(self.env.now, job.job_id, job.name, 0,
                             None, "error")
        self.monitor.job_failed(job, self.env.now, error=error)

    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(cls, spec) -> "ReshapeFramework":
        """Build a framework from a declarative ScenarioSpec.

        Delegates to the sweep resolver so every construction path —
        CLI, benchmarks, library callers — shares one description.
        (Lazy import: ``repro.sweep`` depends on this module.)
        """
        from repro.sweep.resolver import build_framework
        return build_framework(spec)

    def run(self, until: Optional[float] = None) -> None:
        """Run the experiment to completion (or to ``until``)."""
        self.env.run(until=until)

    # -- result accessors ---------------------------------------------------
    def turnaround_times(self) -> dict[str, float]:
        out = {}
        for job in self.jobs:
            if job.turnaround is not None:
                out[job.name] = job.turnaround
        return out

    def utilization(self) -> float:
        return self.timeline.utilization(self.pool.total)
