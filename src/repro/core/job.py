"""Jobs: one submitted application run and its lifecycle state."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.apps.base import Application

_job_ids = itertools.count(1)


def reset_job_ids(start: int = 1) -> None:
    """Restart the process-global job-id counter.

    Job ids are only required to be unique within one experiment, but
    they appear in recorded timelines — so two runs of the same
    scenario produce bit-identical timelines only if both start from
    the same counter.  The sweep resolver calls this at scenario entry,
    making ``run_scenario`` a pure function of its spec regardless of
    how many experiments the hosting process ran before (single-threaded
    simulation; never call it while a framework is mid-run).
    """
    global _job_ids
    _job_ids = itertools.count(start)


class JobState(enum.Enum):
    PENDING = "pending"        # submitted, not yet arrived
    QUEUED = "queued"          # waiting for processors
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class Job:
    """A submitted application plus its scheduling state.

    ``initial_config`` is what the user requested at submission; the
    *current* configuration changes over the job's life under dynamic
    resizing.  ``data`` holds the application's global data structures
    (shared across ranks; swapped wholesale at each redistribution).
    """

    app: Application
    initial_config: tuple[int, int]
    arrival_time: float = 0.0
    name: Optional[str] = None
    #: Scheduling priority (higher starts first); the QoS hook the paper
    #: lists among its motivations ("accommodate higher priority jobs").
    priority: int = 0
    job_id: int = field(default_factory=lambda: next(_job_ids))

    # -- runtime state, owned by the framework ---------------------------
    state: JobState = JobState.PENDING
    config: Optional[tuple[int, int]] = None
    processors: list[int] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)
    iterations_done: int = 0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    #: Redistribution seconds accumulated over the job's life.
    redistribution_time: float = 0.0
    #: (iteration, config, iteration_time, redistribution_time) records
    #: appended by the resizing library's ``log`` call (Fig 3a's columns).
    iteration_log: list[tuple] = field(default_factory=list)
    #: Set while a resize is being executed (spawn/redistribute window).
    resizing: bool = False

    def __post_init__(self):
        if self.name is None:
            self.name = f"{self.app.name}#{self.job_id}"
        pr, pc = self.initial_config
        if pr < 1 or pc < 1:
            raise ValueError(f"bad initial config {self.initial_config}")

    @property
    def size(self) -> int:
        """Current processor count (0 if not running)."""
        if self.config is None:
            return 0
        return self.config[0] * self.config[1]

    @property
    def requested_size(self) -> int:
        return self.initial_config[0] * self.initial_config[1]

    @property
    def turnaround(self) -> Optional[float]:
        """Arrival-to-completion time, once finished."""
        if self.end_time is None:
            return None
        return self.end_time - self.arrival_time

    def __repr__(self) -> str:
        return (f"<Job {self.name} {self.state.value} "
                f"config={self.config}>")
