"""Resizing policies: sweet-spot detection and expansion-target choice.

"Our initial implementation of sweet spot detection in ReSHAPE simply
adds processors as long as they are available and as long as there is
improvement in iteration time.  If an application grows to a
configuration that yields no improvement, it is shrunk back to its most
recent configuration."  (§4.1.1)

The paper also sketches "a more sophisticated sweet spot detection
algorithm (under development) which uses performance over several
configurations to detect relative improvements below some required
threshold" — implemented here as :class:`ThresholdSweetSpot`.

Policies are frozen dataclasses: stateless (or parameterized by plain
numbers), picklable, ``__eq__``/``__repr__``-stable, and constructible
from registry names (``make_sweet_spot("threshold", threshold=0.05)``)
so a :class:`~repro.sweep.ScenarioSpec` can name them declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.cluster.topology import next_larger_config
from repro.core.profiler import PerformanceProfiler


@dataclass(frozen=True)
class SweetSpotPolicy:
    """The paper's simple rule: any improvement justifies growing."""

    def expansion_worthwhile(self, profiler: PerformanceProfiler,
                             job_id: int,
                             current: tuple[int, int]) -> bool:
        """May the job expand further, judged from its history?

        True when the job has never expanded, or its most recent
        expansion improved the iteration time.  A job shrunk back after
        a regretted expansion therefore stays put (the paper holds LU at
        12 processors for its remaining iterations in Fig 3a).
        """
        last = profiler.last_expansion(job_id)
        if last is None:
            return True
        then_time = profiler.mean_time(job_id, last.from_config)
        now_time = profiler.mean_time(job_id, last.to_config)
        if now_time is None or then_time is None:
            return True
        return self._improved(then_time, now_time)

    def expansion_regretted(self, profiler: PerformanceProfiler,
                            job_id: int,
                            current: tuple[int, int]) -> bool:
        """Did the most recent expansion fail to pay off (shrink back)?"""
        prev = profiler.previous_config(job_id)
        if prev is None or profiler.last_action(job_id) != "expand":
            return False
        now_time = profiler.latest_time(job_id, current)
        then_time = profiler.mean_time(job_id, prev)
        if now_time is None or then_time is None:
            return False
        return not self._improved(then_time, now_time)

    def _improved(self, before: float, after: float) -> bool:
        return after < before

    @property
    def name(self) -> str:
        return "simple"


@dataclass(frozen=True)
class ThresholdSweetSpot(SweetSpotPolicy):
    """Expansion must beat the previous configuration by a margin.

    ``threshold`` is the required relative improvement: 0.05 means a new
    configuration must be at least 5% faster to be kept.
    """

    threshold: float = 0.05

    def __post_init__(self):
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")

    def _improved(self, before: float, after: float) -> bool:
        return after < before * (1.0 - self.threshold)

    @property
    def name(self) -> str:
        return f"threshold({self.threshold:g})"


@dataclass(frozen=True)
class ExpansionPolicy:
    """Chooses the target configuration for an expansion.

    The default picks the next larger legal configuration that fits in
    the currently idle processors — which, for Table 2 style config
    lists, is exactly "add processors to the smallest row or column"
    growth for nearly-square grids.

    ``idle`` is the processor count genuinely available for growth:
    the scheduler passes free processors *net of the reservation
    ledger's head claim* (see
    :class:`repro.core.pool.ReservationLedger`).  ``reserved`` reports
    that excluded claim so a policy can reason about it; with the
    paper's rules it is always 0 when an expansion is considered (the
    queue must be empty), and the base policies only use ``idle``.
    """

    def choose(self, configs: Sequence[tuple[int, int]],
               current: tuple[int, int],
               idle: int, *, reserved: int = 0
               ) -> Optional[tuple[int, int]]:
        return next_larger_config(configs, current, idle)

    @property
    def name(self) -> str:
        return "next-larger"


@dataclass(frozen=True)
class GreedyExpansionPolicy(ExpansionPolicy):
    """Ablation variant: jump to the largest configuration that fits."""

    def choose(self, configs: Sequence[tuple[int, int]],
               current: tuple[int, int],
               idle: int, *, reserved: int = 0
               ) -> Optional[tuple[int, int]]:
        cur = current[0] * current[1]
        best: Optional[tuple[int, int]] = None
        for cfg in configs:
            size = cfg[0] * cfg[1]
            if size > cur and size - cur <= idle:
                if best is None or size > best[0] * best[1]:
                    best = cfg
        return best

    @property
    def name(self) -> str:
        return "greedy"


# -- registry ---------------------------------------------------------------
#: name -> class, for declarative construction from a ScenarioSpec.
SWEET_SPOT_POLICIES: dict[str, type[SweetSpotPolicy]] = {
    "simple": SweetSpotPolicy,
    "threshold": ThresholdSweetSpot,
}

EXPANSION_POLICIES: dict[str, type[ExpansionPolicy]] = {
    "next-larger": ExpansionPolicy,
    "greedy": GreedyExpansionPolicy,
}


def make_sweet_spot(name: str, **params) -> SweetSpotPolicy:
    """Build a sweet-spot policy from its registry name and parameters."""
    try:
        cls = SWEET_SPOT_POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown sweet-spot policy {name!r}; known: "
                         f"{sorted(SWEET_SPOT_POLICIES)}") from None
    return cls(**params)


def make_expansion(name: str, **params) -> ExpansionPolicy:
    """Build an expansion policy from its registry name and parameters."""
    try:
        cls = EXPANSION_POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown expansion policy {name!r}; known: "
                         f"{sorted(EXPANSION_POLICIES)}") from None
    return cls(**params)


def resolve_sweet_spot(policy: Union[SweetSpotPolicy, str, None]
                       ) -> Optional[SweetSpotPolicy]:
    """Accept a policy instance, a registry name, or None."""
    if policy is None or isinstance(policy, SweetSpotPolicy):
        return policy
    return make_sweet_spot(policy)


def resolve_expansion(policy: Union[ExpansionPolicy, str, None]
                      ) -> Optional[ExpansionPolicy]:
    """Accept a policy instance, a registry name, or None."""
    if policy is None or isinstance(policy, ExpansionPolicy):
        return policy
    return make_expansion(policy)
