"""Job queue with FCFS and simple backfill.

"Our current implementation supports two basic resource allocation
policies, First Come First Served (FCFS) and simple backfill."  (§3.1)
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Optional

from repro.core.job import Job


class JobQueue:
    """Arrival-ordered queue of jobs waiting for processors."""

    def __init__(self, *, backfill: bool = True):
        self.backfill = backfill
        self._queue: deque[Job] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self):
        return iter(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    def enqueue(self, job: Job) -> None:
        """Insert preserving (priority desc, arrival order).

        Equal-priority jobs stay FCFS; a higher-priority job jumps ahead
        of lower-priority ones but never ahead of its equals.
        """
        idx = len(self._queue)
        for i, queued in enumerate(self._queue):
            if queued.priority < job.priority:
                idx = i
                break
        self._queue.insert(idx, job)

    def head(self) -> Optional[Job]:
        return self._queue[0] if self._queue else None

    def next_startable(self, free: int) -> Optional[Job]:
        """The next job that can start on ``free`` processors.

        FCFS: only the head may start.  With backfill, a later job small
        enough for the free processors may jump ahead (simple backfill —
        no reservation bookkeeping, as in the paper's prototype).
        """
        if not self._queue:
            return None
        head = self._queue[0]
        if head.requested_size <= free:
            return head
        if self.backfill:
            # O(queue length) scan per wake, without copying the deque.
            # Fine into the thousands of jobs (guarded by
            # tests/test_scheduler_stress.py); reservation-style
            # bookkeeping would be the next step beyond that.
            for job in islice(self._queue, 1, None):
                if job.requested_size <= free:
                    return job
        return None

    def remove(self, job: Job) -> None:
        self._queue.remove(job)

    def needed_for_head(self, free: int) -> int:
        """Extra processors the head job needs beyond what is free."""
        head = self.head()
        if head is None:
            return 0
        return max(0, head.requested_size - free)
