"""Job queue with FCFS and simple backfill.

"Our current implementation supports two basic resource allocation
policies, First Come First Served (FCFS) and simple backfill."  (§3.1)

Two implementations, one decision contract:

:class:`JobQueue`
    Size-indexed: jobs bucket by requested processor count, each bucket
    a priority heap on the FCFS key ``(-priority, arrival seq)``.  A
    wake probe (``next_startable``) takes one pass over the *distinct
    sizes present* — bounded by the machine's processor count, not the
    queue population — so 10k+ queued jobs probe in microseconds where
    the scan took milliseconds.  O(log n) per enqueue, O(1) amortized
    lazy removal.

:class:`ScanJobQueue`
    The seed implementation — an arrival-ordered deque with an O(n)
    scan per probe.  Kept as the reference: both queues must return the
    *identical* job for every probe sequence (the FCFS/backfill rule is
    "first job in (priority desc, arrival) order that fits"), guarded
    by ``tests/test_scheduler_indexed.py``.

Backfill stays *simple* backfill (no starvation reservation for the
head — the paper's prototype): the reservation bookkeeping that the
scheduler wake path keeps lives in
:class:`repro.core.pool.ReservationLedger` and never changes decisions,
only makes them cheap to reach.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import deque
from heapq import heappop, heappush
from itertools import islice
from typing import Iterator, Optional

from repro.core.job import Job


class JobQueue:
    """Size-indexed queue of jobs waiting for processors."""

    def __init__(self, *, backfill: bool = True):
        self.backfill = backfill
        self._seq = 0
        #: requested size -> heap of (-priority, seq, job); entries whose
        #: key no longer matches ``_entries`` are stale (lazy deletion).
        self._classes: dict[int, list[tuple[int, int, Job]]] = {}
        #: requested size -> live-entry count for that class.
        self._live: dict[int, int] = {}
        #: Sorted distinct sizes with at least one live job.
        self._sizes: list[int] = []
        #: job_id -> (-priority, seq, job) for every queued job.
        self._entries: dict[int, tuple[int, int, Job]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Job]:
        """Jobs in queue order: priority descending, then arrival."""
        for _negpri, _seq, job in sorted(self._entries.values()):
            yield job

    @property
    def empty(self) -> bool:
        return not self._entries

    def enqueue(self, job: Job) -> None:
        """Insert preserving (priority desc, arrival order).

        Equal-priority jobs stay FCFS; a higher-priority job jumps ahead
        of lower-priority ones but never ahead of its equals.  The
        position is fixed at enqueue time (as in the seed queue): a
        priority changed while queued does not re-sort the job.
        """
        if job.job_id in self._entries:
            raise ValueError(f"job {job.name} is already queued")
        self._seq += 1
        entry = (-job.priority, self._seq, job)
        size = job.requested_size
        self._entries[job.job_id] = entry
        heappush(self._classes.setdefault(size, []), entry)
        live = self._live.get(size, 0)
        self._live[size] = live + 1
        if live == 0:
            insort(self._sizes, size)

    def head(self) -> Optional[Job]:
        """The job FCFS would start next (min key over every class)."""
        best = None
        for size in self._sizes:
            entry = self._class_head(size)
            if best is None or entry < best:
                best = entry
        return best[2] if best is not None else None

    def next_startable(self, free: int) -> Optional[Job]:
        """The next job that can start on ``free`` processors.

        FCFS: only the head may start.  With backfill, the earliest
        queued job small enough for the free processors may jump ahead
        (simple backfill — no reservation bookkeeping, as in the
        paper's prototype).  One pass over the distinct sizes computes
        both the head and the backfill winner.
        """
        if not self._entries:
            return None
        sizes = self._sizes
        fitting = bisect_right(sizes, free)
        best = None       # min key over every class: the FCFS head
        startable = None  # min key over classes that fit in ``free``
        for i, size in enumerate(sizes):
            entry = self._class_head(size)
            if best is None or entry < best:
                best = entry
            if i < fitting and (startable is None or entry < startable):
                startable = entry
        assert best is not None
        if best[2].requested_size <= free:
            return best[2]
        if self.backfill and startable is not None:
            return startable[2]
        return None

    def remove(self, job: Job) -> None:
        entry = self._entries.pop(job.job_id, None)
        if entry is None:
            raise ValueError(f"job {job.name} is not queued")
        size = job.requested_size
        remaining = self._live[size] - 1
        if remaining:
            self._live[size] = remaining
            # The class heap keeps a stale entry; _class_head skips it.
        else:
            del self._live[size]
            del self._classes[size]
            self._sizes.remove(size)

    def needed_for_head(self, free: int) -> int:
        """Extra processors the head job needs beyond what is free."""
        head = self.head()
        if head is None:
            return 0
        return max(0, head.requested_size - free)

    def min_requested_size(self) -> Optional[int]:
        """Smallest processor request queued, or None when empty."""
        return self._sizes[0] if self._sizes else None

    def can_start(self, free: int) -> bool:
        """Would ``next_startable(free)`` find a job?  O(1)-ish probe
        used by the scheduler's wake filter: with backfill any job small
        enough qualifies; strict FCFS needs the head itself to fit."""
        if not self._entries:
            return False
        if self.backfill:
            return self._sizes[0] <= free
        head = self.head()
        return head is not None and head.requested_size <= free

    def _class_head(self, size: int) -> tuple[int, int, Job]:
        """Live minimum of one class, discarding stale heap entries."""
        heap = self._classes[size]
        entries = self._entries
        while True:
            entry = heap[0]
            if entries.get(entry[2].job_id) is entry:
                return entry
            heappop(heap)


class ScanJobQueue:
    """Arrival-ordered deque with O(n) probes (the seed implementation).

    Reference for :class:`JobQueue` — same API, same decisions, linear
    cost.  The engine benchmark's "heap path" leg schedules through
    this queue.
    """

    def __init__(self, *, backfill: bool = True):
        self.backfill = backfill
        self._queue: deque[Job] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    def enqueue(self, job: Job) -> None:
        idx = len(self._queue)
        for i, queued in enumerate(self._queue):
            if queued.priority < job.priority:
                idx = i
                break
        self._queue.insert(idx, job)

    def head(self) -> Optional[Job]:
        return self._queue[0] if self._queue else None

    def next_startable(self, free: int) -> Optional[Job]:
        if not self._queue:
            return None
        head = self._queue[0]
        if head.requested_size <= free:
            return head
        if self.backfill:
            # O(queue length) scan per wake, without copying the deque.
            for job in islice(self._queue, 1, None):
                if job.requested_size <= free:
                    return job
        return None

    def remove(self, job: Job) -> None:
        self._queue.remove(job)

    def needed_for_head(self, free: int) -> int:
        head = self.head()
        if head is None:
            return 0
        return max(0, head.requested_size - free)

    def min_requested_size(self) -> Optional[int]:
        if not self._queue:
            return None
        return min(job.requested_size for job in self._queue)

    def can_start(self, free: int) -> bool:
        return self.next_startable(free) is not None


def make_job_queue(scheduler: str, *, backfill: bool = True):
    """Factory: ``"indexed"`` (default) or ``"scan"`` (seed reference)."""
    if scheduler == "indexed":
        return JobQueue(backfill=backfill)
    if scheduler == "scan":
        return ScanJobQueue(backfill=backfill)
    raise ValueError(f"unknown scheduler queue {scheduler!r}")
