"""The ReSHAPE application scheduling and monitoring module.

Mirrors the five components of the paper's §3.1 — System Monitor,
Application Scheduler, Job Startup, Remap Scheduler, Performance
Profiler — each running as its own simulation process (the paper runs
each in its own thread), wired together by
:class:`~repro.core.framework.ReshapeFramework`.

The same framework runs both scheduling modes compared in §4:
*dynamic* (resizing enabled) and *static* (every resize decision is
"no change"), so utilization/turnaround comparisons use identical
machinery.
"""

from repro.core.events import ConfigChange, JobTimeline, TimelineRecorder
from repro.core.framework import ReshapeFramework
from repro.core.job import Job, JobState
from repro.core.policies import (
    EXPANSION_POLICIES,
    SWEET_SPOT_POLICIES,
    ExpansionPolicy,
    GreedyExpansionPolicy,
    SweetSpotPolicy,
    ThresholdSweetSpot,
    make_expansion,
    make_sweet_spot,
)
from repro.core.pool import ProcessorPool, ReservationLedger
from repro.core.profiler import PerformanceProfiler
from repro.core.queue import JobQueue, ScanJobQueue, make_job_queue
from repro.core.remap import RemapDecision, RemapScheduler

__all__ = [
    "ConfigChange",
    "EXPANSION_POLICIES",
    "ExpansionPolicy",
    "GreedyExpansionPolicy",
    "Job",
    "JobQueue",
    "JobState",
    "JobTimeline",
    "PerformanceProfiler",
    "ProcessorPool",
    "RemapDecision",
    "RemapScheduler",
    "ReservationLedger",
    "ReshapeFramework",
    "ScanJobQueue",
    "SWEET_SPOT_POLICIES",
    "SweetSpotPolicy",
    "ThresholdSweetSpot",
    "TimelineRecorder",
    "make_expansion",
    "make_job_queue",
    "make_sweet_spot",
]
