"""Timeline recording: the raw material of Figures 4 and 5.

The recorder stores configuration changes per job; from those it derives
the processor-allocation history of each job (Fig 4a/5a), the total
busy-processor curve (Fig 4b/5b) and the utilization percentage the
paper quotes (assigned cpu-seconds over available cpu-seconds).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class ConfigChange:
    """One job's processor count changing at an instant."""

    time: float
    job_id: int
    job_name: str
    nprocs: int          # processor count after the change (0 = job done)
    config: Optional[tuple[int, int]]
    #: "start" | "expand" | "shrink" | "finish" | "error".  Both job
    #: endings drop nprocs to 0, so utilization math treats them alike;
    #: the reason keeps failures distinguishable from successes.
    reason: str


@dataclass
class JobTimeline:
    """Step function of one job's processor allocation over time."""

    job_id: int
    job_name: str
    points: list[tuple[float, int]] = field(default_factory=list)

    def add(self, time: float, nprocs: int) -> None:
        if self.points and self.points[-1][0] == time:
            self.points[-1] = (time, nprocs)
        else:
            self.points.append((time, nprocs))

    def nprocs_at(self, time: float) -> int:
        """Allocation at ``time`` (0 before start / after finish)."""
        if not self.points or time < self.points[0][0]:
            return 0
        idx = bisect.bisect_right([t for t, _ in self.points], time) - 1
        return self.points[idx][1]

    @property
    def start(self) -> float:
        return self.points[0][0] if self.points else 0.0

    @property
    def end(self) -> float:
        return self.points[-1][0] if self.points else 0.0

    def cpu_seconds(self) -> float:
        """Integral of the allocation step function."""
        total = 0.0
        for (t0, n0), (t1, _n1) in zip(self.points, self.points[1:]):
            total += n0 * (t1 - t0)
        return total


class TimelineRecorder:
    """Collects :class:`ConfigChange` events for a whole experiment."""

    def __init__(self):
        self.changes: list[ConfigChange] = []

    def record(self, time: float, job_id: int, job_name: str, nprocs: int,
               config: Optional[tuple[int, int]], reason: str) -> None:
        self.changes.append(ConfigChange(time=time, job_id=job_id,
                                         job_name=job_name, nprocs=nprocs,
                                         config=config, reason=reason))

    def endings(self, reason: str) -> list[ConfigChange]:
        """Job-ending events of one kind: ``"finish"`` or ``"error"``."""
        return [c for c in self.changes if c.reason == reason]

    # -- derived series ------------------------------------------------------
    def job_timelines(self) -> dict[int, JobTimeline]:
        out: dict[int, JobTimeline] = {}
        for ch in sorted(self.changes, key=lambda c: c.time):
            tl = out.setdefault(ch.job_id,
                                JobTimeline(ch.job_id, ch.job_name))
            tl.add(ch.time, ch.nprocs)
        return out

    def busy_processors(self) -> list[tuple[float, int]]:
        """Total allocated processors as a step function over time."""
        deltas: dict[float, int] = {}
        for tl in self.job_timelines().values():
            prev = 0
            for t, n in tl.points:
                deltas[t] = deltas.get(t, 0) + (n - prev)
                prev = n
        series = []
        level = 0
        for t in sorted(deltas):
            level += deltas[t]
            series.append((t, level))
        return series

    def makespan(self) -> float:
        if not self.changes:
            return 0.0
        times = [c.time for c in self.changes]
        return max(times) - min(times)

    def utilization(self, total_processors: int,
                    horizon: Optional[float] = None) -> float:
        """Assigned cpu-seconds over available cpu-seconds (paper's metric)."""
        if total_processors <= 0:
            return 0.0
        span = horizon if horizon is not None else self.makespan()
        if span <= 0:
            return 0.0
        busy = sum(tl.cpu_seconds() for tl in self.job_timelines().values())
        return busy / (total_processors * span)
