"""Point-to-point transfer model over the cluster interconnect.

A transfer between two nodes holds the sender's transmit engine and the
receiver's receive engine for the wire (serialization) time, then adds
propagation latency.  Same-node transfers go through shared memory at
memory bandwidth without touching the NIC.

The model is deliberately simple — latency + size/bandwidth + per-NIC
serialization — because that is exactly the level at which the paper's
redistribution algorithm argues: its circulant schedules are *node
contention free*, i.e. no two simultaneous messages share a sender or a
receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.cluster.node import Node
from repro.simulate import Environment


@dataclass
class TransferRecord:
    """One completed transfer, kept when tracing is enabled."""

    src: int
    dst: int
    nbytes: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class NetworkStats:
    """Aggregate accounting for a :class:`Network`."""

    messages: int = 0
    bytes: int = 0
    busy_time: float = 0.0
    records: list[TransferRecord] = field(default_factory=list)


class Network:
    """The cluster interconnect: a full-duplex switched Ethernet model."""

    def __init__(self, env: Environment, nodes: list[Node], *,
                 latency: float = 55e-6,
                 memory_latency: float = 1.2e-6,
                 per_byte_overhead: float = 0.0,
                 contention_penalty: float = 0.0,
                 software_overhead: float = 0.0,
                 backplane_bandwidth: float = float("inf"),
                 trace: bool = False):
        self.env = env
        self.nodes = nodes
        #: One-way message latency over the wire (seconds).  55 us is a
        #: typical MPICH2-over-GigE small-message half round trip.
        self.latency = latency
        self.memory_latency = memory_latency
        self.per_byte_overhead = per_byte_overhead
        #: Endpoint-congestion model: a transfer that finds ``k`` other
        #: transfers queued or active on the NICs it needs pays
        #: ``(1 + penalty * k)`` times the wire time.  This stands in for
        #: the throughput loss TCP-over-GigE suffers under fan-in (frame
        #: interleaving, buffer pressure, retransmits) — the effect that
        #: makes contention-free redistribution schedules worth computing.
        self.contention_penalty = contention_penalty
        #: Per-message CPU cost of the messaging stack (sender + receiver
        #: software path).  Charged once per transfer in addition to wire
        #: latency; MPICH2-over-TCP era values are tens of microseconds.
        self.software_overhead = software_overhead
        #: Aggregate switch-fabric bandwidth shared by all inter-node
        #: flows.  When the sum of active flows' line rates exceeds it,
        #: every active flow slows proportionally — the oversubscription
        #: behaviour of commodity GigE switches, and the reason adding
        #: processors eventually stops helping communication-heavy
        #: kernels on the paper's testbed.
        self.backplane_bandwidth = backplane_bandwidth
        self._active_flows = 0
        self.trace = trace
        self.stats = NetworkStats()
        #: Lazily created arithmetic replay shared by the phantom fast
        #: paths (see repro.mpi.fastp2p.net_replay).  None until the
        #: first fast-path operation touches this network, so worlds
        #: that never use the fast path run the pristine event path.
        self._replay = None

    # ------------------------------------------------------------------
    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Uncontended time for a ``nbytes`` message from src to dst node."""
        if src == dst:
            node = self.nodes[src]
            return self.memory_latency + nbytes / node.memory_bandwidth
        bw = min(self.nodes[src].nic.bandwidth, self.nodes[dst].nic.bandwidth)
        return (self.latency + self.software_overhead +
                nbytes * (1.0 / bw + self.per_byte_overhead))

    def transfer(self, src: int, dst: int, nbytes: int) -> Generator:
        """Move ``nbytes`` from node ``src`` to node ``dst``.

        Yields until the message has fully arrived at the receiver.
        Returns the :class:`TransferRecord` for the transfer.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = self.env.now
        if src == dst:
            node = self.nodes[src]
            yield self.env.sleep(self.memory_latency +
                                 nbytes / node.memory_bandwidth)
        else:
            src_nic = self.nodes[src].nic
            dst_nic = self.nodes[dst].nic
            bw = min(src_nic.bandwidth, dst_nic.bandwidth)
            wire_time = nbytes * (1.0 / bw + self.per_byte_overhead)
            # Bridge to the phantom fast path's replay (if one is live on
            # this network and the backplane can oversubscribe): announce
            # this transfer so replayed flows never finalize past its
            # wire start, and count replayed flows in the backplane
            # sample below.  With no replay (or backplane headroom) the
            # original accounting runs untouched.
            replay = self._replay
            if replay is not None and not replay.exact:
                replay = None
            token = replay.real_announce() if replay is not None else 0
            try:
                # Acquire both engines; sender first (fixed order, and
                # the two resources are distinct objects so there is no
                # deadlock cycle: every transfer locks tx(src) then
                # rx(dst) and a transfer holding rx never waits on a tx).
                if self.software_overhead > 0:
                    yield self.env.sleep(self.software_overhead)
                t_arrive = self.env.now
                tx_req = src_nic.tx.request()
                yield tx_req
                rx_req = dst_nic.rx.request()
                yield rx_req
            except BaseException:
                if replay is not None:
                    replay.real_abandoned(token)
                raise
            # Endpoint congestion: a transfer that had to queue behind
            # others pays degraded throughput once it gets the wire.
            if self.env.now > t_arrive:
                wire_time *= 1.0 + self.contention_penalty
            # Switch-fabric oversubscription: active flows sharing the
            # backplane degrade proportionally (sampled at start; exact
            # processor-sharing would need continuous re-timing).
            self._active_flows += 1
            fast_flows = replay.real_started(token) if replay is not None \
                else 0
            demand = (self._active_flows + fast_flows) * bw
            if demand > self.backplane_bandwidth:
                wire_time *= demand / self.backplane_bandwidth
            if replay is not None:
                replay.real_interval(self.env.now + wire_time)
            try:
                yield self.env.sleep(wire_time)
            finally:
                self._active_flows -= 1
                src_nic.tx.release(tx_req)
                dst_nic.rx.release(rx_req)
            # Propagation latency after the wire is released: the NIC is
            # free to start the next frame while the last one is in flight.
            yield self.env.sleep(self.latency)
            src_nic.bytes_sent += nbytes
            dst_nic.bytes_received += nbytes
        end = self.env.now
        self.stats.messages += 1
        self.stats.bytes += nbytes
        self.stats.busy_time += end - start
        record = TransferRecord(src=src, dst=dst, nbytes=nbytes,
                                start=start, end=end)
        if self.trace:
            self.stats.records.append(record)
        return record
