"""Processor-grid topology arithmetic.

ReSHAPE applications declare a topology preference: ``grid`` applications
(LU, MM) run on nearly-square ``pr x pc`` process grids; ``flat``
applications (Jacobi, FFT, master-worker) run on 1-D sets.  The paper's
expansion rule for grid applications is: *"additional processors are
added to the smallest row or column of the existing topology"* — i.e.
grow the smaller dimension first, keeping the grid as square as possible.

This module also enforces the paper's evenness constraint: *"the number
of processors (in each dimension in the case of rectangular topologies)
evenly divides the problem size."*
"""

from __future__ import annotations

import math
from typing import Optional, Sequence


def factor_nearly_square(p: int) -> tuple[int, int]:
    """Factor ``p`` into the most nearly square ``(pr, pc)`` with pr <= pc.

    >>> factor_nearly_square(12)
    (3, 4)
    >>> factor_nearly_square(25)
    (5, 5)
    """
    if p < 1:
        raise ValueError("processor count must be positive")
    pr = int(math.isqrt(p))
    while p % pr != 0:
        pr -= 1
    return pr, p // pr


def grow_nearly_square(pr: int, pc: int) -> tuple[int, int]:
    """Next grid after growing the smallest dimension by one.

    This is the paper's expansion rule for nearly-square topologies:
    2x2 -> 2x3? No: the *smallest* dimension grows, so 2x2 -> 3x2,
    normalized to (2, 3) ... the rule always increments min(pr, pc).

    >>> grow_nearly_square(2, 2)
    (2, 3)
    >>> grow_nearly_square(2, 3)
    (3, 3)
    """
    if pr < 1 or pc < 1:
        raise ValueError("grid dimensions must be positive")
    if pr <= pc:
        pr += 1
    else:
        pc += 1
    return (pr, pc) if pr <= pc else (pc, pr)


def divides_evenly(n: int, config: tuple[int, ...]) -> bool:
    """True if every grid dimension divides the problem size ``n``."""
    return all(n % d == 0 for d in config if d > 0)


def parse_config(text: str) -> tuple[int, int]:
    """Parse ``'4x5'`` or ``'20'`` into a grid tuple.

    A bare number means a 1-D (flat) set, returned as ``(1, p)``.
    """
    text = text.strip().lower()
    if "x" in text:
        left, right = text.split("x", 1)
        pr, pc = int(left), int(right)
    else:
        pr, pc = 1, int(text)
    if pr < 1 or pc < 1:
        raise ValueError(f"bad processor configuration {text!r}")
    return pr, pc


def config_size(config: tuple[int, int]) -> int:
    """Total processors in a grid config."""
    return config[0] * config[1]


def legal_configs_for(problem_size: int, max_procs: int, *,
                      topology: str = "grid",
                      min_procs: int = 1) -> list[tuple[int, int]]:
    """Enumerate legal processor configurations for a problem.

    ``grid`` topology: nearly-square-ish ``pr x pc`` grids (pr <= pc <=
    2*pr, mirroring Table 2's shapes) whose dimensions both divide
    ``problem_size``.  ``flat`` topology: 1-D sets whose size divides
    ``problem_size``.

    Configurations are sorted by total processor count and deduplicated.
    """
    if topology not in ("grid", "flat"):
        raise ValueError(f"unknown topology {topology!r}")
    configs: set[tuple[int, int]] = set()
    if topology == "flat":
        for p in range(min_procs, max_procs + 1):
            if problem_size % p == 0:
                configs.add((1, p))
    else:
        for pr in range(1, int(math.isqrt(max_procs)) + 1):
            if problem_size % pr != 0:
                continue
            for pc in range(pr, max_procs // pr + 1):
                if pc > 2 * pr:
                    break
                if problem_size % pc == 0 and pr * pc >= min_procs:
                    configs.add((pr, pc))
    return sorted(configs, key=lambda c: (config_size(c), c))


def next_larger_config(configs: Sequence[tuple[int, int]],
                       current: tuple[int, int],
                       available: int) -> Optional[tuple[int, int]]:
    """Smallest legal config strictly bigger than ``current`` that fits.

    ``available`` is the number of *additional* processors that can be
    granted on top of the current allocation.
    """
    cur = config_size(current)
    for cfg in sorted(configs, key=config_size):
        size = config_size(cfg)
        if size > cur and size - cur <= available:
            return cfg
    return None


def next_smaller_config(configs: Sequence[tuple[int, int]],
                        current: tuple[int, int]) -> Optional[tuple[int, int]]:
    """Largest legal config strictly smaller than ``current``."""
    cur = config_size(current)
    best: Optional[tuple[int, int]] = None
    for cfg in configs:
        size = config_size(cfg)
        if size < cur and (best is None or size > config_size(best)):
            best = cfg
    return best
