"""Simulated hardware substrate.

This package stands in for the paper's physical testbed (System X: 50
nodes of dual 2.3 GHz PowerPC 970, 4 GB RAM, Gigabit Ethernet, MPICH2).
It provides:

* :class:`Node` — a compute node with a flop rate and a NIC.
* :class:`Network` — latency/bandwidth point-to-point transfers with
  per-NIC serialization, so link contention (the thing contention-free
  redistribution schedules exist to avoid) emerges naturally.
* :class:`Disk` — a shared disk for the file-based checkpointing baseline.
* :class:`Machine` — nodes + network + disk; :func:`system_x` builds the
  paper-calibrated preset.
* :mod:`repro.cluster.topology` — processor-grid arithmetic (nearly-square
  factorizations, the paper's grow-smallest-dimension rule, legal-config
  enumeration).
"""

from repro.cluster.machine import Machine, MachineSpec, system_x
from repro.cluster.network import Network, TransferRecord
from repro.cluster.node import Disk, Nic, Node
from repro.cluster.topology import (
    divides_evenly,
    factor_nearly_square,
    grow_nearly_square,
    legal_configs_for,
    parse_config,
)

__all__ = [
    "Disk",
    "Machine",
    "MachineSpec",
    "Network",
    "Nic",
    "Node",
    "TransferRecord",
    "divides_evenly",
    "factor_nearly_square",
    "grow_nearly_square",
    "legal_configs_for",
    "parse_config",
    "system_x",
]
