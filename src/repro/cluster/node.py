"""Compute node, NIC and disk models."""

from __future__ import annotations

from typing import Generator

from repro.simulate import Environment, Resource


class Nic:
    """A network interface with independent transmit and receive engines.

    Each engine is a capacity-1 :class:`Resource`: a NIC can drive one
    outgoing and one incoming wire transfer at a time, which is how a
    full-duplex Gigabit Ethernet port behaves.  Concurrent transfers
    touching the same NIC therefore serialize — the physical effect that
    makes naive redistribution schedules slow and contention-free
    schedules worth computing.
    """

    def __init__(self, env: Environment, bandwidth: float):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        #: Sustained point-to-point bandwidth in bytes/second.
        self.bandwidth = bandwidth
        self.tx = Resource(env, capacity=1)
        self.rx = Resource(env, capacity=1)
        #: Engine availability as seen by the phantom fast path
        #: (``[tx_free, rx_free]`` simulated times).  Fast-path traffic
        #: (point-to-point and collectives) does not hold the
        #: :class:`Resource` engines; the shared network replay tracks
        #: occupancy here so consecutive fast transfers see each
        #: other's serialization (see ``repro.mpi.fastp2p``).
        self.fp_free = [0.0, 0.0]
        #: Cumulative bytes moved, for utilization accounting.
        self.bytes_sent = 0
        self.bytes_received = 0


class Node:
    """A compute node: processors sharing memory and one NIC."""

    def __init__(self, env: Environment, index: int, *,
                 cpus: int = 2,
                 flop_rate: float = 4.4e9,
                 nic_bandwidth: float = 112e6,
                 memory_bandwidth: float = 3.2e9,
                 memory_bytes: int = 4 * 2**30):
        self.env = env
        self.index = index
        self.cpus = cpus
        #: Effective double-precision flop rate per processor (flops/s).
        self.flop_rate = flop_rate
        self.memory_bandwidth = memory_bandwidth
        self.memory_bytes = memory_bytes
        self.nic = Nic(env, nic_bandwidth)

    def compute(self, flops: float) -> Generator:
        """Occupy one processor of this node for ``flops`` of work."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        yield self.env.sleep(flops / self.flop_rate)

    def compute_time(self, flops: float) -> float:
        """Time one processor needs for ``flops`` of local work."""
        return flops / self.flop_rate

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.index}>"


class Disk:
    """A shared disk with serialized access, for checkpoint/restart.

    The paper's comparator funnels all application data through a single
    node to disk; the disk rate here is calibrated to mid-2000s local
    storage so checkpointing lands in the measured 4.5-14.5x-slower band.
    """

    def __init__(self, env: Environment, *,
                 write_bandwidth: float = 55e6,
                 read_bandwidth: float = 60e6,
                 seek_time: float = 8e-3):
        self.env = env
        self.write_bandwidth = write_bandwidth
        self.read_bandwidth = read_bandwidth
        self.seek_time = seek_time
        self._lock = Resource(env, capacity=1)
        self.bytes_written = 0
        self.bytes_read = 0

    def write(self, nbytes: int) -> Generator:
        """Write ``nbytes`` to disk (serialized with other disk users)."""
        req = self._lock.request()
        yield req
        try:
            yield self.env.sleep(self.seek_time +
                                 nbytes / self.write_bandwidth)
            self.bytes_written += nbytes
        finally:
            self._lock.release(req)

    def read(self, nbytes: int) -> Generator:
        """Read ``nbytes`` from disk (serialized with other disk users)."""
        req = self._lock.request()
        yield req
        try:
            yield self.env.sleep(self.seek_time +
                                 nbytes / self.read_bandwidth)
            self.bytes_read += nbytes
        finally:
            self._lock.release(req)
