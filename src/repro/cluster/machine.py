"""A machine = nodes + interconnect + disk, with the System X preset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.network import Network
from repro.cluster.node import Disk, Node
from repro.simulate import Environment


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a homogeneous cluster.

    Defaults are calibrated to the paper's System X partition: 2.3 GHz
    PowerPC 970 processors (peak 9.2 GF/s, effective dense-kernel rate
    about 4.4 GF/s — backed out of the paper's own measurement of LU on a
    12000x12000 matrix taking 129.63 s on 2 processors) and MPICH2 over
    Gigabit Ethernet.  The network numbers are *effective* MPICH2-over-
    TCP figures, not line rate: ~60 MB/s sustained per flow, ~150 us
    end-to-end latency, ~120 us per-message software path, and a
    1.5 GB/s shared switch fabric.  With these, the simulated LU(12000)
    scaling curve reproduces the paper's shape: strong early speedup
    (102 s at 4 processors vs the paper's 112.5 s; 81 s at 6 vs 82.3 s),
    taper, and a point past which adding processors makes iterations
    slower (paper: at 16 processors; simulated: at 25).
    """

    num_nodes: int = 50
    cpus_per_node: int = 1
    flop_rate: float = 4.4e9
    nic_bandwidth: float = 60e6
    memory_bandwidth: float = 3.2e9
    memory_bytes: int = 4 * 2**30
    latency: float = 150e-6
    memory_latency: float = 1.2e-6
    contention_penalty: float = 0.2
    software_overhead: float = 120e-6
    backplane_bandwidth: float = 1.5e9
    disk_write_bandwidth: float = 55e6
    disk_read_bandwidth: float = 60e6

    @property
    def total_processors(self) -> int:
        return self.num_nodes * self.cpus_per_node


class Machine:
    """A simulated homogeneous cluster.

    Processors are numbered globally ``0 .. total_processors-1``;
    processor ``p`` lives on node ``p // cpus_per_node``.  The scheduler
    allocates processors; the network moves bytes between the nodes that
    host them.
    """

    def __init__(self, env: Environment, spec: Optional[MachineSpec] = None,
                 *, trace_network: bool = False):
        self.env = env
        self.spec = spec or MachineSpec()
        self.nodes = [
            Node(env, i,
                 cpus=self.spec.cpus_per_node,
                 flop_rate=self.spec.flop_rate,
                 nic_bandwidth=self.spec.nic_bandwidth,
                 memory_bandwidth=self.spec.memory_bandwidth,
                 memory_bytes=self.spec.memory_bytes)
            for i in range(self.spec.num_nodes)
        ]
        self.network = Network(env, self.nodes,
                               latency=self.spec.latency,
                               memory_latency=self.spec.memory_latency,
                               contention_penalty=self.spec.contention_penalty,
                               software_overhead=self.spec.software_overhead,
                               backplane_bandwidth=self.spec.backplane_bandwidth,
                               trace=trace_network)
        self.disk = Disk(env,
                         write_bandwidth=self.spec.disk_write_bandwidth,
                         read_bandwidth=self.spec.disk_read_bandwidth)

    @property
    def total_processors(self) -> int:
        return self.spec.total_processors

    def node_of(self, processor: int) -> int:
        """Node index hosting global processor index ``processor``."""
        if not 0 <= processor < self.total_processors:
            raise ValueError(f"processor {processor} out of range "
                             f"0..{self.total_processors - 1}")
        return processor // self.spec.cpus_per_node

    def flop_time(self, flops: float) -> float:
        """Time for ``flops`` of dense-kernel work on one processor."""
        return flops / self.spec.flop_rate


def system_x(env: Environment, *, num_nodes: int = 50,
             trace_network: bool = False) -> Machine:
    """Build the paper's experimental platform (a System X partition)."""
    return Machine(env, MachineSpec(num_nodes=num_nodes),
                   trace_network=trace_network)
