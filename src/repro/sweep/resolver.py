"""The pure resolver: ``run_scenario(spec) -> ScenarioResult``.

One function turns a declarative :class:`~repro.sweep.spec.ScenarioSpec`
into plain-data results, building every live object (environment,
machine, framework, applications, policies) from the spec alone.  The
CLI, the benchmarks, ``ReshapeFramework.from_scenario`` and the sweep
workers all construct through here, so an experiment is reproducible
from its printed spec regardless of which surface launched it.

Determinism contract: ``run_scenario`` is a pure function of its spec —
same spec, same process or a fresh worker process, bit-identical
:class:`ScenarioResult` (``wall_time`` excluded).  The one piece of
process-global state that could leak between experiments, the job-id
counter, is reset at scenario entry (:func:`repro.core.job.reset_job_ids`).
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.core.job import reset_job_ids
from repro.core.policies import make_expansion, make_sweet_spot
from repro.sweep.spec import ScenarioResult, ScenarioSpec
from repro.workloads.paper import (
    WORKLOAD1,
    WORKLOAD1_PROCESSORS,
    WORKLOAD2,
    WORKLOAD2_PROCESSORS,
    JobSpec,
    make_application,
)

#: Default processor budget of the named paper workloads.
_WORKLOAD_PROCESSORS = {"w1": WORKLOAD1_PROCESSORS,
                        "w2": WORKLOAD2_PROCESSORS}


def _spec_of(spec: Union[ScenarioSpec, dict]) -> ScenarioSpec:
    if isinstance(spec, ScenarioSpec):
        return spec
    return ScenarioSpec.from_dict(spec)


def build_environment(spec: ScenarioSpec):
    from repro.simulate import Environment
    return Environment(kernel=spec.kernel)


def scenario_jobs(spec: ScenarioSpec) -> list[JobSpec]:
    """The workload of a kind="schedule" scenario, as JobSpec rows."""
    if spec.workload == "w1":
        return list(WORKLOAD1)
    if spec.workload == "w2":
        return list(WORKLOAD2)
    if spec.workload == "jobs":
        return list(spec.jobs)
    if spec.workload == "single":
        return [JobSpec(kind=spec.app, problem_size=spec.size,
                        initial_config=spec.start, arrival=0.0)]
    if spec.workload == "synthetic":
        from repro.workloads.generator import WorkloadGenerator
        gen = WorkloadGenerator(seed=spec.seed,
                                mean_interarrival=spec.mean_interarrival,
                                max_initial=spec.max_initial,
                                arrival_model=spec.arrival_model)
        return gen.generate(spec.num_jobs)
    raise ValueError(f"unknown workload {spec.workload!r}")


def scenario_processors(spec: ScenarioSpec) -> Optional[int]:
    """Processor budget: explicit, workload default, or whole machine."""
    if spec.num_processors is not None:
        return spec.num_processors
    return _WORKLOAD_PROCESSORS.get(spec.workload)


def build_framework(spec: Union[ScenarioSpec, dict], *, env=None):
    """A ReshapeFramework configured exactly as the spec describes."""
    from repro.core.framework import ReshapeFramework
    spec = _spec_of(spec)
    return ReshapeFramework(
        env=env or build_environment(spec),
        machine_spec=spec.machine,
        num_processors=scenario_processors(spec),
        dynamic=spec.dynamic,
        backfill=spec.backfill,
        scheduler=spec.scheduler,
        sweet_spot=make_sweet_spot(spec.sweet_spot,
                                   **dict(spec.sweet_spot_params)),
        expansion=make_expansion(spec.expansion,
                                 **dict(spec.expansion_params)),
        redistribution_method=spec.redistribution_method,
    )


# ---------------------------------------------------------------------------
def run_scenario(spec: Union[ScenarioSpec, dict]) -> ScenarioResult:
    """Run one scenario to completion; returns plain-data results."""
    spec = _spec_of(spec)
    t0 = time.perf_counter()
    reset_job_ids()
    if spec.kind == "schedule":
        result = _run_schedule(spec)
    elif spec.kind == "static":
        result = _run_static(spec)
    elif spec.kind == "redist":
        result = _run_redist(spec)
    else:  # pragma: no cover - __post_init__ rejects unknown kinds
        raise ValueError(f"unknown scenario kind {spec.kind!r}")
    object.__setattr__(result, "wall_time", time.perf_counter() - t0)
    return result


def _run_schedule(spec: ScenarioSpec) -> ScenarioResult:
    env = build_environment(spec)
    fw = build_framework(spec, env=env)
    for js in scenario_jobs(spec):
        app = js.build(iterations=spec.iterations)
        fw.submit(app, js.initial_config, arrival=js.arrival, name=js.name)
    fw.run()

    timeline = tuple((c.time, c.job_id, c.job_name, c.nprocs,
                      c.config, c.reason) for c in fw.timeline.changes)
    job_stats = tuple((j.name, j.requested_size, j.arrival_time,
                       j.turnaround, j.redistribution_time)
                      for j in fw.jobs)
    iteration_logs = tuple(
        (j.name, tuple((it, tuple(cfg), t, rd)
                       for it, cfg, t, rd in j.iteration_log))
        for j in fw.jobs)
    turnarounds = [ta for _n, _s, _a, ta, _r in job_stats if ta is not None]
    metrics = (
        ("jobs", float(len(fw.jobs))),
        ("completed", float(len(turnarounds))),
        ("errors", float(len(fw.timeline.endings("error")))),
        ("mean_turnaround",
         sum(turnarounds) / len(turnarounds) if turnarounds else 0.0),
        ("total_redistribution",
         sum(rd for _n, _s, _a, _t, rd in job_stats)),
    )
    return ScenarioResult(spec=spec, timeline=timeline,
                          job_stats=job_stats,
                          iteration_logs=iteration_logs,
                          utilization=fw.utilization(),
                          makespan=fw.timeline.makespan(),
                          simulated_time=env.now, metrics=metrics)


def _run_static(spec: ScenarioSpec) -> ScenarioResult:
    from repro.api.standalone import run_static
    env = build_environment(spec)
    app = make_application(spec.app, spec.size, iterations=spec.iterations)
    res = run_static(app, spec.start, env=env, machine_spec=spec.machine)
    rows = tuple((i, spec.start, t, 0.0)
                 for i, t in enumerate(res.iteration_times, 1))
    metrics = (
        ("mean_iteration_time", res.mean_iteration_time),
        ("total_time", res.total_time),
    )
    return ScenarioResult(spec=spec,
                          iteration_logs=((app.name, rows),),
                          makespan=res.total_time,
                          simulated_time=env.now, metrics=metrics)


def _run_redist(spec: ScenarioSpec) -> ScenarioResult:
    from repro.blacs import ProcessGrid
    from repro.cluster.machine import Machine
    from repro.darray import Descriptor, DistributedMatrix
    from repro.mpi import World
    from repro.redist import checkpoint_redistribute, redistribute

    env = build_environment(spec)
    machine = Machine(env, spec.machine)
    world = World(env, machine, launch_overhead=0.0)
    old_grid = ProcessGrid(*spec.start)
    new_grid = ProcessGrid(*spec.target)
    desc = Descriptor(m=spec.size, n=spec.size,
                      mb=spec.block, nb=spec.block, grid=old_grid)
    dm = DistributedMatrix(desc, materialized=False)
    out: dict = {}

    def main(comm):
        if spec.redistribution_method == "checkpoint":
            res = yield from checkpoint_redistribute(comm, dm, new_grid)
        else:
            res = yield from redistribute(comm, dm, new_grid)
        if comm.rank == 0:
            out["res"] = res

    nprocs = max(old_grid.size, new_grid.size)
    world.launch(main, processors=list(range(nprocs)),
                 name=spec.name)
    env.run()
    res = out["res"]
    metrics = (
        ("elapsed", res.elapsed),
        ("wire_bytes", float(res.total_bytes_moved)),
        ("payload_nbytes", float(res.payload_nbytes)),
        ("messages", float(res.messages)),
    )
    return ScenarioResult(spec=spec, makespan=res.elapsed,
                          simulated_time=env.now, metrics=metrics)
