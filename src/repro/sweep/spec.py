"""Declarative experiment descriptions: ScenarioSpec and result records.

A :class:`ScenarioSpec` is a frozen, picklable, JSON-round-trippable
value object describing one complete experiment — machine, workload,
policies, seed, engine kernel — with no live objects inside.  The pure
resolver :func:`repro.sweep.resolver.run_scenario` turns a spec into a
:class:`ScenarioResult`; :class:`repro.sweep.runner.SweepRunner` fans
grids of specs across worker processes.

Three scenario kinds share the one spec type:

``"schedule"``
    A full ReSHAPE framework run of a workload (named ``"w1"``/``"w2"``,
    generated ``"synthetic"``, or an explicit ``"jobs"`` tuple) under
    static or dynamic scheduling — the Table 4/5 and Fig 4/5 shape.
``"static"``
    One application at one fixed configuration, no scheduler — the
    Fig 2(a) scaling-sweep shape.
``"redist"``
    One remapping of a block-cyclic matrix from ``start`` to ``target``
    via message-passing redistribution or the paper's single-node
    checkpoint/restart comparator (§4.1.2) — the Fig 2(b)/Table "4.5x
    to 14.5x" shape.

Specs compare by value, hash, and survive ``to_dict`` -> ``json`` ->
``from_dict`` exactly, so a printed spec re-runs the same experiment.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Optional, Union

from repro.cluster.machine import MachineSpec
from repro.workloads.paper import JobSpec

SCENARIO_KINDS = ("schedule", "static", "redist")
WORKLOAD_NAMES = ("w1", "w2", "synthetic", "jobs", "single")


def _pairs(params) -> tuple[tuple[str, float], ...]:
    """Normalize policy params (dict or pair-iterable) to sorted pairs."""
    if isinstance(params, dict):
        items = params.items()
    else:
        items = (tuple(p) for p in params)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment, declaratively.  See the module docstring."""

    kind: str = "schedule"
    label: Optional[str] = None

    # -- workload (kind="schedule") -----------------------------------
    #: "w1" | "w2" (paper job mixes), "synthetic" (generator), "jobs"
    #: (explicit ``jobs`` tuple), or "single" (one job from app/size/start).
    workload: str = "single"
    jobs: tuple[JobSpec, ...] = ()
    num_jobs: int = 6
    seed: int = 0
    mean_interarrival: float = 200.0
    arrival_model: str = "poisson"
    max_initial: int = 16
    iterations: int = 10

    # -- single application (workload="single", kind="static"/"redist")
    app: str = "lu"
    size: int = 12000
    start: tuple[int, int] = (1, 2)
    #: Destination grid of a kind="redist" scenario.
    target: Optional[tuple[int, int]] = None
    #: ScaLAPACK-style block size for kind="redist" matrices.
    block: int = 120

    # -- machine / engine ---------------------------------------------
    machine: MachineSpec = MachineSpec()
    num_processors: Optional[int] = None
    kernel: str = "calendar"

    # -- scheduling policy --------------------------------------------
    dynamic: bool = True
    backfill: bool = True
    scheduler: str = "indexed"
    sweet_spot: str = "simple"
    sweet_spot_params: tuple[tuple[str, float], ...] = ()
    expansion: str = "next-larger"
    expansion_params: tuple[tuple[str, float], ...] = ()
    #: "reshape" (message passing) or "checkpoint" (through-disk).
    redistribution_method: str = "reshape"

    def __post_init__(self):
        # Coerce JSON-decoded shapes so from_dict round-trips exactly
        # and literal-dict specs need no ceremony.
        set_ = object.__setattr__
        if isinstance(self.machine, dict):
            set_(self, "machine", MachineSpec(**self.machine))
        set_(self, "jobs", tuple(
            j if isinstance(j, JobSpec) else JobSpec.from_dict(j)
            for j in self.jobs))
        set_(self, "start", tuple(self.start))
        if self.target is not None:
            set_(self, "target", tuple(self.target))
        set_(self, "sweet_spot_params", _pairs(self.sweet_spot_params))
        set_(self, "expansion_params", _pairs(self.expansion_params))
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(f"unknown scenario kind {self.kind!r}; "
                             f"known: {SCENARIO_KINDS}")
        if self.kind == "schedule" and self.workload not in WORKLOAD_NAMES:
            raise ValueError(f"unknown workload {self.workload!r}; "
                             f"known: {WORKLOAD_NAMES}")
        if self.kind == "redist":
            if self.target is None:
                raise ValueError("kind='redist' needs a target grid")
            if self.redistribution_method not in ("reshape", "checkpoint"):
                raise ValueError(f"unknown redistribution method "
                                 f"{self.redistribution_method!r}")

    # -- identity ------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable scenario name (label, or derived)."""
        if self.label:
            return self.label
        if self.kind == "redist":
            return (f"redist:{self.app}({self.size}) "
                    f"{self.start[0]}x{self.start[1]}->"
                    f"{self.target[0]}x{self.target[1]}"
                    f":{self.redistribution_method}")
        if self.kind == "static":
            return (f"static:{self.app}({self.size})"
                    f"@{self.start[0]}x{self.start[1]}")
        mode = "dynamic" if self.dynamic else "static"
        if self.workload == "single":
            return f"{self.app}({self.size}):{mode}"
        return f"{self.workload}:{mode}:{self.sweet_spot}:{self.expansion}"

    def but(self, **changes) -> "ScenarioSpec":
        """A copy with fields replaced (grid-building convenience)."""
        return replace(self, **changes)

    # -- JSON round-trip ----------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe full description; inverse of :meth:`from_dict`."""
        return {
            "kind": self.kind,
            "label": self.label,
            "workload": self.workload,
            "jobs": [j.to_dict() for j in self.jobs],
            "num_jobs": self.num_jobs,
            "seed": self.seed,
            "mean_interarrival": self.mean_interarrival,
            "arrival_model": self.arrival_model,
            "max_initial": self.max_initial,
            "iterations": self.iterations,
            "app": self.app,
            "size": self.size,
            "start": list(self.start),
            "target": None if self.target is None else list(self.target),
            "block": self.block,
            "machine": asdict(self.machine),
            "num_processors": self.num_processors,
            "kernel": self.kernel,
            "dynamic": self.dynamic,
            "backfill": self.backfill,
            "scheduler": self.scheduler,
            "sweet_spot": self.sweet_spot,
            "sweet_spot_params": dict(self.sweet_spot_params),
            "expansion": self.expansion,
            "expansion_params": dict(self.expansion_params),
            "redistribution_method": self.redistribution_method,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        """Build a spec from a (possibly partial) JSON-safe dict."""
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown ScenarioSpec fields: "
                             f"{sorted(unknown)}")
        kwargs = dict(d)
        if kwargs.get("target") is not None:
            kwargs["target"] = tuple(kwargs["target"])
        if "start" in kwargs:
            kwargs["start"] = tuple(kwargs["start"])
        return cls(**kwargs)


#: Timeline entry: ``(time, job_id, job_name, nprocs, config, reason)``
#: — the tuple form of :class:`repro.core.events.ConfigChange`.
TimelineEntry = tuple


@dataclass(frozen=True)
class ScenarioResult:
    """What one scenario produced: plain data, picklable, comparable.

    ``wall_time`` is excluded from equality so a serial run and a
    subprocess run of the same spec compare bit-identical when their
    simulated trajectories agree.
    """

    spec: ScenarioSpec
    #: ConfigChange tuples in recording order (empty for non-schedule).
    timeline: tuple[TimelineEntry, ...] = ()
    #: Per job: (name, requested_size, arrival, turnaround, redist_time).
    job_stats: tuple[tuple, ...] = ()
    #: Per job: (name, ((iteration, config, iter_time, redist_time), ...)).
    iteration_logs: tuple[tuple, ...] = ()
    utilization: float = 0.0
    makespan: float = 0.0
    #: Simulated clock at scenario end.
    simulated_time: float = 0.0
    #: Kind-specific scalars, e.g. ("elapsed", 12.3) for redist.
    metrics: tuple[tuple[str, float], ...] = ()
    #: Host seconds the scenario took (not part of equality).
    wall_time: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return True

    @property
    def name(self) -> str:
        return self.spec.name

    def metric(self, key: str, default=None):
        for k, v in self.metrics:
            if k == key:
                return v
        return default

    @property
    def turnarounds(self) -> dict[str, float]:
        return {name: ta for name, _size, _arr, ta, _rd in self.job_stats
                if ta is not None}

    def timeline_recorder(self):
        """Rebuild a :class:`~repro.core.events.TimelineRecorder` (for
        the ASCII allocation charts and utilization helpers)."""
        from repro.core.events import TimelineRecorder
        rec = TimelineRecorder()
        for when, job_id, job_name, nprocs, config, reason in self.timeline:
            rec.record(when, job_id, job_name, nprocs, config, reason)
        return rec


@dataclass(frozen=True)
class ScenarioError:
    """A scenario that failed — the sweep completes around it.

    ``phase`` distinguishes a clean Python exception (``"error"``) from
    a worker that exceeded the per-scenario timeout (``"timeout"``) or
    died outright, e.g. a segfault or ``os._exit`` (``"crash"``).
    """

    spec: ScenarioSpec
    error: str
    phase: str = "error"
    traceback: str = field(default="", compare=False)
    attempts: int = field(default=1, compare=False)

    @property
    def ok(self) -> bool:
        return False

    @property
    def name(self) -> str:
        return self.spec.name


#: What a sweep yields per scenario.
ScenarioOutcome = Union[ScenarioResult, ScenarioError]
