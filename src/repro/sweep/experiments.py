"""The first real sweep consumers: paper-scale experiment grids.

* :func:`checkpoint_grid` — the paper's §4.1.2 comparison: remapping a
  block-cyclic matrix by message-passing redistribution vs file-based
  checkpoint/restart through one node's disk.  The paper measures the
  checkpoint route 4.5x-14.5x slower; :func:`summarize_checkpoint`
  reduces a sweep of paired scenarios to that ratio band.
* :func:`ablation_grid` — a policy x workload grid (sweet-spot rule x
  expansion rule x job mix) whose merged metrics feed the scheduling
  ablation studies; :func:`summarize_ablation` tabulates it.

Both return plain spec lists — run them with
:func:`repro.sweep.runner.sweep_scenarios` (or ``repro.sweep(...)``),
serially or parallel, locally or in CI's 2-worker smoke job.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.cluster.machine import MachineSpec
from repro.sweep.runner import SweepResult
from repro.sweep.spec import ScenarioSpec

#: The paper's measured band for checkpoint/restart vs redistribution.
PAPER_RATIO_BAND = (4.5, 14.5)

#: Full checkpoint-experiment grid sizes (Fig 2(b) sizes that also fit
#: CI memory).
CHECKPOINT_SIZES = (8000, 12000, 14000, 16000)

#: The remap steps of the comparison: expansions *and* shrink-backs at
#: the paper-scale configurations (2-6 processors) the paper measured
#: its 4.5x-14.5x on.  At larger grids the reproduction's gap widens
#: far past the paper band — redistribution keeps getting cheaper with
#: more wires while every checkpoint byte still funnels through one
#: node — a beyond-paper regime documented in docs/sweep.md, kept out
#: of the banded experiment on purpose.
CHECKPOINT_TRANSITIONS: tuple[tuple[tuple[int, int], tuple[int, int]],
                              ...] = (
    ((1, 2), (2, 2)),   # first expansion
    ((2, 2), (2, 3)),   # second expansion
    ((1, 2), (2, 3)),   # aggressive (greedy-policy) expansion
    ((2, 3), (2, 2)),   # sweet-spot shrink-back
    ((2, 4), (2, 2)),   # deeper shrink-back
    ((2, 2), (1, 2)),   # shrink to the initial allocation
)

#: Smoke grid: 2 sizes x 2 transitions x 2 methods = 8 scenarios,
#: sized for the CI bench job.
CHECKPOINT_SMOKE_SIZES = (8000, 12000)
CHECKPOINT_SMOKE_TRANSITIONS = 2


def checkpoint_grid(sizes: Sequence[int] = CHECKPOINT_SIZES, *,
                    transitions: Optional[int] = None,
                    machine: Optional[MachineSpec] = None,
                    ) -> list[ScenarioSpec]:
    """Paired redistribution/checkpoint scenarios over LU remap steps.

    For each matrix size and each :data:`CHECKPOINT_TRANSITIONS` step
    (capped at the first ``transitions`` per size), two scenarios: one
    remapping via the redistribution library, one via single-node
    checkpoint/restart.  Pairs are adjacent in the returned list
    (reshape, then checkpoint).
    """
    specs: list[ScenarioSpec] = []
    machine = machine or MachineSpec()
    steps = list(CHECKPOINT_TRANSITIONS)
    if transitions is not None:
        steps = steps[:transitions]
    for size in sizes:
        for old, new in steps:
            for method in ("reshape", "checkpoint"):
                specs.append(ScenarioSpec(
                    kind="redist", app="lu", size=size,
                    start=old, target=new, machine=machine,
                    redistribution_method=method))
    return specs


def summarize_checkpoint(sweep: SweepResult) -> dict:
    """Reduce a checkpoint-grid sweep to the paper's ratio band.

    Pairs scenarios by (size, start, target); each case's ratio is
    checkpoint simulated seconds over redistribution simulated seconds.
    Returns cases plus min/max/geometric-mean ratio and the paper band.
    """
    elapsed: dict[tuple, dict[str, float]] = {}
    for res in sweep.scenarios:
        spec = res.spec
        if spec.kind != "redist":
            continue
        key = (spec.size, spec.start, spec.target)
        elapsed.setdefault(key, {})[spec.redistribution_method] = \
            res.metric("elapsed")
    cases = []
    for (size, start, target), legs in sorted(elapsed.items()):
        if "reshape" not in legs or "checkpoint" not in legs:
            continue
        ratio = legs["checkpoint"] / legs["reshape"]
        cases.append({
            "size": size,
            "transition": f"{start[0]}x{start[1]}->{target[0]}x{target[1]}",
            "redistribution_s": legs["reshape"],
            "checkpoint_s": legs["checkpoint"],
            "ratio": ratio,
        })
    ratios = [c["ratio"] for c in cases]
    summary = {
        "cases": cases,
        "paper_band": list(PAPER_RATIO_BAND),
        "errors": len(sweep.errors),
    }
    if ratios:
        summary["ratio_min"] = min(ratios)
        summary["ratio_max"] = max(ratios)
        summary["ratio_geomean"] = math.exp(
            sum(math.log(r) for r in ratios) / len(ratios))
        lo, hi = PAPER_RATIO_BAND
        summary["in_band"] = bool(lo <= summary["ratio_min"]
                                  and summary["ratio_max"] <= hi)
    return summary


# ---------------------------------------------------------------------------
#: The ablation axes: sweet-spot rule x expansion rule.
ABLATION_POLICIES: list[tuple[str, dict, str]] = [
    ("simple", {}, "next-larger"),
    ("simple", {}, "greedy"),
    ("threshold", {"threshold": 0.05}, "next-larger"),
    ("threshold", {"threshold": 0.05}, "greedy"),
]


def ablation_grid(workloads: Sequence[str] = ("w1", "w2"), *,
                  iterations: int = 10,
                  machine: Optional[MachineSpec] = None,
                  ) -> list[ScenarioSpec]:
    """Policy x workload grid: every sweet-spot/expansion combination
    against each named workload, dynamic scheduling, plus one static
    baseline per workload."""
    machine = machine or MachineSpec()
    specs: list[ScenarioSpec] = []
    for workload in workloads:
        specs.append(ScenarioSpec(
            kind="schedule", workload=workload, dynamic=False,
            iterations=iterations, machine=machine,
            label=f"{workload}:static"))
        for sweet, params, expansion in ABLATION_POLICIES:
            specs.append(ScenarioSpec(
                kind="schedule", workload=workload, dynamic=True,
                iterations=iterations, machine=machine,
                sweet_spot=sweet, sweet_spot_params=tuple(params.items()),
                expansion=expansion,
                label=f"{workload}:{sweet}:{expansion}"))
    return specs


def ablation_smoke_grid(*, seeds: Sequence[int] = (0, 1),
                        num_jobs: int = 4, iterations: int = 3,
                        ) -> list[ScenarioSpec]:
    """A small synthetic-workload ablation grid for CI smoke runs.

    seeds x {simple, threshold} x {next-larger, greedy} minus
    duplicates = 8 scenarios of a few seconds each; enough work per
    scenario that a 2-worker sweep shows real parallel speedup.
    """
    machine = MachineSpec(num_nodes=24)
    specs: list[ScenarioSpec] = []
    for seed in seeds:
        for sweet, params, expansion in ABLATION_POLICIES:
            specs.append(ScenarioSpec(
                kind="schedule", workload="synthetic", seed=seed,
                num_jobs=num_jobs, iterations=iterations,
                mean_interarrival=50.0, max_initial=8,
                machine=machine, num_processors=24,
                sweet_spot=sweet, sweet_spot_params=tuple(params.items()),
                expansion=expansion,
                label=f"syn{seed}:{sweet}:{expansion}"))
    return specs


def summarize_ablation(sweep: SweepResult) -> dict:
    """Tabulate an ablation sweep: one cell per scenario."""
    cells = []
    for res in sweep.scenarios:
        spec = res.spec
        cells.append({
            "label": res.name,
            "workload": spec.workload,
            "dynamic": spec.dynamic,
            "sweet_spot": spec.sweet_spot,
            "expansion": spec.expansion,
            "mean_turnaround_s": res.metric("mean_turnaround"),
            "utilization": res.utilization,
            "makespan_s": res.makespan,
            "total_redistribution_s": res.metric("total_redistribution"),
        })
    return {"cells": cells, "errors": len(sweep.errors)}
