"""SweepRunner: fan a grid of scenarios across worker processes.

The shape follows the nengo-mpi master/worker split: a master process
partitions the work (here: whole scenarios — experiments are
embarrassingly parallel), workers resolve specs with the pure
:func:`~repro.sweep.resolver.run_scenario`, and the master merges the
per-scenario results into one tabular set.

Guarantees:

* **Deterministic merge order.**  Results come back in *spec order*, no
  matter which worker finished first — a sweep is a pure function of
  its spec list.
* **Crash containment.**  A worker that dies (segfault, ``os._exit``,
  OOM-kill) kills its whole pool, so every in-flight scenario is a
  suspect; each is retried once, isolated on a fresh single-worker
  pool, where innocents complete normally and the actual culprit is
  recorded as a structured :class:`ScenarioError` with
  ``phase="crash"`` — and the sweep completes.  Clean Python
  exceptions become ``phase="error"`` results immediately (they are
  deterministic — retrying them would reproduce the failure).
* **Timeout containment.**  With ``timeout=T``, a scenario still
  running T seconds after submission is abandoned as
  ``phase="timeout"`` (its worker finishes in the background; the slot
  is not reclaimed early — document long tails in the spec, or shard
  them).
* **Bounded submission.**  At most ``max_workers * chunk_factor``
  scenarios are in flight, so million-cell grids do not materialize a
  million pickled futures at once.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.sweep.resolver import run_scenario
from repro.sweep.spec import (
    ScenarioError,
    ScenarioOutcome,
    ScenarioResult,
    ScenarioSpec,
)


class _PoolBroken(Exception):
    """Internal: the process pool died; rebuild and continue."""


@dataclass
class SweepResult:
    """All scenario outcomes of one sweep, in spec order."""

    results: list[ScenarioOutcome]
    wall_time: float = 0.0
    workers: int = 1

    def __iter__(self):
        return iter(self.results)

    def __len__(self):
        return len(self.results)

    def __getitem__(self, idx):
        return self.results[idx]

    @property
    def scenarios(self) -> list[ScenarioResult]:
        """Successful results only, still in spec order."""
        return [r for r in self.results if r.ok]

    @property
    def errors(self) -> list[ScenarioError]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.errors

    def rows(self) -> list[list]:
        """Merged tabular view: one row per (scenario, job).

        Columns: scenario name, job, turnaround (s), redistribution
        (s), utilization, makespan (s).  Scenario kinds without jobs
        (static/redist) contribute one row with the job column empty.
        """
        out: list[list] = []
        for res in self.results:
            if not res.ok:
                out.append([res.name, f"<{res.phase}: {res.error}>",
                            None, None, None, None])
                continue
            if res.job_stats:
                for name, _size, _arrival, ta, rd in res.job_stats:
                    out.append([res.name, name, ta, rd,
                                res.utilization, res.makespan])
            else:
                out.append([res.name, "", None, None,
                            res.utilization, res.makespan])
        return out

    def metrics_dict(self) -> dict[str, dict[str, float]]:
        """Per-scenario metric scalars, keyed by scenario name."""
        return {res.name: dict(res.metrics)
                for res in self.results if res.ok}


class SweepRunner:
    """Run scenario grids serially or across a process pool.

    ``max_workers=1`` (or a one-element grid) runs in-process — no
    pickling, no pool — with identical results and error structure.
    ``task`` is the module-level callable each worker runs (default
    :func:`run_scenario`); tests substitute crash/sleep harnesses.
    """

    def __init__(self, max_workers: Optional[int] = None, *,
                 timeout: Optional[float] = None,
                 chunk_factor: int = 2,
                 mp_context: Optional[str] = None,
                 task: Callable[[ScenarioSpec], ScenarioResult]
                 = run_scenario):
        cpus = multiprocessing.cpu_count()
        self.max_workers = max_workers if max_workers else cpus
        if self.max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.timeout = timeout
        if chunk_factor < 1:
            raise ValueError("chunk_factor must be positive")
        self.chunk_factor = chunk_factor
        #: "fork" keeps task functions picklable by reference (and is
        #: available on the platforms CI runs); fall back to the
        #: platform default elsewhere.
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else None
        self._ctx = (multiprocessing.get_context(mp_context)
                     if mp_context else multiprocessing.get_context())
        self.task = task

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[Union[ScenarioSpec, dict]]) -> SweepResult:
        specs = [s if isinstance(s, ScenarioSpec)
                 else ScenarioSpec.from_dict(s) for s in specs]
        t0 = time.perf_counter()
        if self.max_workers == 1 or len(specs) <= 1:
            results = self._run_serial(specs)
            workers = 1
        else:
            results = self._run_parallel(specs)
            workers = min(self.max_workers, len(specs))
        return SweepResult(results=results,
                           wall_time=time.perf_counter() - t0,
                           workers=workers)

    def run_serial(self, specs: Sequence[Union[ScenarioSpec, dict]]
                   ) -> SweepResult:
        """In-process execution regardless of ``max_workers``."""
        specs = [s if isinstance(s, ScenarioSpec)
                 else ScenarioSpec.from_dict(s) for s in specs]
        t0 = time.perf_counter()
        return SweepResult(results=self._run_serial(specs),
                           wall_time=time.perf_counter() - t0, workers=1)

    # ------------------------------------------------------------------
    def _run_serial(self, specs: list[ScenarioSpec]
                    ) -> list[ScenarioOutcome]:
        results: list[ScenarioOutcome] = []
        for spec in specs:
            try:
                results.append(self.task(spec))
            except Exception as exc:
                results.append(ScenarioError(
                    spec=spec, error=f"{type(exc).__name__}: {exc}",
                    phase="error", traceback=traceback.format_exc()))
        return results

    def _run_parallel(self, specs: list[ScenarioSpec]
                      ) -> list[ScenarioOutcome]:
        results: dict[int, ScenarioOutcome] = {}
        #: (index, spec, attempt) still to run; attempt counts pool
        #: crashes only — a scenario gets one retry after a crash.
        queue: deque[tuple[int, ScenarioSpec, int]] = deque(
            (i, spec, 0) for i, spec in enumerate(specs))
        while queue:
            # A dying worker kills the whole pool, taking innocent
            # in-flight scenarios with it, so a crash cannot be
            # attributed while batched.  Retries therefore run one at a
            # time on their own pool: an innocent casualty completes
            # there; a scenario whose solo pool also dies is the
            # culprit and is recorded as phase="crash".
            if queue[0][2] > 0:
                batch = deque([queue.popleft()])
            else:
                batch = deque()
                while queue and queue[0][2] == 0:
                    batch.append(queue.popleft())
            workers = min(self.max_workers, len(batch))
            pool = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=self._ctx)
            try:
                self._drain(pool, batch, results)
            except _PoolBroken:
                pass  # rebuild the pool; batch already holds retries
            finally:
                # Never wait on abandoned (timed-out) workers; completed
                # futures already delivered their results.
                pool.shutdown(wait=False, cancel_futures=True)
            # Unfinished work (and _crashed() requeues) goes back to
            # the front, retries first, for the next pool.
            while batch:
                queue.appendleft(batch.pop())
            queue = deque(sorted(queue, key=lambda item: -item[2]))
        return [results[i] for i in range(len(specs))]

    def _drain(self, pool: ProcessPoolExecutor,
               queue: deque, results: dict) -> None:
        window = self.max_workers * self.chunk_factor
        inflight: dict = {}  # future -> (idx, spec, attempt, t_submit)
        try:
            while queue or inflight:
                while queue and len(inflight) < window:
                    idx, spec, attempt = queue.popleft()
                    fut = pool.submit(self.task, spec)
                    inflight[fut] = (idx, spec, attempt, time.monotonic())
                done, _ = wait(list(inflight),
                               return_when=FIRST_COMPLETED,
                               timeout=0.05 if self.timeout else None)
                broken = False
                for fut in done:
                    idx, spec, attempt, _t = inflight.pop(fut)
                    try:
                        results[idx] = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        self._crashed(queue, results, idx, spec, attempt)
                    except Exception as exc:
                        # A clean exception in the worker is
                        # deterministic: record it, don't retry.
                        results[idx] = ScenarioError(
                            spec=spec,
                            error=f"{type(exc).__name__}: {exc}",
                            phase="error",
                            traceback=traceback.format_exc())
                if broken:
                    raise _PoolBroken
                if self.timeout:
                    now = time.monotonic()
                    for fut in list(inflight):
                        idx, spec, attempt, t_submit = inflight[fut]
                        if now - t_submit > self.timeout:
                            fut.cancel()
                            inflight.pop(fut)
                            results[idx] = ScenarioError(
                                spec=spec, phase="timeout",
                                error=(f"scenario exceeded the "
                                       f"{self.timeout:g}s timeout"),
                                attempts=attempt + 1)
        except (_PoolBroken, BrokenProcessPool):
            # The pool died (detected via a result, or at submit time).
            # Salvage any in-flight future that still completed; retry
            # or record the rest.
            for fut, (idx, spec, attempt, _t) in inflight.items():
                exc = None
                try:
                    if fut.done():
                        exc = fut.exception()
                        if exc is None:
                            results[idx] = fut.result()
                            continue
                except Exception:
                    exc = None  # cancelled: treat as died with the pool
                if exc is not None and not isinstance(exc,
                                                     BrokenProcessPool):
                    results[idx] = ScenarioError(
                        spec=spec, error=f"{type(exc).__name__}: {exc}",
                        phase="error")
                else:
                    self._crashed(queue, results, idx, spec, attempt)
            raise _PoolBroken from None

    def _crashed(self, queue: deque, results: dict,
                 idx: int, spec: ScenarioSpec, attempt: int) -> None:
        """A worker died mid-scenario: retry once, then record."""
        if attempt == 0:
            queue.append((idx, spec, 1))
        else:
            results[idx] = ScenarioError(
                spec=spec, phase="crash", attempts=attempt + 1,
                error="worker process died (crash or kill) twice; "
                      "giving up on this scenario")


def sweep_scenarios(specs: Sequence[Union[ScenarioSpec, dict]], *,
                    max_workers: Optional[int] = None,
                    timeout: Optional[float] = None,
                    **runner_kwargs) -> SweepResult:
    """One-call sweep: build a runner, fan out, merge (the facade)."""
    runner = SweepRunner(max_workers, timeout=timeout, **runner_kwargs)
    return runner.run(specs)
