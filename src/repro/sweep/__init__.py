"""Parallel sweep harness over declarative experiment specs.

The paper's headline results are grids — scheduling strategy x workload
x machine — and this package makes grids cheap:

* :class:`ScenarioSpec` (:mod:`repro.sweep.spec`): a frozen, picklable,
  JSON-round-trippable description of one experiment.
* :func:`run_scenario` (:mod:`repro.sweep.resolver`): the pure resolver
  spec -> :class:`ScenarioResult`; every construction surface (CLI,
  benchmarks, ``repro.run``) goes through it.
* :class:`SweepRunner` (:mod:`repro.sweep.runner`): fans a grid of
  specs across worker processes with bounded submission, crash/timeout
  containment, and a deterministic spec-ordered merge.
* :mod:`repro.sweep.experiments`: the first real consumers — the
  paper's checkpoint/restart-vs-redistribution comparison (§4.1.2,
  4.5-14.5x) and a policy x workload ablation grid.

See docs/sweep.md for the spec schema and the determinism contract.
"""

from repro.sweep.experiments import (
    ablation_grid,
    ablation_smoke_grid,
    checkpoint_grid,
    summarize_ablation,
    summarize_checkpoint,
)
from repro.sweep.resolver import (
    build_framework,
    run_scenario,
    scenario_jobs,
)
from repro.sweep.runner import SweepResult, SweepRunner, sweep_scenarios
from repro.sweep.spec import (
    ScenarioError,
    ScenarioOutcome,
    ScenarioResult,
    ScenarioSpec,
)

__all__ = [
    "ScenarioError",
    "ScenarioOutcome",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepResult",
    "SweepRunner",
    "ablation_grid",
    "ablation_smoke_grid",
    "build_framework",
    "checkpoint_grid",
    "run_scenario",
    "scenario_jobs",
    "summarize_ablation",
    "summarize_checkpoint",
    "sweep_scenarios",
]
