"""BLACS-style process-grid contexts over the simulated MPI layer.

The paper builds its resizing library "on top of the ScaLAPACK
communication library, BLACS", modified for dynamic process management.
This package provides the pieces that matter for that role:

* :class:`ProcessGrid` — a row-major ``pr x pc`` logical grid.
* :class:`BlacsContext` — a grid bound to a communicator, with row and
  column sub-communicators (the channels ScaLAPACK kernels broadcast
  panels over), created collectively and torn down/rebuilt around each
  resize, exactly as ReSHAPE exits the old BLACS context and creates a
  new one after a spawn or shrink.
"""

from repro.blacs.grid import ProcessGrid
from repro.blacs.context import BlacsContext

__all__ = ["BlacsContext", "ProcessGrid"]
