"""Logical 2-D process grids (row-major, BLACS default ordering)."""

from __future__ import annotations


class ProcessGrid:
    """A ``pr x pc`` grid mapping communicator ranks to coordinates.

    Rank ``r`` sits at row ``r // pc``, column ``r % pc`` — BLACS
    row-major ordering.  A 1-D process set is a degenerate grid
    (``1 x p`` or ``p x 1``).
    """

    def __init__(self, pr: int, pc: int):
        if pr < 1 or pc < 1:
            raise ValueError("grid dimensions must be positive")
        self.pr = pr
        self.pc = pc

    @property
    def size(self) -> int:
        return self.pr * self.pc

    @property
    def shape(self) -> tuple[int, int]:
        return (self.pr, self.pc)

    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinates ``(row, col)`` of ``rank``."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for {self!r}")
        return rank // self.pc, rank % self.pc

    def rank_of(self, row: int, col: int) -> int:
        """Communicator rank at grid position ``(row, col)``."""
        if not (0 <= row < self.pr and 0 <= col < self.pc):
            raise ValueError(f"coords ({row},{col}) outside {self!r}")
        return row * self.pc + col

    def row_members(self, row: int) -> list[int]:
        """Ranks in grid row ``row``, in column order."""
        return [self.rank_of(row, c) for c in range(self.pc)]

    def col_members(self, col: int) -> list[int]:
        """Ranks in grid column ``col``, in row order."""
        return [self.rank_of(r, col) for r in range(self.pr)]

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ProcessGrid) and
                self.shape == other.shape)

    def __hash__(self) -> int:
        return hash(("ProcessGrid", self.shape))

    def __repr__(self) -> str:
        return f"ProcessGrid({self.pr}x{self.pc})"
