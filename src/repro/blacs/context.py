"""BLACS context: a grid bound to a communicator with row/col channels."""

from __future__ import annotations

from typing import Generator, Optional

from repro.blacs.grid import ProcessGrid
from repro.mpi.comm import Comm
from repro.mpi.errors import MPIError


class BlacsContext:
    """A live process-grid context for one rank.

    Created *collectively*: every rank of ``comm`` whose rank is below
    ``pr*pc`` joins the grid; extra ranks get ``None`` back (mirroring
    BLACS where processes outside the grid have no context).  Each member
    holds its coordinates plus row and column sub-communicators.

    Resizing tears a context down (:meth:`exit`) and builds a fresh one on
    the post-resize communicator — the paper's "the old BLACS context is
    exited and a new context is created for the new processor set".
    """

    def __init__(self, comm: Comm, grid: ProcessGrid,
                 row_comm: Comm, col_comm: Comm):
        self.comm = comm
        self.grid = grid
        self.row_comm = row_comm
        self.col_comm = col_comm
        self.myrow, self.mycol = grid.coords(comm.rank)
        self._alive = True

    # -- factory -----------------------------------------------------------
    @staticmethod
    def create(comm: Comm, pr: int, pc: int) -> Generator:
        """Collectively build a ``pr x pc`` context on the first pr*pc ranks.

        All ranks of ``comm`` must call this.  Returns this rank's
        :class:`BlacsContext`, or ``None`` for ranks outside the grid.
        """
        grid = ProcessGrid(pr, pc)
        if grid.size > comm.size:
            raise MPIError(f"grid {pr}x{pc} needs {grid.size} ranks, "
                           f"communicator has {comm.size}")
        # Grid communicator: the first pr*pc ranks.
        grid_comm = yield from comm.create_sub(list(range(grid.size)))
        # Row and column communicators: every rank participates in every
        # create_sub call (collective over the parent), members keep theirs.
        my_row_comm: Optional[Comm] = None
        my_col_comm: Optional[Comm] = None
        for row in range(pr):
            sub = yield from comm.create_sub(grid.row_members(row))
            if sub is not None:
                my_row_comm = sub
        for col in range(pc):
            sub = yield from comm.create_sub(grid.col_members(col))
            if sub is not None:
                my_col_comm = sub
        if grid_comm is None:
            return None
        assert my_row_comm is not None and my_col_comm is not None
        return BlacsContext(grid_comm, grid, my_row_comm, my_col_comm)

    # -- properties -----------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def nprow(self) -> int:
        return self.grid.pr

    @property
    def npcol(self) -> int:
        return self.grid.pc

    def exit(self) -> None:
        """Leave the context (further use is a programming error)."""
        self._alive = False

    def _check_alive(self) -> None:
        if not self._alive:
            raise MPIError("operation on an exited BLACS context")

    # -- grid-scoped communication (the BLACS verbs ScaLAPACK needs) -------
    def row_bcast(self, payload, root_col: int) -> Generator:
        """Broadcast within my grid row from column ``root_col``."""
        self._check_alive()
        result = yield from self.row_comm.bcast(payload, root=root_col)
        return result

    def col_bcast(self, payload, root_row: int) -> Generator:
        """Broadcast within my grid column from row ``root_row``."""
        self._check_alive()
        result = yield from self.col_comm.bcast(payload, root=root_row)
        return result

    def barrier(self) -> Generator:
        self._check_alive()
        yield from self.comm.barrier()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<BlacsContext {self.grid.pr}x{self.grid.pc} "
                f"at ({self.myrow},{self.mycol})>")
