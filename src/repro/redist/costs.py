"""Recorded redistribution costs and cost prediction.

"...with ReSHAPE we save a record of actual redistribution costs between
various processor configurations, which allows for more informed
decisions."  (§4.1.2)

:class:`RedistributionCostLog` is that record.  The paper also points at
prediction of unseen costs (Wolski et al., ref [21]); the
:meth:`~RedistributionCostLog.predict` extension estimates a resize the
framework has not performed yet from a volume/bandwidth model fitted to
the observations so far.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from functools import lru_cache
from statistics import fmean
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class RedistributionRecord:
    """One observed redistribution.

    ``nbytes`` is the total payload of the redistributed arrays;
    ``bytes_moved`` the wire traffic actually observed (None for legacy
    records, which predate the distinction).
    """

    from_config: tuple[int, int]
    to_config: tuple[int, int]
    nbytes: int
    elapsed: float
    when: float
    bytes_moved: Optional[int] = None


@lru_cache(maxsize=1024)
def _moved_fraction(p: int, q: int) -> float:
    """Fraction of block-cyclic data that changes processor from p to q.

    Over one period ``L = lcm(p, q)`` a block stays put when its residues
    agree on the shared physical processor — for nested expansions
    (``p | q`` or ``q | p``) that is ``min(p, q) / max(p, q)`` of blocks
    ... computed exactly by counting residue agreements.
    """
    L = math.lcm(p, q)
    g = np.arange(L, dtype=np.int64)
    stay = int(np.count_nonzero(g % p == g % q))
    return 1.0 - stay / L


def _wire_estimate(rec: RedistributionRecord) -> float:
    """Wire bytes of a record: observed when known, modelled otherwise."""
    if rec.bytes_moved is not None:
        return float(rec.bytes_moved)
    p = rec.from_config[0] * rec.from_config[1]
    q = rec.to_config[0] * rec.to_config[1]
    return rec.nbytes * _moved_fraction(p, q)


@dataclass
class RedistributionCostLog:
    """History of redistribution costs keyed by (from, to) configuration."""

    records: list[RedistributionRecord] = field(default_factory=list)
    _by_pair: dict[tuple, list[RedistributionRecord]] = \
        field(default_factory=lambda: defaultdict(list))

    def record(self, from_config: tuple[int, int], to_config: tuple[int, int],
               nbytes: int, elapsed: float, when: float,
               bytes_moved: Optional[int] = None) -> None:
        rec = RedistributionRecord(from_config=tuple(from_config),
                                   to_config=tuple(to_config),
                                   nbytes=nbytes, elapsed=elapsed, when=when,
                                   bytes_moved=bytes_moved)
        self.records.append(rec)
        self._by_pair[(rec.from_config, rec.to_config)].append(rec)

    def observed(self, from_config: tuple[int, int],
                 to_config: tuple[int, int]) -> Optional[float]:
        """Mean observed cost for this exact resize, or None."""
        recs = self._by_pair.get((tuple(from_config), tuple(to_config)))
        if not recs:
            return None
        return fmean(r.elapsed for r in recs)

    def effective_bandwidth(self) -> Optional[float]:
        """Fitted bytes-actually-moved per second across all records."""
        num = 0.0
        den = 0.0
        for rec in self.records:
            p = rec.from_config[0] * rec.from_config[1]
            q = rec.to_config[0] * rec.to_config[1]
            moved = _wire_estimate(rec)
            # The schedule moves data through min(p, q) busiest NICs in
            # parallel; normalize to per-wire throughput.
            wires = max(1, min(p, q))
            num += moved / wires
            den += rec.elapsed
        if den <= 0 or num <= 0:
            return None
        return num / den

    def predict(self, from_config: tuple[int, int],
                to_config: tuple[int, int], nbytes: int) -> Optional[float]:
        """Estimate the cost of an unseen resize.

        Uses the exact-pair mean when available, otherwise scales by data
        moved / parallel wires at the fitted effective bandwidth.
        Returns None with no history at all.
        """
        exact = self.observed(from_config, to_config)
        if exact is not None:
            return exact
        bw = self.effective_bandwidth()
        if bw is None:
            return None
        p = from_config[0] * from_config[1]
        q = to_config[0] * to_config[1]
        moved = nbytes * _moved_fraction(p, q)
        wires = max(1, min(p, q))
        return (moved / wires) / bw
