"""Block-cyclic data redistribution — ReSHAPE's resizing-library core.

The paper redistributes block-cyclic arrays between processor sets
"organized in a 1-D (row or column format) or checkerboard processor
topology", extending the 1-D algorithm of Park, Prasanna & Raghavendra
(IEEE TPDS 1999).  Three ideas from that algorithm are reproduced here:

1. **Table-based index computation** (:mod:`repro.redist.tables`): the
   initial and final layouts are tabulated per communication class — all
   blocks sharing a (source, destination) pair — so each class becomes
   one aggregated message.
2. **Contention-free schedule** (:mod:`repro.redist.schedule`): classes
   are arranged into steps forming partial permutations (every processor
   sends at most one and receives at most one message per step), derived
   from the generalized-circulant structure of the block-cyclic mapping.
   A bipartite edge-coloring fallback covers layouts without the
   circulant structure, and a deliberately naive single-step schedule is
   kept for ablation.
3. **Checkerboard extension** (:mod:`repro.redist.redistribute`): 2-D
   redistributions compose the row and column 1-D schedules; the driver
   executes either over the simulated MPI layer with message aggregation
   and persistent-style transfers.

:mod:`repro.redist.checkpoint` implements the paper's comparator — file
based checkpoint/restart through a single node — and
:mod:`repro.redist.costs` the framework's record of observed
redistribution costs (used by the Remap Scheduler to weigh resizings).
"""

from repro.redist.checkpoint import checkpoint_redistribute
from repro.redist.costs import RedistributionCostLog, RedistributionRecord
from repro.redist.redistribute import RedistributionResult, redistribute
from repro.redist.schedule import (
    Message1D,
    Message2D,
    Schedule1D,
    Schedule2D,
    build_1d_schedule,
    build_2d_schedule,
    build_naive_1d_schedule,
    edge_coloring_schedule,
    verify_schedule_complete,
    verify_schedule_contention_free,
)
from repro.redist.tables import build_class_table, crt_block_classes

__all__ = [
    "Message1D",
    "Message2D",
    "RedistributionCostLog",
    "RedistributionRecord",
    "RedistributionResult",
    "Schedule1D",
    "Schedule2D",
    "build_1d_schedule",
    "build_2d_schedule",
    "build_class_table",
    "build_naive_1d_schedule",
    "checkpoint_redistribute",
    "crt_block_classes",
    "edge_coloring_schedule",
    "redistribute",
    "verify_schedule_complete",
    "verify_schedule_contention_free",
]
