"""Contention-free communication schedules.

A *schedule* arranges the communication classes of a redistribution into
steps.  A step is contention-free when it is a partial permutation of
processors: every processor sends at most one message and receives at
most one message.  On a network with per-NIC serialization (ours, and
real Gigabit Ethernet) contention-free steps are what keep every wire
busy without queueing.

Three constructions:

* :func:`build_1d_schedule` — the generalized-circulant construction for
  same-block-size P -> Q redistribution.  Steps are consecutive windows
  of the class table; the circulant structure makes each window a
  partial permutation, achieving the minimum step count
  ``max(L/P, L/Q)``.
* :func:`edge_coloring_schedule` — a general fallback for arbitrary
  (src, dst) class sets, via bipartite edge coloring (König's theorem)
  implemented with repeated maximum matchings (networkx).
* :func:`build_naive_1d_schedule` — everything in one step; the ablation
  baseline showing what contention costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.redist.tables import BlockClass, crt_block_classes


@dataclass(frozen=True)
class Message1D:
    """An aggregated message of one 1-D redistribution step."""

    src: int
    dst: int
    blocks: tuple[int, ...]

    @property
    def count(self) -> int:
        return len(self.blocks)


@dataclass
class Schedule1D:
    """Steps of aggregated messages for one dimension."""

    P: int
    Q: int
    nblocks: int
    steps: list[list[Message1D]] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def messages(self) -> list[Message1D]:
        return [m for step in self.steps for m in step]


@dataclass(frozen=True)
class Message2D:
    """An aggregated message of a checkerboard redistribution step.

    Carries the cross product ``row_blocks x col_blocks`` of global
    blocks from grid process ``src`` (in the source grid) to ``dst`` (in
    the destination grid).
    """

    src: tuple[int, int]
    dst: tuple[int, int]
    row_blocks: tuple[int, ...]
    col_blocks: tuple[int, ...]

    @property
    def count(self) -> int:
        return len(self.row_blocks) * len(self.col_blocks)


@dataclass
class Schedule2D:
    """Steps of aggregated 2-D messages (checkerboard redistribution)."""

    src_grid: tuple[int, int]
    dst_grid: tuple[int, int]
    row_blocks: int
    col_blocks: int
    steps: list[list[Message2D]] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def messages(self) -> list[Message2D]:
        return [m for step in self.steps for m in step]


# ---------------------------------------------------------------------------
# 1-D circulant construction
# ---------------------------------------------------------------------------

def build_1d_schedule(nblocks: int, P: int, Q: int) -> Schedule1D:
    """Contention-free schedule for P -> Q same-block-size redistribution.

    The class table (phases ``0..L-1``, ``L = lcm(P, Q)``) is cut into
    consecutive windows of ``min(P, Q)`` phases; each window is one step.
    Within a window the phases are consecutive integers, so their
    residues mod P are pairwise distinct (window length <= P) and their
    residues mod Q are pairwise distinct (window length <= Q) — i.e.
    every step is a partial permutation.  The step count is
    ``L / min(P, Q) = max(L/P, L/Q)``, which is optimal: the busiest
    side's processors each appear in ``max(L/P, L/Q)`` classes and can
    handle only one per step.  This is the generalized-circulant
    construction of Park et al. specialized to equal block sizes (the
    ReSHAPE case, where only the processor count changes).
    """
    if P < 1 or Q < 1 or nblocks < 0:
        raise ValueError("bad schedule parameters")
    # crt_block_classes returns classes in phase order 0..min(L, nblocks);
    # consecutive windows of the list are exactly the phase windows.
    classes = crt_block_classes(nblocks, P, Q)
    L = math.lcm(P, Q)
    small = min(P, Q)
    schedule = Schedule1D(P=P, Q=Q, nblocks=nblocks)
    for start in range(0, L, small):
        step = [
            Message1D(src=cls.src, dst=cls.dst, blocks=cls.blocks)
            for cls in classes[start:start + small] if cls.count > 0
        ]
        if step:
            schedule.steps.append(step)
    return schedule


def build_naive_1d_schedule(nblocks: int, P: int, Q: int) -> Schedule1D:
    """All classes in one step — maximal contention (ablation baseline)."""
    classes = [c for c in crt_block_classes(nblocks, P, Q) if c.count > 0]
    schedule = Schedule1D(P=P, Q=Q, nblocks=nblocks)
    if classes:
        schedule.steps.append([
            Message1D(src=c.src, dst=c.dst, blocks=c.blocks)
            for c in classes
        ])
    return schedule


def edge_coloring_schedule(nblocks: int, P: int, Q: int) -> Schedule1D:
    """General contention-free schedule via bipartite edge coloring.

    Builds the bipartite multigraph of communication classes and strips
    maximum matchings until empty.  König's edge-coloring theorem
    guarantees ``max-degree`` colors suffice; repeated maximum matching
    realizes that bound on this class structure and needs no circulant
    property, so it also covers future layouts (e.g. different source
    and destination block sizes) the paper lists as extensions.
    """
    classes = [c for c in crt_block_classes(nblocks, P, Q) if c.count > 0]
    remaining: list[BlockClass] = list(classes)
    schedule = Schedule1D(P=P, Q=Q, nblocks=nblocks)
    while remaining:
        graph = nx.Graph()
        edge_classes: dict[tuple[str, str], BlockClass] = {}
        for cls in remaining:
            u, v = f"s{cls.src}", f"d{cls.dst}"
            # A simple graph merges parallel classes; only one per
            # (src, dst) can go in a single step anyway.
            if (u, v) not in edge_classes:
                graph.add_edge(u, v)
                edge_classes[(u, v)] = cls
        matching = nx.algorithms.matching.max_weight_matching(
            graph, maxcardinality=True)
        step: list[Message1D] = []
        taken: set[int] = set()
        for a, b in matching:
            key = (a, b) if a.startswith("s") else (b, a)
            cls = edge_classes[key]
            step.append(Message1D(src=cls.src, dst=cls.dst,
                                  blocks=cls.blocks))
            taken.add(id(cls))
        if not step:  # pragma: no cover - matching always non-empty
            raise RuntimeError("edge coloring failed to progress")
        schedule.steps.append(step)
        remaining = [c for c in remaining if id(c) not in taken]
    return schedule


# ---------------------------------------------------------------------------
# 2-D checkerboard construction
# ---------------------------------------------------------------------------

def build_2d_schedule(row_blocks: int, col_blocks: int,
                      src_grid: tuple[int, int],
                      dst_grid: tuple[int, int]) -> Schedule2D:
    """Checkerboard redistribution as the product of two 1-D schedules.

    Step ``(tr, tc)`` of the product pairs every row-message of row-step
    ``tr`` with every column-message of column-step ``tc``; since the row
    (resp. column) parts are partial permutations of grid rows (resp.
    columns), each combined step is a partial permutation of grid
    processes — contention-free.  This is exactly the paper's "extension
    of the algorithm for a 1-D processor topology" to checkerboards.
    """
    Pr, Pc = src_grid
    Qr, Qc = dst_grid
    row_sched = build_1d_schedule(row_blocks, Pr, Qr)
    col_sched = build_1d_schedule(col_blocks, Pc, Qc)
    schedule = Schedule2D(src_grid=src_grid, dst_grid=dst_grid,
                          row_blocks=row_blocks, col_blocks=col_blocks)
    for row_step in row_sched.steps:
        for col_step in col_sched.steps:
            step = [
                Message2D(src=(rm.src, cm.src), dst=(rm.dst, cm.dst),
                          row_blocks=rm.blocks, col_blocks=cm.blocks)
                for rm in row_step for cm in col_step
            ]
            if step:
                schedule.steps.append(step)
    return schedule


# ---------------------------------------------------------------------------
# verification
# ---------------------------------------------------------------------------

def verify_schedule_contention_free(schedule: Schedule1D | Schedule2D,
                                    ) -> bool:
    """Every step a partial permutation (<=1 send, <=1 recv per process)."""
    for step in schedule.steps:
        sources = [m.src for m in step]
        dests = [m.dst for m in step]
        if len(set(sources)) != len(sources):
            return False
        if len(set(dests)) != len(dests):
            return False
    return True


def verify_schedule_complete(schedule: Schedule1D) -> bool:
    """Each global block appears exactly once, routed src->dst correctly."""
    messages = [m for m in schedule.messages if m.blocks]
    if not messages:
        return schedule.nblocks == 0
    blocks = np.concatenate([np.asarray(m.blocks, dtype=np.int64)
                             for m in messages])
    srcs = np.concatenate([np.full(len(m.blocks), m.src, dtype=np.int64)
                           for m in messages])
    dsts = np.concatenate([np.full(len(m.blocks), m.dst, dtype=np.int64)
                           for m in messages])
    if len(blocks) != schedule.nblocks:
        return False
    if len(np.unique(blocks)) != len(blocks):
        return False
    if blocks.min() < 0 or blocks.max() >= schedule.nblocks:
        return False
    return bool(np.all(srcs == blocks % schedule.P) and
                np.all(dsts == blocks % schedule.Q))


def verify_2d_schedule_complete(schedule: Schedule2D) -> bool:
    """Each (row-block, col-block) pair routed exactly once, correctly."""
    expected = schedule.row_blocks * schedule.col_blocks
    messages = [m for m in schedule.messages
                if m.row_blocks and m.col_blocks]
    if not messages:
        return expected == 0
    Pr, Pc = schedule.src_grid
    Qr, Qc = schedule.dst_grid
    keys = []
    for msg in messages:
        rb = np.asarray(msg.row_blocks, dtype=np.int64)
        cb = np.asarray(msg.col_blocks, dtype=np.int64)
        if (rb.min() < 0 or rb.max() >= schedule.row_blocks or
                cb.min() < 0 or cb.max() >= schedule.col_blocks):
            return False
        if not (np.all(rb % Pr == msg.src[0]) and
                np.all(cb % Pc == msg.src[1])):
            return False
        if not (np.all(rb % Qr == msg.dst[0]) and
                np.all(cb % Qc == msg.dst[1])):
            return False
        # Flatten the cross product to scalar keys for the global
        # exactly-once check.
        keys.append((rb[:, None] * schedule.col_blocks + cb[None, :]
                     ).ravel())
    flat = np.concatenate(keys)
    return len(flat) == expected and len(np.unique(flat)) == expected
