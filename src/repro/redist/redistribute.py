"""Execute a redistribution schedule over the simulated MPI layer.

The driver is collective over a communicator that embeds both grids:

* source grid ranks: ``0 .. P-1`` (row-major over the source grid);
* destination grid ranks: ``0 .. Q-1`` (row-major over the destination
  grid).

For an expansion the communicator is the merged (parents + spawned
children) intracommunicator, so retained processors keep their low ranks
— exactly the structure ``World.spawn_multiple`` + ``Intercomm.merge``
produce.  For a shrink the communicator is the pre-shrink one and
destination ranks are the survivors.

Each schedule step sends one aggregated message per (source,
destination) pair: the sender packs its blocks into one buffer (packing
charged at memory bandwidth), ships it (wire time + NIC occupancy), and
the receiver unpacks into the new local array.  Messages to self are
local copies — packing cost only.

Data path
---------
Packing, unpacking and byte counting run on precomputed index tables
(:mod:`repro.redist.tables`, :mod:`repro.darray.blockcyclic`): one numpy
gather/scatter per aggregated message instead of one Python-level copy
per block.  Messages-to-self skip the wire format entirely (a fused
src->dst scatter, :func:`repro.darray.copy_rect`); wire messages pack
into pooled strip buffers that the unpack side recycles across steps
and resize points, and the gather strategy is picked at runtime per
layout.  The original per-block loops are kept below as ``*_loop``
reference implementations; the equivalence tests and the
``benchmarks/test_perf_redist.py`` micro-benchmark compare against them.

In phantom mode the messages themselves ride the point-to-point fast
path (:mod:`repro.mpi.fastp2p`): a step's delivery is the cached
per-rank plan walk plus pure clock arithmetic — no transfer processes,
no NIC resource events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.blacs.grid import ProcessGrid
from repro.darray import (
    Descriptor,
    DistributedMatrix,
    copy_rect,
    release_strips,
)
from repro.mpi import ANY_SOURCE, Phantom
from repro.mpi.comm import Comm
from repro.mpi.datatypes import SizedPayload
from repro.mpi.errors import MPIError
from repro.redist.schedule import Message2D, Schedule2D
from repro.redist.tables import (
    build_rank_plans,
    cached_2d_traffic,
    cached_rank_plans,
    message_nbytes,
    schedule_traffic,
)

#: Tag space for redistribution traffic.
_REDIST_TAG = 1 << 20


@dataclass
class RedistributionResult:
    """Outcome of one redistribution, as seen by one rank."""

    matrix: DistributedMatrix
    elapsed: float
    #: Wire bytes this rank sent (excludes messages to self).
    bytes_moved: int = 0
    #: Wire bytes of the whole redistribution, summed over every rank —
    #: identical on all ranks, known from the schedule alone.
    total_bytes_moved: int = 0
    #: Total payload of the redistributed array (``desc.global_nbytes``);
    #: the part that did not cross the wire was copied locally.
    payload_nbytes: int = 0
    messages: int = 0
    local_copies: int = 0
    steps: int = 0


def _message_nbytes(desc: Descriptor, msg: Message2D) -> int:
    """Payload bytes of an aggregated message (cached table lookup)."""
    return message_nbytes(desc.m, desc.n, desc.mb, desc.nb,
                          desc.itemsize, msg)


def _schedule_traffic(schedule: Schedule2D, desc: Descriptor,
                      old_grid: ProcessGrid,
                      new_grid: ProcessGrid) -> tuple[int, int]:
    """``(wire_bytes, local_bytes)`` of a caller-supplied schedule (e.g.
    the naive ablation baseline); the default schedule path goes through
    the cached :func:`repro.redist.tables.cached_2d_traffic`."""
    return schedule_traffic(schedule, old_grid, new_grid,
                            desc.m, desc.n, desc.mb, desc.nb,
                            desc.itemsize)


# ---------------------------------------------------------------------------
# Per-block reference implementations (the pre-vectorization data path).
# Kept for the equivalence property tests and the micro-benchmark; the
# driver below never calls them.
# ---------------------------------------------------------------------------

def _message_nbytes_loop(desc: Descriptor, msg: Message2D) -> int:
    """Reference: payload bytes summed block by block."""
    total = 0
    for rb in msg.row_blocks:
        rlen = min(desc.mb, desc.m - rb * desc.mb)
        if rlen <= 0:
            continue
        for cb in msg.col_blocks:
            clen = min(desc.nb, desc.n - cb * desc.nb)
            if clen <= 0:
                continue
            total += rlen * clen * desc.itemsize
    return total


def _pack_blocks_loop(src_dm: DistributedMatrix, rank: int,
                      msg: Message2D) -> list[tuple[int, int, np.ndarray]]:
    """Reference: extract the message's blocks one numpy slice at a time."""
    out = []
    desc = src_dm.desc
    for rb in msg.row_blocks:
        if rb * desc.mb >= desc.m:
            continue
        for cb in msg.col_blocks:
            if cb * desc.nb >= desc.n:
                continue
            rs, cs = src_dm.local_block_slices(rank, rb, cb)
            out.append((rb, cb, src_dm.local(rank)[rs, cs].copy()))
    return out


def _unpack_blocks_loop(dst_dm: DistributedMatrix, rank: int,
                        blocks: list[tuple[int, int, np.ndarray]]) -> None:
    """Reference: place received blocks one numpy slice at a time."""
    for rb, cb, data in blocks:
        rs, cs = dst_dm.local_block_slices(rank, rb, cb)
        dst_dm.local(rank)[rs, cs] = data


def redistribute(comm: Comm, source: DistributedMatrix,
                 new_grid: ProcessGrid, *,
                 schedule: Optional[Schedule2D] = None,
                 memory_bandwidth: float = 3.2e9) -> Generator:
    """Collectively remap ``source`` onto ``new_grid``.

    Every rank of ``comm`` calls this (``yield from``).  Ranks outside
    both grids just participate in the closing synchronization.  Returns
    a :class:`RedistributionResult`; ranks outside the new grid get
    ``result.matrix is None``.
    """
    old_desc = source.desc
    old_grid = old_desc.grid
    P = old_grid.size
    Q = new_grid.size
    if comm.size < max(P, Q):
        raise MPIError(f"communicator size {comm.size} cannot embed grids "
                       f"of {P} and {Q}")
    new_desc = old_desc.with_grid(new_grid)
    me = comm.rank
    in_new = me < Q

    # The simulator is one OS process, so the destination matrix is a
    # single shared object: rank 0 allocates it and shares the reference
    # (a tiny broadcast); each rank then fills only its own local array.
    target: Optional[DistributedMatrix] = None
    if me == 0:
        target = DistributedMatrix(new_desc,
                                   materialized=source.materialized,
                                   dtype=source.dtype)
    target = yield from comm.bcast(target, root=0)

    if schedule is None:
        plan = cached_rank_plans(
            old_desc.row_blocks, old_desc.col_blocks,
            old_grid.shape, new_grid.shape,
            old_desc.m, old_desc.n, old_desc.mb, old_desc.nb,
            old_desc.itemsize)
        total_wire, _total_local = cached_2d_traffic(
            old_desc.row_blocks, old_desc.col_blocks,
            old_grid.shape, new_grid.shape,
            old_desc.m, old_desc.n, old_desc.mb, old_desc.nb,
            old_desc.itemsize)
    else:
        plan = build_rank_plans(
            schedule, old_grid, new_grid,
            old_desc.m, old_desc.n, old_desc.mb, old_desc.nb,
            old_desc.itemsize)
        total_wire, _total_local = _schedule_traffic(
            schedule, old_desc, old_grid, new_grid)

    # Synchronize entry so the measured time is the redistribution alone.
    yield from comm.barrier()
    t0 = comm.env.now

    result = RedistributionResult(matrix=target, elapsed=0.0,
                                  total_bytes_moved=total_wire,
                                  payload_nbytes=old_desc.global_nbytes,
                                  steps=plan.num_steps)

    # Precomputed delivery: each rank walks only its own per-step send
    # and receive lists (repro.redist.tables.RedistPlan) instead of
    # rescanning every message of every step.
    for step_idx, rank_step in enumerate(plan.rank_steps(me)):
        tag = _REDIST_TAG + step_idx

        pending = []
        for msg, dst_rank, nbytes in rank_step.sends:
            # Packing: one pass over the message payload through memory.
            yield comm.env.sleep(nbytes / memory_bandwidth)
            if dst_rank == me:
                # Local copy: no wire traffic, and no wire format — a
                # fused src->dst scatter with no strip temporaries.
                if source.materialized:
                    assert target is not None
                    copy_rect(source, me, target, me,
                              msg.row_blocks, msg.col_blocks)
                result.local_copies += 1
                continue
            if source.materialized:
                # Pooled strips: the receiver releases them after
                # unpacking, so repeated steps and resize points reuse
                # the same buffers instead of paying allocator
                # page-fault churn.
                payload: object = SizedPayload(
                    nbytes, (msg, source.pack_rect(me, msg.row_blocks,
                                                   msg.col_blocks,
                                                   pooled=True)))
            else:
                payload = Phantom(nbytes, meta=("redist", msg.src, msg.dst))
            pending.append(comm.isend(payload, dest=dst_rank, tag=tag))
            result.messages += 1
            result.bytes_moved += nbytes
        # A contention-free schedule gives each rank at most one receive
        # per step; degraded schedules (the naive ablation baseline) may
        # give several — accept them in arrival order.
        for _ in range(rank_step.recv_count):
            payload = yield from comm.recv(source=ANY_SOURCE, tag=tag)
            nbytes = payload.nbytes
            if source.materialized:
                assert target is not None
                assert isinstance(payload, SizedPayload)
                msg, data = payload.data
                target.unpack_rect(me, msg.row_blocks, msg.col_blocks,
                                   data)
                release_strips(data)
            # Unpacking pass through memory on the receive side.
            yield comm.env.sleep(nbytes / memory_bandwidth)
        for req in pending:
            yield from req.wait()

    # Closing barrier: redistribution time is the slowest rank's time,
    # which is what the application (and the paper's tables) observe.
    yield from comm.barrier()
    result.elapsed = comm.env.now - t0
    if not in_new:
        result.matrix = None
    return result
