"""File-based checkpoint/restart redistribution — the paper's comparator.

"To get an idea of the relative overhead of redistribution using the
ReSHAPE library compared to file-based checkpointing, we implemented a
simple checkpointing library in which all data is saved and restored
through a single node."  (§4.1.2)

The data path: every source rank ships its whole local array to rank 0;
rank 0 writes the global array to disk; rank 0 reads it back and ships
each destination rank its new local array.  Every byte crosses node 0's
NIC twice and the disk twice — which is why the paper measures this
4.5x-14.5x slower than message-passing redistribution.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.blacs.grid import ProcessGrid
from repro.darray import DistributedMatrix
from repro.mpi import Phantom
from repro.mpi.comm import Comm
from repro.mpi.errors import MPIError
from repro.redist.redistribute import RedistributionResult

_CKPT_TAG = 1 << 21


def checkpoint_redistribute(comm: Comm, source: DistributedMatrix,
                            new_grid: ProcessGrid) -> Generator:
    """Remap ``source`` onto ``new_grid`` via single-node checkpointing.

    Collective over ``comm`` (same embedding conventions as
    :func:`repro.redist.redistribute`).  Returns a
    :class:`RedistributionResult`.
    """
    old_desc = source.desc
    P = old_desc.grid.size
    Q = new_grid.size
    if comm.size < max(P, Q):
        raise MPIError(f"communicator size {comm.size} cannot embed grids "
                       f"of {P} and {Q}")
    new_desc = old_desc.with_grid(new_grid)
    me = comm.rank
    disk = comm.world.machine.disk

    # One shared destination object (see repro.redist.redistribute).
    target: Optional[DistributedMatrix] = None
    if me == 0:
        target = DistributedMatrix(new_desc,
                                   materialized=source.materialized,
                                   dtype=source.dtype)
    target = yield from comm.bcast(target, root=0)

    yield from comm.barrier()
    t0 = comm.env.now
    # Every byte of every non-root local array crosses the wire twice
    # (funnel in, deal out) — known up front from the two layouts.
    total_wire = sum(source.local_nbytes(r) for r in range(1, P))
    total_wire += sum(new_desc.local_nbytes(*new_grid.coords(r))
                      for r in range(1, Q))
    result = RedistributionResult(matrix=target, elapsed=0.0,
                                  total_bytes_moved=total_wire,
                                  payload_nbytes=old_desc.global_nbytes,
                                  steps=2)

    # Phase 1: funnel all local arrays to rank 0.
    if me == 0:
        global_array: Optional[np.ndarray] = None
        if source.materialized:
            gathered = DistributedMatrix(old_desc, materialized=True,
                                         dtype=source.dtype)
            gathered.set_local(0, source.local(0))
        for src in range(1, P):
            payload = yield from comm.recv(source=src, tag=_CKPT_TAG)
            result.messages += 1
            if source.materialized:
                gathered.set_local(src, payload)
        if source.materialized:
            global_array = gathered.to_global()
        # Write the checkpoint file, then read it back for restart.
        yield from disk.write(old_desc.global_nbytes)
        yield from disk.read(old_desc.global_nbytes)
        # Phase 2: deal the restart data out to the new grid.
        refilled: Optional[DistributedMatrix] = None
        if source.materialized:
            assert global_array is not None
            refilled = DistributedMatrix.from_global(global_array, new_desc)
        for dst in range(Q):
            prow, pcol = new_grid.coords(dst)
            nbytes = new_desc.local_nbytes(prow, pcol)
            if dst == 0:
                if refilled is not None:
                    assert target is not None
                    target.set_local(0, refilled.local(0))
                continue
            if refilled is not None:
                payload: object = refilled.local(dst)
            else:
                payload = Phantom(nbytes)
            yield from comm.send(payload, dest=dst, tag=_CKPT_TAG + 1)
            result.messages += 1
            result.bytes_moved += nbytes
    else:
        if me < P:
            nbytes = source.local_nbytes(me)
            if source.materialized:
                payload = source.local(me)
            else:
                payload = Phantom(nbytes)
            yield from comm.send(payload, dest=0, tag=_CKPT_TAG)
            result.bytes_moved += nbytes
        if me < Q:
            payload = yield from comm.recv(source=0, tag=_CKPT_TAG + 1)
            if source.materialized:
                assert target is not None
                target.set_local(me, payload)

    yield from comm.barrier()
    result.elapsed = comm.env.now - t0
    if me >= Q:
        result.matrix = None
    return result
