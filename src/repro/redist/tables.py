"""Table-based index computation for block-cyclic redistribution.

For a 1-D block-cyclic layout with the *same block size* on both sides —
ReSHAPE's situation, where only the processor count changes — global
block ``g`` lives on source process ``g mod P`` and must end on
destination process ``g mod Q``.  The pair ``(g mod P, g mod Q)`` is
periodic in ``g`` with period ``L = lcm(P, Q)``, and the map from
``g mod L`` to the pair is a bijection (CRT).  Each residue class modulo
``L`` is therefore one *communication class*: a (source, destination)
pair plus the arithmetic progression of blocks it carries.  Classes are
what the destination-processor table of the paper tabulates, and each
class becomes a single aggregated message on the wire.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np


@dataclass(frozen=True)
class BlockClass:
    """One communication class of a 1-D redistribution.

    ``blocks`` is the arithmetic progression ``phase, phase+L, ...`` of
    global block indices below ``nblocks``.
    """

    src: int
    dst: int
    phase: int          # class representative: g ≡ phase (mod L)
    period: int         # L = lcm(P, Q)
    nblocks: int        # total global blocks

    @property
    def blocks(self) -> tuple[int, ...]:
        return tuple(range(self.phase, self.nblocks, self.period))

    @property
    def count(self) -> int:
        if self.phase >= self.nblocks:
            return 0
        return 1 + (self.nblocks - 1 - self.phase) // self.period


def crt_block_classes(nblocks: int, P: int, Q: int) -> list[BlockClass]:
    """All non-empty communication classes for a P -> Q redistribution.

    Classes are returned in phase order (0..L-1), skipping phases with no
    blocks.  Classes where ``src`` and ``dst`` denote the same retained
    process are *not* skipped here — whether a class is a local copy
    depends on the physical processor mapping, which the driver knows.
    """
    if nblocks < 0 or P < 1 or Q < 1:
        raise ValueError("bad redistribution parameters")
    L = math.lcm(P, Q)
    classes = []
    for phase in range(min(L, nblocks)):
        classes.append(BlockClass(src=phase % P, dst=phase % Q,
                                  phase=phase, period=L, nblocks=nblocks))
    return classes


def build_class_table(nblocks: int, P: int, Q: int) -> dict:
    """The paper's three tables, as one structure for inspection.

    Returns ``{"initial": ..., "final": ..., "destination": ...}`` where
    ``initial[g]`` is the source process of block ``g``, ``final[g]`` the
    destination process, and ``destination[(src, step_row)]`` the
    destination-processor table entry — the processor that ``src`` sends
    to in communication step ``step_row`` (None when idle).  This mirrors
    the paper's tabular presentation; the executable schedule is built in
    :mod:`repro.redist.schedule`.
    """
    from repro.redist.schedule import build_1d_schedule

    initial = [g % P for g in range(nblocks)]
    final = [g % Q for g in range(nblocks)]
    schedule = build_1d_schedule(nblocks, P, Q)
    destination: dict[tuple[int, int], int | None] = {}
    for step_idx, step in enumerate(schedule.steps):
        by_src = {msg.src: msg.dst for msg in step}
        for src in range(P):
            destination[(src, step_idx)] = by_src.get(src)
    return {"initial": initial, "final": final, "destination": destination}


# ---------------------------------------------------------------------------
# schedule / byte-count caches (redistribution hot path)
#
# A job hits the same resize points over and over (expand 4 -> 6, shrink
# 6 -> 4, ...), and every experiment reuses a handful of (grid, layout)
# pairs.  Schedules and message byte counts depend only on small hashable
# keys, so LRU caches turn the per-resize rebuild into a lookup.
# ---------------------------------------------------------------------------

@lru_cache(maxsize=256)
def cached_2d_schedule(row_blocks: int, col_blocks: int,
                       src_grid: tuple[int, int],
                       dst_grid: tuple[int, int]):
    """Memoized :func:`repro.redist.schedule.build_2d_schedule`.

    The returned :class:`Schedule2D` is shared — treat it as read-only.
    """
    from repro.redist.schedule import build_2d_schedule

    return build_2d_schedule(row_blocks, col_blocks, src_grid, dst_grid)


@lru_cache(maxsize=8192)
def blocks_extent(n: int, nb: int, blocks: tuple[int, ...]) -> int:
    """Total element extent of global ``blocks`` (short/overflowing blocks
    clipped), vectorized and cached per distinct block tuple."""
    arr = np.asarray(blocks, dtype=np.int64)
    return int(np.clip(n - arr * nb, 0, nb).sum())


def message_nbytes(m: int, n: int, mb: int, nb: int, itemsize: int,
                   msg) -> int:
    """Payload bytes of a :class:`Message2D` — the cross product of its
    row and column block extents."""
    return (blocks_extent(m, mb, msg.row_blocks) *
            blocks_extent(n, nb, msg.col_blocks) * itemsize)


def schedule_traffic(schedule, src_grid, dst_grid, m: int, n: int,
                     mb: int, nb: int, itemsize: int) -> tuple[int, int]:
    """``(wire_bytes, local_bytes)`` of an arbitrary 2-D schedule.

    ``wire_bytes`` is what actually crosses the network summed over every
    rank (source and destination communicator ranks differ);
    ``local_bytes`` is the volume of messages-to-self (rank kept its
    data — a memory copy, never network traffic).  Both grids embed
    row-major into the communicator, exactly as the driver routes
    messages (``ProcessGrid.rank_of``).
    """
    wire = 0
    local = 0
    for msg in schedule.messages:
        nbytes = message_nbytes(m, n, mb, nb, itemsize, msg)
        if src_grid.rank_of(*msg.src) == dst_grid.rank_of(*msg.dst):
            local += nbytes
        else:
            wire += nbytes
    return wire, local


@lru_cache(maxsize=256)
def cached_2d_traffic(row_blocks: int, col_blocks: int,
                      src_grid: tuple[int, int], dst_grid: tuple[int, int],
                      m: int, n: int, mb: int, nb: int,
                      itemsize: int) -> tuple[int, int]:
    """Memoized :func:`schedule_traffic` of the cached default schedule."""
    from repro.blacs.grid import ProcessGrid

    schedule = cached_2d_schedule(row_blocks, col_blocks,
                                  src_grid, dst_grid)
    return schedule_traffic(schedule, ProcessGrid(*src_grid),
                            ProcessGrid(*dst_grid), m, n, mb, nb,
                            itemsize)
