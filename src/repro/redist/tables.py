"""Table-based index computation for block-cyclic redistribution.

For a 1-D block-cyclic layout with the *same block size* on both sides —
ReSHAPE's situation, where only the processor count changes — global
block ``g`` lives on source process ``g mod P`` and must end on
destination process ``g mod Q``.  The pair ``(g mod P, g mod Q)`` is
periodic in ``g`` with period ``L = lcm(P, Q)``, and the map from
``g mod L`` to the pair is a bijection (CRT).  Each residue class modulo
``L`` is therefore one *communication class*: a (source, destination)
pair plus the arithmetic progression of blocks it carries.  Classes are
what the destination-processor table of the paper tabulates, and each
class becomes a single aggregated message on the wire.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BlockClass:
    """One communication class of a 1-D redistribution.

    ``blocks`` is the arithmetic progression ``phase, phase+L, ...`` of
    global block indices below ``nblocks``.
    """

    src: int
    dst: int
    phase: int          # class representative: g ≡ phase (mod L)
    period: int         # L = lcm(P, Q)
    nblocks: int        # total global blocks

    @property
    def blocks(self) -> tuple[int, ...]:
        return tuple(range(self.phase, self.nblocks, self.period))

    @property
    def count(self) -> int:
        if self.phase >= self.nblocks:
            return 0
        return 1 + (self.nblocks - 1 - self.phase) // self.period


def crt_block_classes(nblocks: int, P: int, Q: int) -> list[BlockClass]:
    """All non-empty communication classes for a P -> Q redistribution.

    Classes are returned in phase order (0..L-1), skipping phases with no
    blocks.  Classes where ``src`` and ``dst`` denote the same retained
    process are *not* skipped here — whether a class is a local copy
    depends on the physical processor mapping, which the driver knows.
    """
    if nblocks < 0 or P < 1 or Q < 1:
        raise ValueError("bad redistribution parameters")
    L = math.lcm(P, Q)
    classes = []
    for phase in range(min(L, nblocks)):
        classes.append(BlockClass(src=phase % P, dst=phase % Q,
                                  phase=phase, period=L, nblocks=nblocks))
    return classes


def build_class_table(nblocks: int, P: int, Q: int) -> dict:
    """The paper's three tables, as one structure for inspection.

    Returns ``{"initial": ..., "final": ..., "destination": ...}`` where
    ``initial[g]`` is the source process of block ``g``, ``final[g]`` the
    destination process, and ``destination[(src, step_row)]`` the
    destination-processor table entry — the processor that ``src`` sends
    to in communication step ``step_row`` (None when idle).  This mirrors
    the paper's tabular presentation; the executable schedule is built in
    :mod:`repro.redist.schedule`.
    """
    from repro.redist.schedule import build_1d_schedule

    initial = [g % P for g in range(nblocks)]
    final = [g % Q for g in range(nblocks)]
    schedule = build_1d_schedule(nblocks, P, Q)
    destination: dict[tuple[int, int], int | None] = {}
    for step_idx, step in enumerate(schedule.steps):
        by_src = {msg.src: msg.dst for msg in step}
        for src in range(P):
            destination[(src, step_idx)] = by_src.get(src)
    return {"initial": initial, "final": final, "destination": destination}
