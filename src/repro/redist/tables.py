"""Table-based index computation for block-cyclic redistribution.

For a 1-D block-cyclic layout with the *same block size* on both sides —
ReSHAPE's situation, where only the processor count changes — global
block ``g`` lives on source process ``g mod P`` and must end on
destination process ``g mod Q``.  The pair ``(g mod P, g mod Q)`` is
periodic in ``g`` with period ``L = lcm(P, Q)``, and the map from
``g mod L`` to the pair is a bijection (CRT).  Each residue class modulo
``L`` is therefore one *communication class*: a (source, destination)
pair plus the arithmetic progression of blocks it carries.  Classes are
what the destination-processor table of the paper tabulates, and each
class becomes a single aggregated message on the wire.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np


@dataclass(frozen=True)
class BlockClass:
    """One communication class of a 1-D redistribution.

    ``blocks`` is the arithmetic progression ``phase, phase+L, ...`` of
    global block indices below ``nblocks``.
    """

    src: int
    dst: int
    phase: int          # class representative: g ≡ phase (mod L)
    period: int         # L = lcm(P, Q)
    nblocks: int        # total global blocks

    @property
    def blocks(self) -> tuple[int, ...]:
        return tuple(range(self.phase, self.nblocks, self.period))

    @property
    def count(self) -> int:
        if self.phase >= self.nblocks:
            return 0
        return 1 + (self.nblocks - 1 - self.phase) // self.period


def crt_block_classes(nblocks: int, P: int, Q: int) -> list[BlockClass]:
    """All non-empty communication classes for a P -> Q redistribution.

    Classes are returned in phase order (0..L-1), skipping phases with no
    blocks.  Classes where ``src`` and ``dst`` denote the same retained
    process are *not* skipped here — whether a class is a local copy
    depends on the physical processor mapping, which the driver knows.
    """
    if nblocks < 0 or P < 1 or Q < 1:
        raise ValueError("bad redistribution parameters")
    L = math.lcm(P, Q)
    classes = []
    for phase in range(min(L, nblocks)):
        classes.append(BlockClass(src=phase % P, dst=phase % Q,
                                  phase=phase, period=L, nblocks=nblocks))
    return classes


def build_class_table(nblocks: int, P: int, Q: int) -> dict:
    """The paper's three tables, as one structure for inspection.

    Returns ``{"initial": ..., "final": ..., "destination": ...}`` where
    ``initial[g]`` is the source process of block ``g``, ``final[g]`` the
    destination process, and ``destination[(src, step_row)]`` the
    destination-processor table entry — the processor that ``src`` sends
    to in communication step ``step_row`` (None when idle).  This mirrors
    the paper's tabular presentation; the executable schedule is built in
    :mod:`repro.redist.schedule`.
    """
    from repro.redist.schedule import build_1d_schedule

    initial = [g % P for g in range(nblocks)]
    final = [g % Q for g in range(nblocks)]
    schedule = build_1d_schedule(nblocks, P, Q)
    destination: dict[tuple[int, int], int | None] = {}
    for step_idx, step in enumerate(schedule.steps):
        by_src = {msg.src: msg.dst for msg in step}
        for src in range(P):
            destination[(src, step_idx)] = by_src.get(src)
    return {"initial": initial, "final": final, "destination": destination}


# ---------------------------------------------------------------------------
# schedule / byte-count caches (redistribution hot path)
#
# A job hits the same resize points over and over (expand 4 -> 6, shrink
# 6 -> 4, ...), and every experiment reuses a handful of (grid, layout)
# pairs.  Schedules and message byte counts depend only on small hashable
# keys, so LRU caches turn the per-resize rebuild into a lookup.
# ---------------------------------------------------------------------------

@lru_cache(maxsize=256)
def cached_2d_schedule(row_blocks: int, col_blocks: int,
                       src_grid: tuple[int, int],
                       dst_grid: tuple[int, int]):
    """Memoized :func:`repro.redist.schedule.build_2d_schedule`.

    The returned :class:`Schedule2D` is shared — treat it as read-only.
    """
    from repro.redist.schedule import build_2d_schedule

    return build_2d_schedule(row_blocks, col_blocks, src_grid, dst_grid)


@lru_cache(maxsize=8192)
def blocks_extent(n: int, nb: int, blocks: tuple[int, ...]) -> int:
    """Total element extent of global ``blocks`` (short/overflowing blocks
    clipped), vectorized and cached per distinct block tuple."""
    arr = np.asarray(blocks, dtype=np.int64)
    return int(np.clip(n - arr * nb, 0, nb).sum())


def message_nbytes(m: int, n: int, mb: int, nb: int, itemsize: int,
                   msg) -> int:
    """Payload bytes of a :class:`Message2D` — the cross product of its
    row and column block extents."""
    return (blocks_extent(m, mb, msg.row_blocks) *
            blocks_extent(n, nb, msg.col_blocks) * itemsize)


def schedule_traffic(schedule, src_grid, dst_grid, m: int, n: int,
                     mb: int, nb: int, itemsize: int) -> tuple[int, int]:
    """``(wire_bytes, local_bytes)`` of an arbitrary 2-D schedule.

    ``wire_bytes`` is what actually crosses the network summed over every
    rank (source and destination communicator ranks differ);
    ``local_bytes`` is the volume of messages-to-self (rank kept its
    data — a memory copy, never network traffic).  Both grids embed
    row-major into the communicator, exactly as the driver routes
    messages (``ProcessGrid.rank_of``).
    """
    wire = 0
    local = 0
    for msg in schedule.messages:
        nbytes = message_nbytes(m, n, mb, nb, itemsize, msg)
        if src_grid.rank_of(*msg.src) == dst_grid.rank_of(*msg.dst):
            local += nbytes
        else:
            wire += nbytes
    return wire, local


@lru_cache(maxsize=256)
def cached_2d_traffic(row_blocks: int, col_blocks: int,
                      src_grid: tuple[int, int], dst_grid: tuple[int, int],
                      m: int, n: int, mb: int, nb: int,
                      itemsize: int) -> tuple[int, int]:
    """Memoized :func:`schedule_traffic` of the cached default schedule."""
    from repro.blacs.grid import ProcessGrid

    schedule = cached_2d_schedule(row_blocks, col_blocks,
                                  src_grid, dst_grid)
    return schedule_traffic(schedule, ProcessGrid(*src_grid),
                            ProcessGrid(*dst_grid), m, n, mb, nb,
                            itemsize)


# ---------------------------------------------------------------------------
# Per-rank delivery plans (redistribution hot path)
#
# The driver used to rediscover, on every rank and at every step, which
# of the step's messages it sends or receives — an O(ranks x messages)
# scan per redistribution that dominated phantom-mode host time.  A
# RedistPlan tabulates the routing once per (schedule, layout) key:
# rank r reads its own step list and touches nothing else.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RankStep:
    """What one communicator rank does in one schedule step.

    ``sends`` preserves the schedule's message order and excludes empty
    messages (the driver never ships zero bytes); ``recv_count`` is the
    number of nonzero inbound messages from *other* ranks.
    """

    sends: tuple  # of (Message2D, dst_rank, nbytes)
    recv_count: int


_EMPTY_RANK_STEP = RankStep(sends=(), recv_count=0)


@dataclass(frozen=True)
class RedistPlan:
    """Per-rank, per-step routing of one redistribution schedule."""

    num_steps: int
    by_rank: dict  # rank -> tuple[RankStep, ...]

    def rank_steps(self, rank: int) -> tuple:
        steps = self.by_rank.get(rank)
        if steps is None:
            return (_EMPTY_RANK_STEP,) * self.num_steps
        return steps


def build_rank_plans(schedule, src_grid, dst_grid, m: int, n: int,
                     mb: int, nb: int, itemsize: int) -> RedistPlan:
    """Tabulate an arbitrary schedule into a :class:`RedistPlan`."""
    sends: dict[int, list] = {}
    recvs: dict[int, list] = {}
    num_steps = schedule.num_steps
    for step_idx, step in enumerate(schedule.steps):
        for msg in step:
            nbytes = message_nbytes(m, n, mb, nb, itemsize, msg)
            if nbytes == 0:
                continue
            src_rank = src_grid.rank_of(*msg.src)
            dst_rank = dst_grid.rank_of(*msg.dst)
            sends.setdefault(src_rank, [[] for _ in range(num_steps)])[
                step_idx].append((msg, dst_rank, nbytes))
            if dst_rank != src_rank:
                counts = recvs.setdefault(dst_rank, [0] * num_steps)
                counts[step_idx] += 1
    by_rank: dict[int, tuple] = {}
    for rank in set(sends) | set(recvs):
        rank_sends = sends.get(rank)
        rank_recvs = recvs.get(rank)
        by_rank[rank] = tuple(
            RankStep(
                sends=tuple(rank_sends[s]) if rank_sends else (),
                recv_count=rank_recvs[s] if rank_recvs else 0)
            for s in range(num_steps))
    return RedistPlan(num_steps=num_steps, by_rank=by_rank)


@lru_cache(maxsize=256)
def cached_rank_plans(row_blocks: int, col_blocks: int,
                      src_grid: tuple[int, int], dst_grid: tuple[int, int],
                      m: int, n: int, mb: int, nb: int,
                      itemsize: int) -> RedistPlan:
    """Memoized :func:`build_rank_plans` of the cached default schedule.

    The returned plan is shared — treat it as read-only.
    """
    from repro.blacs.grid import ProcessGrid

    schedule = cached_2d_schedule(row_blocks, col_blocks,
                                  src_grid, dst_grid)
    return build_rank_plans(schedule, ProcessGrid(*src_grid),
                            ProcessGrid(*dst_grid), m, n, mb, nb,
                            itemsize)
