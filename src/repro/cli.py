"""Command-line interface: run reproduction experiments from a shell.

    python -m repro run lu --size 12000 --start 1x2 --procs 36
    python -m repro workload w1 --iterations 10
    python -m repro sweep lu --size 8000
    python -m repro synth --jobs 8 --seed 3 --procs 24

Each subcommand builds the simulated cluster, runs the experiment, and
prints the same tables the benchmarks produce.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import run_static
from repro.cluster.topology import parse_config
from repro.core import ReshapeFramework
from repro.core.policies import (
    ExpansionPolicy,
    GreedyExpansionPolicy,
    SweetSpotPolicy,
    ThresholdSweetSpot,
)
from repro.metrics import (
    format_table,
    render_allocation_history,
    turnaround_table,
)
from repro.workloads import (
    WorkloadGenerator,
    build_workload1,
    build_workload2,
    make_application,
)
from repro.workloads.paper import (
    PROCESSOR_CONFIGS,
    WORKLOAD1_PROCESSORS,
    WORKLOAD2_PROCESSORS,
)


def _policies(args) -> dict:
    sweet = (ThresholdSweetSpot(args.threshold) if args.threshold > 0
             else SweetSpotPolicy())
    expansion = (GreedyExpansionPolicy() if args.greedy
                 else ExpansionPolicy())
    return {"sweet_spot": sweet, "expansion": expansion}


def cmd_run(args) -> int:
    """One resizable job under the framework."""
    framework = ReshapeFramework(num_processors=args.procs,
                                 dynamic=not args.static,
                                 **_policies(args))
    app = make_application(args.app, args.size,
                           iterations=args.iterations)
    job = framework.submit(app, config=parse_config(args.start))
    framework.run()
    rows = []
    prev = None
    for it, config, t, redist in job.iteration_log:
        rows.append([it, f"{config[0]}x{config[1]}",
                     config[0] * config[1], t,
                     None if prev is None else prev - t, redist])
        prev = t
    print(format_table(
        ["iter", "grid", "procs", "time (s)", "dT (s)", "redist (s)"],
        rows, title=f"{job.name} under "
        f"{'static' if args.static else 'dynamic'} scheduling"))
    print(f"\nturn-around {job.turnaround:.1f} s, "
          f"redistribution {job.redistribution_time:.1f} s, "
          f"utilization {framework.utilization():.1%}")
    return 0


def cmd_workload(args) -> int:
    """The paper's W1/W2 job mixes, static vs dynamic."""
    builders = {"w1": (build_workload1, WORKLOAD1_PROCESSORS),
                "w2": (build_workload2, WORKLOAD2_PROCESSORS)}
    build, procs = builders[args.which]
    results = {}
    for dynamic in (False, True):
        fw = ReshapeFramework(num_processors=procs, dynamic=dynamic)
        jobs = build(fw, iterations=args.iterations)
        fw.run()
        results[dynamic] = (fw, jobs)
    fw_s, jobs_s = results[False]
    fw_d, jobs_d = results[True]
    print(render_allocation_history(fw_d.timeline))
    print()
    print(turnaround_table(jobs_s, jobs_d,
                           title=f"{args.which.upper()} turn-around"))
    print(f"\nutilization: static {fw_s.utilization():.1%}, "
          f"dynamic {fw_d.utilization():.1%}")
    return 0


def cmd_sweep(args) -> int:
    """Static iteration time at every legal configuration (Fig 2a)."""
    key = (args.app.upper() if args.app != "mm" else "MM", args.size)
    configs = PROCESSOR_CONFIGS.get(key)
    if configs is None:
        app0 = make_application(args.app, args.size, iterations=1)
        configs = app0.legal_configs(args.procs)
    rows = []
    for config in configs:
        if config[0] * config[1] > args.procs:
            continue
        app = make_application(args.app, args.size, iterations=1)
        result = run_static(app, config)
        rows.append([f"{config[0]}x{config[1]}",
                     config[0] * config[1],
                     result.mean_iteration_time])
    print(format_table(["grid", "procs", "iteration time (s)"], rows,
                       title=f"{args.app}({args.size}) scaling sweep"))
    return 0


def cmd_synth(args) -> int:
    """A synthetic job mix through the scheduler."""
    gen = WorkloadGenerator(seed=args.seed,
                            mean_interarrival=args.interarrival,
                            max_initial=min(16, args.procs))
    specs = gen.generate(args.jobs)
    fw = ReshapeFramework(num_processors=args.procs,
                          dynamic=not args.static)
    jobs = gen.submit_all(fw, specs, iterations=args.iterations)
    fw.run()
    rows = [[name, j.requested_size, j.arrival_time, j.turnaround]
            for name, j in jobs.items()]
    print(format_table(["job", "initial", "arrival (s)",
                        "turn-around (s)"], rows,
                       title=f"synthetic mix (seed {args.seed})"))
    print(f"\nutilization {fw.utilization():.1%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one resizable job")
    p_run.add_argument("app", choices=["lu", "mm", "jacobi", "fft",
                                       "masterworker"])
    p_run.add_argument("--size", type=int, default=12000)
    p_run.add_argument("--start", default="1x2",
                       help="initial grid, e.g. 1x2 or 4")
    p_run.add_argument("--procs", type=int, default=36)
    p_run.add_argument("--iterations", type=int, default=10)
    p_run.add_argument("--static", action="store_true")
    p_run.add_argument("--threshold", type=float, default=0.0,
                       help="sweet-spot improvement threshold (0 = "
                            "paper's any-improvement rule)")
    p_run.add_argument("--greedy", action="store_true",
                       help="greedy expansion instead of next-larger")
    p_run.set_defaults(fn=cmd_run)

    p_wl = sub.add_parser("workload", help="run the paper's W1/W2")
    p_wl.add_argument("which", choices=["w1", "w2"])
    p_wl.add_argument("--iterations", type=int, default=10)
    p_wl.set_defaults(fn=cmd_workload)

    p_sweep = sub.add_parser("sweep", help="static scaling sweep")
    p_sweep.add_argument("app", choices=["lu", "mm", "jacobi", "fft"])
    p_sweep.add_argument("--size", type=int, default=12000)
    p_sweep.add_argument("--procs", type=int, default=50)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_synth = sub.add_parser("synth", help="synthetic workload")
    p_synth.add_argument("--jobs", type=int, default=6)
    p_synth.add_argument("--seed", type=int, default=0)
    p_synth.add_argument("--procs", type=int, default=36)
    p_synth.add_argument("--iterations", type=int, default=5)
    p_synth.add_argument("--interarrival", type=float, default=200.0)
    p_synth.add_argument("--static", action="store_true")
    p_synth.set_defaults(fn=cmd_synth)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    sys.exit(main())
