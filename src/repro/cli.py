"""Command-line interface: run reproduction experiments from a shell.

    python -m repro run lu --size 12000 --start 1x2 --procs 36
    python -m repro workload w1 --iterations 10
    python -m repro sweep lu --size 8000
    python -m repro synth --jobs 8 --seed 3 --procs 24
    python -m repro grid all --smoke --workers 2 --speedup

Every subcommand builds declarative :class:`ScenarioSpec` objects and
resolves them through the one shared resolver
(:func:`repro.sweep.resolver.run_scenario`), so ``--json`` on any of
them prints the exact spec(s) a run would execute — feed that file back
through ``grid --file`` to reproduce it, serially or across cores.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pathlib
import sys

from repro.cluster.topology import parse_config
from repro.metrics import format_table, render_allocation_history
from repro.sweep.experiments import (
    CHECKPOINT_SMOKE_SIZES,
    CHECKPOINT_SMOKE_TRANSITIONS,
    ablation_grid,
    ablation_smoke_grid,
    checkpoint_grid,
    summarize_ablation,
    summarize_checkpoint,
)
from repro.sweep.resolver import run_scenario
from repro.sweep.runner import SweepResult, SweepRunner, sweep_scenarios
from repro.sweep.spec import ScenarioSpec
from repro.workloads import make_application
from repro.workloads.paper import PROCESSOR_CONFIGS


def _policy_fields(args) -> dict:
    """Map the policy flags onto registry names + params."""
    threshold = getattr(args, "threshold", 0.0)
    fields = {"sweet_spot": "simple", "sweet_spot_params": ()}
    if threshold > 0:
        fields = {"sweet_spot": "threshold",
                  "sweet_spot_params": (("threshold", threshold),)}
    fields["expansion"] = ("greedy" if getattr(args, "greedy", False)
                           else "next-larger")
    return fields


def _emit_specs(specs: list[ScenarioSpec]) -> int:
    """``--json``: print the spec(s) instead of running them."""
    payload = [s.to_dict() for s in specs]
    print(json.dumps(payload[0] if len(payload) == 1 else payload,
                     indent=2))
    return 0


def _turnaround_table(static_stats, dynamic_stats,
                      title: str = "Job turn-around time") -> str:
    """Table 4/5 comparison straight from ScenarioResult.job_stats."""
    dyn = {name: ta for name, _s, _a, ta, _r in dynamic_stats}
    rows = []
    for name, size, _arrival, ta, _rd in static_stats:
        s_ta = ta if ta is not None else float("nan")
        d_ta = dyn.get(name)
        d_ta = d_ta if d_ta is not None else float("nan")
        rows.append([name, size, s_ta, d_ta, s_ta - d_ta])
    headers = ["Job", "Initial procs", "Static (s)", "Dynamic (s)",
               "Difference (s)"]
    return format_table(headers, rows, title=title)


# ---------------------------------------------------------------------------
def run_spec(args) -> ScenarioSpec:
    return ScenarioSpec(
        kind="schedule", workload="single", app=args.app, size=args.size,
        start=parse_config(args.start), iterations=args.iterations,
        num_processors=args.procs, dynamic=not args.static,
        **_policy_fields(args))


def cmd_run(args) -> int:
    """One resizable job under the framework."""
    spec = run_spec(args)
    if args.json:
        return _emit_specs([spec])
    result = run_scenario(spec)
    name, log = result.iteration_logs[0]
    rows = []
    prev = None
    for it, config, t, redist in log:
        rows.append([it, f"{config[0]}x{config[1]}",
                     config[0] * config[1], t,
                     None if prev is None else prev - t, redist])
        prev = t
    print(format_table(
        ["iter", "grid", "procs", "time (s)", "dT (s)", "redist (s)"],
        rows, title=f"{name} under "
        f"{'static' if args.static else 'dynamic'} scheduling"))
    _name, _size, _arrival, turnaround, redist = result.job_stats[0]
    print(f"\nturn-around {turnaround:.1f} s, "
          f"redistribution {redist:.1f} s, "
          f"utilization {result.utilization:.1%}")
    return 0


def workload_specs(args) -> list[ScenarioSpec]:
    return [ScenarioSpec(kind="schedule", workload=args.which,
                         dynamic=dynamic, iterations=args.iterations,
                         label=f"{args.which}:"
                               f"{'dynamic' if dynamic else 'static'}")
            for dynamic in (False, True)]


def cmd_workload(args) -> int:
    """The paper's W1/W2 job mixes, static vs dynamic."""
    specs = workload_specs(args)
    if args.json:
        return _emit_specs(specs)
    static, dynamic = (run_scenario(s) for s in specs)
    print(render_allocation_history(dynamic.timeline_recorder()))
    print()
    print(_turnaround_table(static.job_stats, dynamic.job_stats,
                            title=f"{args.which.upper()} turn-around"))
    print(f"\nutilization: static {static.utilization:.1%}, "
          f"dynamic {dynamic.utilization:.1%}")
    return 0


def sweep_specs(args) -> list[ScenarioSpec]:
    key = (args.app.upper() if args.app != "mm" else "MM", args.size)
    configs = PROCESSOR_CONFIGS.get(key)
    if configs is None:
        app0 = make_application(args.app, args.size, iterations=1)
        configs = app0.legal_configs(args.procs)
    return [ScenarioSpec(kind="static", app=args.app, size=args.size,
                         start=config, iterations=1)
            for config in configs
            if config[0] * config[1] <= args.procs]


def cmd_sweep(args) -> int:
    """Static iteration time at every legal configuration (Fig 2a)."""
    specs = sweep_specs(args)
    if args.json:
        return _emit_specs(specs)
    sweep = sweep_scenarios(specs, max_workers=args.workers)
    rows = [[f"{r.spec.start[0]}x{r.spec.start[1]}",
             r.spec.start[0] * r.spec.start[1],
             r.metric("mean_iteration_time")]
            for r in sweep.scenarios]
    print(format_table(["grid", "procs", "iteration time (s)"], rows,
                       title=f"{args.app}({args.size}) scaling sweep"))
    for err in sweep.errors:
        print(f"  {err.name}: {err.phase}: {err.error}")
    return 0 if sweep.ok else 1


def synth_spec(args) -> ScenarioSpec:
    return ScenarioSpec(
        kind="schedule", workload="synthetic", seed=args.seed,
        num_jobs=args.jobs, mean_interarrival=args.interarrival,
        max_initial=min(16, args.procs), num_processors=args.procs,
        iterations=args.iterations, dynamic=not args.static)


def cmd_synth(args) -> int:
    """A synthetic job mix through the scheduler."""
    spec = synth_spec(args)
    if args.json:
        return _emit_specs([spec])
    result = run_scenario(spec)
    rows = [[name, size, arrival, ta]
            for name, size, arrival, ta, _rd in result.job_stats]
    print(format_table(["job", "initial", "arrival (s)",
                        "turn-around (s)"], rows,
                       title=f"synthetic mix (seed {args.seed})"))
    print(f"\nutilization {result.utilization:.1%}")
    return 0


# ---------------------------------------------------------------------------
def grid_specs(args) -> tuple[list[ScenarioSpec], dict[str, slice]]:
    """The spec list for ``grid`` plus named slices into it."""
    if args.file:
        payload = json.loads(pathlib.Path(args.file).read_text())
        if isinstance(payload, dict):
            payload = [payload]
        specs = [ScenarioSpec.from_dict(d) for d in payload]
        return specs, {"file": slice(0, len(specs))}
    specs: list[ScenarioSpec] = []
    sections: dict[str, slice] = {}
    if args.which in ("ckpt", "all"):
        part = (checkpoint_grid(CHECKPOINT_SMOKE_SIZES,
                                transitions=CHECKPOINT_SMOKE_TRANSITIONS)
                if args.smoke else checkpoint_grid())
        sections["ckpt"] = slice(len(specs), len(specs) + len(part))
        specs.extend(part)
    if args.which in ("ablation", "all"):
        part = ablation_smoke_grid() if args.smoke else ablation_grid()
        sections["ablation"] = slice(len(specs), len(specs) + len(part))
        specs.extend(part)
    return specs, sections


def cmd_grid(args) -> int:
    """Experiment grids fanned across worker processes."""
    specs, sections = grid_specs(args)
    if args.json:
        return _emit_specs(specs)
    runner = SweepRunner(args.workers, timeout=args.timeout)
    serial = None
    if args.speedup:
        serial = runner.run_serial(specs)
    sweep = runner.run(specs)

    parallel = {
        "workers": sweep.workers,
        "wall_s": sweep.wall_time,
        "scenarios": len(specs),
        "errors": len(sweep.errors),
    }
    if serial is not None:
        parallel["serial_wall_s"] = serial.wall_time
        parallel["bit_identical"] = serial.results == sweep.results
        cores = multiprocessing.cpu_count()
        if sweep.workers >= 2 and cores >= 2:
            parallel["speedup"] = serial.wall_time / sweep.wall_time
        else:
            # An honest null: a 1-core host cannot demonstrate parallel
            # speedup; the regression gate skips explicit nulls.
            parallel["speedup"] = None
            parallel["speedup_skipped"] = (
                f"needs >=2 cores and >=2 workers (host has {cores} "
                f"core(s); ran {sweep.workers} worker(s))")

    payload: dict = {"smoke": bool(args.smoke),
                     "grid": args.which if not args.file else "file",
                     "scenarios": len(specs),
                     "parallel": parallel}
    if "ckpt" in sections:
        payload["checkpoint"] = summarize_checkpoint(
            SweepResult(results=sweep.results[sections["ckpt"]]))
    if "ablation" in sections:
        payload["ablation"] = summarize_ablation(
            SweepResult(results=sweep.results[sections["ablation"]]))
    if "file" in sections:
        payload["metrics"] = sweep.metrics_dict()

    _print_grid_report(payload, sweep)
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
    return 0 if sweep.ok else 1


def _print_grid_report(payload: dict, sweep: SweepResult) -> None:
    ckpt = payload.get("checkpoint")
    if ckpt and ckpt.get("cases"):
        rows = [[c["size"], c["transition"], c["redistribution_s"],
                 c["checkpoint_s"], c["ratio"]] for c in ckpt["cases"]]
        print(format_table(
            ["size", "transition", "redist (s)", "checkpoint (s)",
             "ratio"], rows,
            title="checkpoint/restart vs redistribution"))
        lo, hi = ckpt["paper_band"]
        print(f"ratio {ckpt['ratio_min']:.2f}-{ckpt['ratio_max']:.2f}x "
              f"(geomean {ckpt['ratio_geomean']:.2f}x), paper band "
              f"{lo:g}-{hi:g}x: "
              f"{'IN BAND' if ckpt['in_band'] else 'OUT OF BAND'}")
        print()
    ablation = payload.get("ablation")
    if ablation and ablation["cells"]:
        rows = [[c["label"], c["mean_turnaround_s"],
                 f"{c['utilization']:.1%}", c["makespan_s"]]
                for c in ablation["cells"]]
        print(format_table(
            ["scenario", "mean turn-around (s)", "utilization",
             "makespan (s)"], rows, title="policy x workload ablation"))
        print()
    par = payload["parallel"]
    line = (f"{par['scenarios']} scenarios, {par['workers']} worker(s), "
            f"{par['wall_s']:.2f} s wall")
    if "speedup" in par:
        if par["speedup"] is None:
            line += f", speedup skipped: {par['speedup_skipped']}"
        else:
            line += (f", {par['serial_wall_s']:.2f} s serial -> "
                     f"{par['speedup']:.2f}x speedup, bit-identical: "
                     f"{par['bit_identical']}")
    print(line)
    for err in sweep.errors:
        print(f"  ERROR {err.name}: {err.phase}: {err.error}")


# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one resizable job")
    p_run.add_argument("app", choices=["lu", "mm", "jacobi", "fft",
                                       "masterworker"])
    p_run.add_argument("--size", type=int, default=12000)
    p_run.add_argument("--start", default="1x2",
                       help="initial grid, e.g. 1x2 or 4")
    p_run.add_argument("--procs", type=int, default=36)
    p_run.add_argument("--iterations", type=int, default=10)
    p_run.add_argument("--static", action="store_true")
    p_run.add_argument("--threshold", type=float, default=0.0,
                       help="sweet-spot improvement threshold (0 = "
                            "paper's any-improvement rule)")
    p_run.add_argument("--greedy", action="store_true",
                       help="greedy expansion instead of next-larger")
    p_run.add_argument("--json", action="store_true",
                       help="print the scenario spec instead of running")
    p_run.set_defaults(fn=cmd_run)

    p_wl = sub.add_parser("workload", help="run the paper's W1/W2")
    p_wl.add_argument("which", choices=["w1", "w2"])
    p_wl.add_argument("--iterations", type=int, default=10)
    p_wl.add_argument("--json", action="store_true",
                      help="print the scenario specs instead of running")
    p_wl.set_defaults(fn=cmd_workload)

    p_sweep = sub.add_parser("sweep", help="static scaling sweep")
    p_sweep.add_argument("app", choices=["lu", "mm", "jacobi", "fft"])
    p_sweep.add_argument("--size", type=int, default=12000)
    p_sweep.add_argument("--procs", type=int, default=50)
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="worker processes (1 = in-process)")
    p_sweep.add_argument("--json", action="store_true",
                         help="print the scenario specs instead of "
                              "running")
    p_sweep.set_defaults(fn=cmd_sweep)

    p_synth = sub.add_parser("synth", help="synthetic workload")
    p_synth.add_argument("--jobs", type=int, default=6)
    p_synth.add_argument("--seed", type=int, default=0)
    p_synth.add_argument("--procs", type=int, default=36)
    p_synth.add_argument("--iterations", type=int, default=5)
    p_synth.add_argument("--interarrival", type=float, default=200.0)
    p_synth.add_argument("--static", action="store_true")
    p_synth.add_argument("--json", action="store_true",
                         help="print the scenario spec instead of "
                              "running")
    p_synth.set_defaults(fn=cmd_synth)

    p_grid = sub.add_parser(
        "grid", help="experiment grids across worker processes")
    p_grid.add_argument("which", nargs="?", default="all",
                        choices=["ckpt", "ablation", "all"],
                        help="which built-in grid to run")
    p_grid.add_argument("--file",
                        help="JSON file of scenario spec dict(s) to run "
                             "instead of a built-in grid")
    p_grid.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: all cores)")
    p_grid.add_argument("--timeout", type=float, default=None,
                        help="per-scenario timeout in seconds")
    p_grid.add_argument("--smoke", action="store_true",
                        help="CI-sized grid")
    p_grid.add_argument("--speedup", action="store_true",
                        help="also run serially; record speedup and "
                             "bit-identity")
    p_grid.add_argument("--out",
                        help="write the summary JSON artifact here")
    p_grid.add_argument("--json", action="store_true",
                        help="print the scenario specs instead of "
                             "running")
    p_grid.set_defaults(fn=cmd_grid)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    sys.exit(main())
