"""Reduction operators for reduce/allreduce.

Operators work on real numpy arrays and scalars, and pass phantom
payloads through unchanged (a reduction does not change the buffer size,
which is all a phantom knows).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.mpi.datatypes import Phantom
from repro.mpi.errors import MPIError


class ReduceOp:
    """A named, associative binary reduction operator."""

    def __init__(self, name: str, fn: Callable[[Any, Any], Any]):
        self.name = name
        self._fn = fn

    def __call__(self, a: Any, b: Any) -> Any:
        if isinstance(a, Phantom) or isinstance(b, Phantom):
            pa = a if isinstance(a, Phantom) else b
            pb = b if isinstance(b, Phantom) else a
            if isinstance(pa, Phantom) and isinstance(pb, Phantom) \
                    and pa.nbytes != pb.nbytes:
                raise MPIError("phantom reduction with mismatched sizes")
            return Phantom(pa.nbytes)
        return self._fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ReduceOp {self.name}>"


SUM = ReduceOp("sum", lambda a, b: a + b)
PROD = ReduceOp("prod", lambda a, b: a * b)
MAX = ReduceOp("max", lambda a, b: np.maximum(a, b))
MIN = ReduceOp("min", lambda a, b: np.minimum(a, b))
