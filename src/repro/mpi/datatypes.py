"""Payload size accounting and phantom buffers.

Distributed arrays in this reproduction run in two modes (see
``repro.darray``): *materialized* payloads are real numpy arrays;
*phantom* payloads are :class:`Phantom` stand-ins that carry only a byte
count.  Either way, the network charges the same wire time — which is the
point: paper-scale experiments (a 24000x24000 double matrix is 4.6 GB)
exercise the genuine communication schedule without allocating the data.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class Phantom:
    """A buffer stand-in: known size, no contents.

    ``meta`` is free-form and travels with the phantom (used by the
    redistribution library to label which blocks a message carries).
    """

    __slots__ = ("nbytes", "meta")

    def __init__(self, nbytes: int, meta: Any = None):
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.nbytes = int(nbytes)
        self.meta = meta

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Phantom({self.nbytes})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Phantom) and other.nbytes == self.nbytes
                and other.meta == self.meta)

    def __hash__(self) -> int:
        return hash((self.nbytes, id(self.meta)))


class SizedPayload:
    """Real data carried with an explicitly declared wire size.

    Used where the logical message size is known exactly (e.g. packed
    redistribution blocks) and must not depend on Python container
    overhead — phantom and materialized runs then charge identical time.
    """

    __slots__ = ("nbytes", "data")

    def __init__(self, nbytes: int, data: Any):
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.nbytes = int(nbytes)
        self.data = data


#: Fixed per-message envelope overhead charged on the wire (headers).
HEADER_BYTES = 64


def payload_nbytes(payload: Any) -> int:
    """Wire size in bytes of ``payload``.

    Sizes mirror what an MPI implementation would put on the wire for the
    common cases; generic Python objects get a conservative flat estimate
    (they only appear in control messages, never in bulk data paths).
    """
    if payload is None:
        return 0
    if isinstance(payload, (Phantom, SizedPayload)):
        return payload.nbytes
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, np.generic):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 8
    if isinstance(payload, float):
        return 8
    if isinstance(payload, complex):
        return 16
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, (tuple, list, set, frozenset)):
        return 16 + sum(payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return 16 + sum(payload_nbytes(k) + payload_nbytes(v)
                        for k, v in payload.items())
    return 64
