"""Phantom fast path for collectives: arithmetic replay of the tree
algorithms, delivered through batched completion events.

Why
---
The collectives in :mod:`repro.mpi.comm` are pure Python generators: a
P-rank broadcast schedules O(P) transfers, each of which costs ~10 heap
events (process start, software-overhead timeout, two NIC resource
grants, wire timeout, latency timeout, mailbox put/get, request wait).
For phantom payloads nothing in that machinery carries information — the
payload is a byte count and the algorithms route it deterministically —
so the completion *times* of every rank can be computed with plain
arithmetic and delivered through one packed
:class:`~repro.simulate.engine.Batch` record per distinct completion
time.

Equivalence contract
--------------------
The fast path must produce **identical simulated clocks, values and
``CommStats``/``NetworkStats`` counters** to the generator path it
replaces (see ``docs/phantom.md`` and
``tests/test_fastcoll_equivalence.py``).  Live transfers are resolved by
the shared network-level replay (:mod:`repro.mpi.fastp2p`), which models
the full transfer cost chain — software overhead, per-NIC FIFO
serialization with the endpoint contention penalty, wire time,
propagation latency, the same-node shared-memory path, and exact
backplane flow-sharing — and persists NIC availability across calls via
``Nic.fp_free`` (``[tx_free, rx_free]``), so fast collectives, fast
point-to-point traffic and each other's flows all see one consistent
wire.  Communicators with shared nodes (``cpus_per_node > 1``) and
machines with oversubscribable backplanes therefore ride the fast path
too; only real payloads and traced networks fall back to the generator
path (trace records are produced by real transfers).

On exact-backplane networks a send's completion may not be computable at
registration (a flow's wire time depends on what is on the wire when it
starts); :class:`CollSim` therefore consumes completions through
callbacks, which the replay fires inline whenever it is provably safe
and defers through its pump otherwise.

Two delivery mechanisms:

* **Rendezvous** (:class:`LiveCall`): barrier/reduce/gather/allgather/
  alltoall.  Eligibility is rank-locally decidable (payload must be
  :class:`Phantom` — type-symmetric SPMD usage is the same contract real
  MPI puts on datatypes).  Ranks register their arrival; completions are
  computed progressively (a reduce leaf resolves at its own send, the
  root when the whole tree is in) and scheduled via ``schedule_many``.
* **Token** (:class:`FastBcastToken`): broadcast.  Only the root knows
  whether the payload is phantom, so the decision travels *in-band*: the
  root deposits a token into its tree children's mailboxes at the exact
  deposit times the generator path would produce; receivers recognize
  the token, forward it arithmetically and skip the generator sends.  A
  slow (real-payload) broadcast is indistinguishable to receivers until
  the payload arrives, exactly like real MPI.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Any, Callable, Optional

from repro.mpi.datatypes import HEADER_BYTES, payload_nbytes
from repro.mpi.fastp2p import net_replay
from repro.simulate import Environment, Event


class FastBcastToken:
    """In-band marker for a fast-path broadcast (see module docstring)."""

    __slots__ = ("value", "nbytes")

    def __init__(self, value: Any, nbytes: int):
        self.value = value
        self.nbytes = nbytes


# ---------------------------------------------------------------------------
# Transfer-cost mirror
# ---------------------------------------------------------------------------

class Wire:
    """Arithmetic mirror of ``Network.transfer`` on a detached, quiet
    network (the closed-form cost tables).

    ``engines`` maps a node index to a mutable ``[tx_free, rx_free]``
    pair of scratch state — a hypothetical replay, never live traffic;
    live sends go through the shared :class:`~repro.mpi.fastp2p.
    NetReplay` instead.  Callers must feed sends in nondecreasing start
    order — per-NIC FIFO then matches the event kernel's grant order.
    Same-node sends take the shared-memory path, so shared-node grids
    replay exactly too.
    """

    __slots__ = ("network", "nodes", "nics", "engines", "record_stats")

    def __init__(self, network, nodes: list[int], *,
                 engines: Optional[dict] = None, record_stats: bool = True):
        self.network = network
        self.nodes = nodes                    # node index per comm rank
        self.nics = [network.nodes[n].nic for n in nodes]
        self.engines = engines if engines is not None else {}
        self.record_stats = record_stats

    def send(self, src: int, dst: int, payload_nb: int, start: float) -> float:
        """Completion (= mailbox deposit) time of one ``_send_raw``."""
        net = self.network
        nbytes = payload_nb + HEADER_BYTES
        src_node = self.nodes[src]
        dst_node = self.nodes[dst]
        if src_node == dst_node:
            end = start + (net.memory_latency +
                           nbytes / net.nodes[src_node].memory_bandwidth)
            if self.record_stats:
                net.stats.messages += 1
                net.stats.bytes += nbytes
                net.stats.busy_time += end - start
            return end
        t_arrive = start + net.software_overhead
        src_eng = self.engines.setdefault(src_node, [0.0, 0.0])
        dst_eng = self.engines.setdefault(dst_node, [0.0, 0.0])
        t_tx = max(t_arrive, src_eng[0])
        t_hold = max(t_tx, dst_eng[1])
        bw = min(self.nics[src].bandwidth, self.nics[dst].bandwidth)
        wire = nbytes * (1.0 / bw + net.per_byte_overhead)
        if t_hold > t_arrive:
            wire *= 1.0 + net.contention_penalty
        end_hold = t_hold + wire
        src_eng[0] = end_hold
        dst_eng[1] = end_hold
        end = end_hold + net.latency
        if self.record_stats:
            self.nics[src].bytes_sent += nbytes
            self.nics[dst].bytes_received += nbytes
            net.stats.messages += 1
            net.stats.bytes += nbytes
            net.stats.busy_time += end - start
        return end


class DetachedSender:
    """CollSim sender over a scratch :class:`Wire` (always synchronous)."""

    __slots__ = ("wire",)

    def __init__(self, wire: Wire):
        self.wire = wire

    def send(self, src: int, dst: int, payload_nb: int, start: float,
             on_complete: Callable[[float], None]) -> None:
        on_complete(self.wire.send(src, dst, payload_nb, start))

    def defer(self, fn: Callable[[], None]) -> None:
        fn()


class LiveSender:
    """CollSim sender routing through the shared network replay.

    Completions fire inline whenever the replay can prove the wire-start
    sample safe (always, on non-oversubscribable backplanes) and are
    deferred through the replay's pump otherwise.
    """

    __slots__ = ("replay", "nodes")

    def __init__(self, replay, nodes: list[int]):
        self.replay = replay
        self.nodes = nodes

    #: Live completions may always be deferred (the replay finalizes in
    #: wire-start order): the collective must execute sends at their
    #: start times, so same-instant sends from different completions
    #: register in heap order — the order the kernel's causal chains
    #: would produce.
    paced = True

    def send(self, src: int, dst: int, payload_nb: int, start: float,
             on_complete: Callable[[float], None]) -> None:
        self.replay.send_flow(self.nodes[src], self.nodes[dst],
                              payload_nb, start, on_complete)

    def defer(self, fn: Callable[[], None]) -> None:
        """Deliver progress once the replay's current sweep is done, so
        all completions of one simulated instant arrive as one batch."""
        self.replay.after_sweep(fn)


def p2p_time(network, src_node: int, dst_node: int,
             payload_nb: int) -> float:
    """Uncontended cross-node ``_send_raw`` duration (call to deposit):
    the network's own uncontended transfer time plus the header."""
    return network.transfer_time(src_node, dst_node,
                                 payload_nb + HEADER_BYTES)


# ---------------------------------------------------------------------------
# Binomial-tree structure (mirrors Comm.bcast's masks exactly)
# ---------------------------------------------------------------------------

def bcast_parent(rank: int, root: int, size: int) -> int:
    """The rank this rank receives from in a binomial broadcast."""
    relrank = (rank - root) % size
    mask = 1
    while not relrank & mask:
        mask <<= 1
    return ((relrank - mask) + root) % size


def bcast_children(rank: int, root: int, size: int) -> deque:
    """The ranks this rank forwards to, in send order."""
    relrank = (rank - root) % size
    if relrank == 0:
        mask = 1
        while mask < size:
            mask <<= 1
    else:
        mask = 1
        while not relrank & mask:
            mask <<= 1
    mask >>= 1
    out: deque = deque()
    while mask > 0:
        if relrank + mask < size:
            out.append((relrank + mask + root) % size)
        mask >>= 1
    return out


# ---------------------------------------------------------------------------
# Progressive collective replay
# ---------------------------------------------------------------------------

class CollSim:
    """Pure-arithmetic replay of one collective call.

    Ranks are fed via :meth:`arrive`; :meth:`drain` executes pending
    sends whose start time is due.  Wire times come from ``sender``
    (detached scratch wire or the live network replay) through
    callbacks; newly resolved ``(rank, completion_time, value)`` triples
    accumulate until :meth:`take_resolved`.  When a callback fires
    outside a drain (a deferred exact-backplane completion),
    ``on_progress`` tells the owner to drain and deliver.  No simulation
    objects are touched — the caller decides how completions become
    events.
    """

    def __init__(self, kind: str, size: int, sender, *,
                 root: int = 0, op: Optional[Callable] = None,
                 stats=None):
        self.kind = kind
        self.size = size
        self.sender = sender
        self.root = root
        self.op = op
        self.stats = stats                  # CommStats to mirror, or None
        self.on_progress: Optional[Callable[[], None]] = None
        self._resolved: list = []
        self._draining = False
        #: Paced senders defer completions, so future-start sends must
        #: wait for their start time (see LiveSender.paced); synchronous
        #: senders let drain cascade everything once all ranks are in.
        self.paced = bool(getattr(sender, "paced", False))
        self.arrived = [False] * size
        self.n_arrived = 0
        self.payloads: list[Any] = [None] * size
        self.t_cur = [0.0] * size
        # Heap entries are (start, cause, seq, rank): ``cause`` is a
        # ``(hop_class, exec, sub)`` key describing the event that
        # unblocked the send.  Equal-start sends contending for one NIC
        # engine are then granted in the same order the event kernel's
        # causal chains would produce: at a tied instant the kernel
        # schedules next-send software timeouts in hop order — first
        # ranks resumed one event after a transfer end (a blocking
        # send's own mailbox put, sub 0, then a receiver's mailbox get,
        # sub 1, both in transfer-end order ``exec``), then ranks
        # resumed two events after (an isend's process-completion event,
        # hop class 1).  This matters once ranks share NICs
        # (cpus_per_node > 1): different ranks' simultaneous sends then
        # contend for one engine.
        self.heap: list[tuple[float, tuple, int, int]] = []
        self._seq = 0
        self._exec = 0                       # monotone replay-event index
        self.cause: list[tuple] = [(0, 0, 1)] * size  # unblocking event
        self.dep: dict[tuple[int, int], deque] = {}
        self.resolved_count = 0
        # Pending-send descriptors (one outstanding send per rank).
        self.pend_dst = [0] * size
        self.pend_value: list[Any] = [None] * size
        self.send_end: list[Optional[float]] = [None] * size
        self.send_exec = [0] * size          # replay index of last send
        if kind == "barrier":
            self.rounds = max(1, math.ceil(math.log2(size)))
            self.stage = [0] * size
        elif kind == "reduce":
            self.mask = [1] * size
            self.result: list[Any] = [None] * size
        elif kind == "gather":
            self.items: list[Any] = [None] * size
            self.pool: deque = deque()      # (time, value, src) FIFO
            self.got = 0
        elif kind in ("allgather", "alltoall"):
            self.lists: list[Any] = [None] * size
            self.stage = [0] * size
        elif kind == "bcast":
            self.value: Any = None
            self.children: list[Optional[deque]] = [None] * size
        else:  # pragma: no cover - internal misuse
            raise ValueError(f"unknown collective kind {kind!r}")

    # -- plumbing ----------------------------------------------------------
    def _push(self, start: float, rank: int) -> None:
        self._seq += 1
        heapq.heappush(self.heap,
                       (start, self.cause[rank], self._seq, rank))

    def _deposit(self, src: int, dst: int, when: float, value: Any,
                 exec_idx: int) -> None:
        if self.kind == "gather":
            # Root receives with ANY_SOURCE: mailbox order is deposit
            # order, which is execution order here (chronological).
            self.pool.append((when, value, src, exec_idx))
        else:
            self.dep.setdefault((src, dst), deque()).append(
                (when, value, exec_idx))
        if self.arrived[dst]:
            self._advance(dst)

    def _take(self, rank: int, src: int):
        """Pop the next deposit from ``src`` and update ``rank``'s
        unblocking cause if the receive actually waited for it."""
        q = self.dep.get((src, rank))
        if not q:
            return None
        got = q.popleft()
        if got[0] > self.t_cur[rank]:
            self.cause[rank] = (0, got[2], 1)
        return got

    def _start_send(self, rank: int, dst: int, value: Any,
                    start: float) -> None:
        self.pend_dst[rank] = dst
        self.pend_value[rank] = value
        self._push(start, rank)

    @property
    def finished(self) -> bool:
        return self.resolved_count == self.size

    def next_start(self) -> Optional[float]:
        return self.heap[0][0] if self.heap else None

    # -- driving -----------------------------------------------------------
    def arrive(self, rank: int, now: float, payload: Any) -> list:
        self.arrived[rank] = True
        self.n_arrived += 1
        self.payloads[rank] = payload
        self.t_cur[rank] = now
        self._exec += 1
        self.cause[rank] = (0, self._exec, 1)
        self._seed(rank)
        self.drain(now)
        return self.take_resolved()

    def drain(self, now: float) -> None:
        """Execute due sends; with all ranks in, execute everything."""
        self._draining = True
        try:
            force = not self.paced and self.n_arrived == self.size
            while self.heap and (force or self.heap[0][0] <= now):
                start, _cause, _seq, rank = heapq.heappop(self.heap)
                dst = self.pend_dst[rank]
                value = self.pend_value[rank]
                self.sender.send(rank, dst, payload_nbytes(value), start,
                                 self._wire_done(rank, dst, value))
        finally:
            self._draining = False

    def take_resolved(self) -> list:
        """Newly resolved ``(rank, when, value)`` triples since last call."""
        out = self._resolved
        self._resolved = []
        return out

    def _wire_done(self, rank: int, dst: int,
                   value: Any) -> Callable[[float], None]:
        """Completion continuation of the send just handed to the sender.

        One completion can unblock both endpoints at the same instant;
        the kernel's resume order then depends on the send mode.  A
        *blocking* sender resumes at its own mailbox-put fire, before
        the receiver's get (scheduled right after the put) — sender
        first.  An *isend* sender resumes only at its request process'
        completion event, scheduled during the put fire — so the
        receiver's get fires in between, receiver first.
        """
        isend_style = self.kind in ("barrier", "allgather", "alltoall")

        def done(end: float) -> None:
            if self.stats is not None:
                self.stats.sends += 1
                self.stats.bytes_sent += payload_nbytes(value)
            self._exec += 1
            self.send_exec[rank] = self._exec
            self.send_end[rank] = end
            if isend_style:
                self._deposit(rank, dst, end, value, self._exec)
                self._sent(rank, end)
            else:
                self._sent(rank, end)
                self._deposit(rank, dst, end, value, self._exec)
            if not self._draining and self.on_progress is not None:
                self.sender.defer(self.on_progress)
        return done

    def _resolve(self, rank: int, when: float, value: Any) -> None:
        # The cause key records what unblocked this rank — completions
        # sharing one simulated instant must be delivered in the order
        # the kernel's causal chains would resume the ranks (see the
        # heap-entry comment above), or the ranks enter their *next*
        # operation in a different order.
        self.resolved_count += 1
        self._resolved.append((rank, when, value, self.cause[rank]))

    # -- per-algorithm programs -------------------------------------------
    def _seed(self, rank: int) -> None:
        kind = self.kind
        if kind == "barrier":
            dst = (rank + 1) % self.size
            self._start_send(rank, dst, None, self.t_cur[rank])
        elif kind == "reduce":
            self.result[rank] = self.payloads[rank]
            self._advance(rank)
        elif kind == "gather":
            if rank == self.root:
                self.items[self.root] = self.payloads[rank]
                self._advance(rank)
            else:
                self._start_send(rank, self.root, self.payloads[rank],
                                 self.t_cur[rank])
        elif kind == "allgather":
            items = [None] * self.size
            items[rank] = self.payloads[rank]
            self.lists[rank] = items
            self._start_send(rank, (rank + 1) % self.size,
                             items[rank], self.t_cur[rank])
        elif kind == "alltoall":
            received = [None] * self.size
            received[rank] = self.payloads[rank][rank]
            self.lists[rank] = received
            self.stage[rank] = 1
            dest = (rank + 1) % self.size
            self._start_send(rank, dest, self.payloads[rank][dest],
                             self.t_cur[rank])
        elif kind == "bcast":
            if rank == self.root:
                self.value = self.payloads[rank]
                self.children[rank] = bcast_children(rank, self.root,
                                                     self.size)
                self._bcast_forward(rank, self.t_cur[rank])
            else:
                self._advance(rank)

    def _sent(self, rank: int, end: float) -> None:
        """A rank's outstanding send completed at ``end``."""
        kind = self.kind
        if kind in ("reduce", "gather"):
            # Blocking leaf/child send: the rank is done once it returns
            # (one hop — it resumes at its own mailbox put).
            self.cause[rank] = (0, self.send_exec[rank], 0)
            self._resolve(rank, end, None)
        elif kind in ("barrier", "allgather", "alltoall"):
            self._advance(rank)
        elif kind == "bcast":
            # The next (sequential, blocking) send is unblocked by this
            # one's completion (one hop: the rank resumes at its own
            # mailbox put and schedules the next transfer inline).
            self.cause[rank] = (0, self.send_exec[rank], 0)
            self.t_cur[rank] = end
            self._bcast_forward(rank, end)

    def _advance(self, rank: int) -> None:
        kind = self.kind
        size = self.size
        if kind == "barrier":
            k = self.stage[rank]
            if self.send_end[rank] is None:
                return
            src = (rank - (1 << k)) % size
            got = self._take(rank, src)
            if got is None:
                return
            if self.send_end[rank] >= max(self.t_cur[rank], got[0]):
                # isend completion: two hops (put fire, process event).
                # >=: even when the deposit lands at the same instant,
                # the rank still waits for its request's process event.
                self.cause[rank] = (1, self.send_exec[rank], 0)
            nxt = max(self.send_end[rank], got[0])
            self.t_cur[rank] = nxt
            self.stage[rank] = k + 1
            self.send_end[rank] = None
            if k + 1 == self.rounds:
                self._resolve(rank, nxt, None)
                return
            self._start_send(rank, (rank + (1 << (k + 1))) % size,
                             None, nxt)
        elif kind == "reduce":
            relrank = (rank - self.root) % size
            mask = self.mask[rank]
            while mask < size:
                if relrank & mask == 0:
                    peer = relrank | mask
                    if peer < size:
                        src = (peer + self.root) % size
                        got = self._take(rank, src)
                        if got is None:
                            self.mask[rank] = mask
                            return
                        self.t_cur[rank] = max(self.t_cur[rank], got[0])
                        self.result[rank] = self.op(got[1],
                                                    self.result[rank])
                else:
                    dest = ((relrank & ~mask) + self.root) % size
                    self.mask[rank] = mask << 1
                    self._start_send(rank, dest, self.result[rank],
                                     self.t_cur[rank])
                    return
                mask <<= 1
            self.mask[rank] = mask
            # relrank 0 (the root) is the only rank that exits the loop.
            self._resolve(rank, self.t_cur[rank], self.result[rank])
        elif kind == "gather":
            while self.got < size - 1 and self.pool:
                when, value, src, exec_idx = self.pool.popleft()
                if when > self.t_cur[rank]:
                    self.cause[rank] = (0, exec_idx, 1)
                self.t_cur[rank] = max(self.t_cur[rank], when)
                self.items[src] = value
                self.got += 1
            if self.got == size - 1:
                self._resolve(rank, self.t_cur[rank], self.items)
        elif kind == "allgather":
            s = self.stage[rank]
            if self.send_end[rank] is None:
                return
            got = self._take(rank, (rank - 1) % size)
            if got is None:
                return
            if self.send_end[rank] >= max(self.t_cur[rank], got[0]):
                # isend completion: two hops (put fire, process event).
                # >=: even when the deposit lands at the same instant,
                # the rank still waits for its request's process event.
                self.cause[rank] = (1, self.send_exec[rank], 0)
            items = self.lists[rank]
            items[(rank - s - 1) % size] = got[1]
            nxt = max(self.send_end[rank], got[0])
            self.t_cur[rank] = nxt
            self.stage[rank] = s + 1
            self.send_end[rank] = None
            if s + 1 == size - 1:
                self._resolve(rank, nxt, items)
                return
            self._start_send(rank, (rank + 1) % size,
                             items[(rank - s - 1) % size], nxt)
        elif kind == "alltoall":
            s = self.stage[rank]
            if self.send_end[rank] is None:
                return
            source = (rank - s) % size
            got = self._take(rank, source)
            if got is None:
                return
            if self.send_end[rank] >= max(self.t_cur[rank], got[0]):
                # isend completion: two hops (put fire, process event).
                # >=: even when the deposit lands at the same instant,
                # the rank still waits for its request's process event.
                self.cause[rank] = (1, self.send_exec[rank], 0)
            self.lists[rank][source] = got[1]
            nxt = max(self.send_end[rank], got[0])
            self.t_cur[rank] = nxt
            self.stage[rank] = s + 1
            self.send_end[rank] = None
            if s + 1 == size:
                self._resolve(rank, nxt, self.lists[rank])
                return
            dest = (rank + s + 1) % size
            self._start_send(rank, dest,
                             self.payloads[rank][dest], nxt)
        elif kind == "bcast":
            if self.children[rank] is not None:
                return  # already received; spurious wakeup
            src = bcast_parent(rank, self.root, size)
            got = self._take(rank, src)
            if got is None:
                return
            self.t_cur[rank] = max(self.t_cur[rank], got[0])
            self.value = got[1]
            self.children[rank] = bcast_children(rank, self.root, size)
            self._bcast_forward(rank, self.t_cur[rank])

    def _bcast_forward(self, rank: int, t: float) -> None:
        """Queue the next binomial-tree send of ``rank`` (or finish)."""
        pending = self.children[rank]
        if not pending:
            self._resolve(rank, t, self.value)
            return
        self._start_send(rank, pending.popleft(), self.value, t)


# ---------------------------------------------------------------------------
# Communicator-level state and the live rendezvous
# ---------------------------------------------------------------------------

class FastCollState:
    """Per-communicator routing record for the fast path.

    The live fast path needs no machine-shape conditions (the shared
    network replay handles NIC sharing and backplane flow-sharing
    exactly), but the *detached* closed forms gate on:

    * ``exclusive`` — every rank on its own single-CPU node, so no
      other job's traffic can touch this communicator's NICs.  The
      whole-call LU walk and ``Application.replay_iterations`` require
      it: their soundness argument is that a phantom operation's
      duration is a pure function of the configuration, which NIC
      sharing with concurrently-communicating jobs would break.
    * ``quiet`` — additionally, the communicator's worst-case
      concurrent flows stay within the backplane (the strict PR 2
      conditions); closed forms on non-quiet exclusive communicators
      drop only cross-flow backplane coupling (see docs/phantom.md).
    """

    __slots__ = ("shared", "nodes", "exclusive", "quiet")

    def __init__(self, shared, nodes: list[int], exclusive: bool,
                 quiet: bool):
        self.shared = shared
        self.nodes = nodes
        self.exclusive = exclusive
        self.quiet = quiet

    def sender(self) -> LiveSender:
        network = self.shared.world.machine.network
        return LiveSender(net_replay(network), self.nodes)

    def live_call(self, kind: str, tag: int, *, root: int = 0,
                  op: Optional[Callable] = None) -> "LiveCall":
        calls = self.shared._fast_calls
        call = calls.get(tag)
        if call is None:
            call = calls[tag] = LiveCall(self, kind, tag, root=root, op=op)
        return call


def build_state(shared) -> FastCollState:
    """Structural routing record of a communicator for the fast path.

    Always eligible: the shared network replay (repro.mpi.fastp2p)
    reproduces shared-node NIC queueing, the same-node memory path and
    backplane flow-sharing exactly, so no machine shape rules the fast
    path out anymore.  The per-call dynamic conditions (flag, tracing,
    payload types) are checked by the callers in :mod:`repro.mpi.comm`.
    """
    machine = shared.world.machine
    spec = getattr(machine, "spec", None)
    nodes = [machine.node_of(p) for p in shared.processors]
    net = machine.network
    bw_max = max(machine.nodes[n].nic.bandwidth for n in nodes)
    exclusive = (spec is not None and spec.cpus_per_node == 1
                 and len(set(nodes)) == len(nodes))
    quiet = (exclusive
             and len(nodes) * bw_max <= net.backplane_bandwidth)
    return FastCollState(shared, nodes, exclusive, quiet)


class LiveCall:
    """One in-flight rendezvous collective, bridging CollSim to events.

    Each rank's :meth:`join` registers its arrival and returns the event
    it must yield.  Completions resolve progressively; a *pump* event
    wakes the replay when a pending send's start time passes before the
    next rank arrives (so early completions — e.g. reduce leaves — fire
    at their true times, never late).
    """

    def __init__(self, state: FastCollState, kind: str, tag: int, *,
                 root: int = 0, op: Optional[Callable] = None):
        shared = state.shared
        self.shared = shared
        self.tag = tag
        self.env: Environment = shared.world.env
        self.sim = CollSim(kind, shared.size, state.sender(), root=root,
                           op=op, stats=shared.stats)
        self.sim.on_progress = self._on_progress
        self.events: dict[int, Event] = {}
        self._pump_at: Optional[float] = None
        #: One table entry shared by every LiveCall on this Environment
        #: (registered unbound, instance passed as the record argument).
        self._h_pump = self.env.handler_id(LiveCall._on_pump)

    def join(self, rank: int, payload: Any) -> Event:
        ev = Event(self.env)
        self.events[rank] = ev
        now = self.env.now
        resolved = self.sim.arrive(rank, now, payload)
        self._finish_drain(now, resolved)
        return ev

    def _on_progress(self) -> None:
        """A deferred wire completion advanced the replay off-drain."""
        now = self.env.now
        self.sim.drain(now)
        self._finish_drain(now, self.sim.take_resolved())

    def _finish_drain(self, now: float, resolved: list) -> None:
        if resolved:
            # Same-instant completions fire in cause order — the order
            # the event kernel's chains would resume the ranks.
            resolved.sort(key=lambda r: (r[1], r[3]))
            self.env.schedule_many(
                (self.events[rank], value, when)
                for rank, when, value, _cause in resolved)
        if self.sim.finished:
            self.shared._fast_calls.pop(self.tag, None)
            return
        nxt = self.sim.next_start()
        if nxt is not None and (self._pump_at is None
                                or nxt < self._pump_at):
            self._pump_at = nxt
            # One packed record — no Event object, no callback list.
            self.env.call_at(max(now, nxt), self._h_pump, self)

    def _on_pump(self) -> None:
        self._pump_at = None
        if self.sim.finished:
            return
        now = self.env.now
        self.sim.drain(now)
        self._finish_drain(now, self.sim.take_resolved())


# ---------------------------------------------------------------------------
# Detached replay (closed-form cost tables)
# ---------------------------------------------------------------------------

def detached_call(network, nodes: list[int], kind: str,
                  times: list[float], payloads: list, *,
                  root: int = 0, op: Optional[Callable] = None,
                  engines: Optional[dict] = None,
                  stats=None) -> list[float]:
    """Per-rank completion times of one collective replayed detachedly.

    ``times[i]`` is member ``i``'s arrival; the returned list holds its
    completion.  ``engines`` carries per-node NIC state across calls
    (scratch when None); ``stats`` mirrors ``CommStats`` sends/bytes and
    — through the wire — NIC and network counters, exactly as the live
    fast path would book them.  The closed-form primitive behind the
    whole-iteration LU walk.
    """
    wire = Wire(network, nodes, engines=engines,
                record_stats=stats is not None)
    sim = CollSim(kind, len(nodes), DetachedSender(wire), root=root,
                  op=op, stats=stats)
    resolved: list = []
    for rank in sorted(range(len(nodes)), key=lambda r: times[r]):
        resolved.extend(sim.arrive(rank, times[rank], payloads[rank]))
    sim.drain(float("inf"))
    resolved.extend(sim.take_resolved())
    out = list(times)
    for rank, when, _value, _cause in resolved:
        out[rank] = when
    return out


def replay_chain(network, nodes: list[int],
                 steps: list[tuple], t0: float = 0.0) -> list[float]:
    """Per-rank completion times of a chain of collectives on a quiet
    network, starting synchronized at ``t0``.

    ``steps`` is a list of ``(kind, root, payloads)`` — each collective's
    arrivals are the previous one's completions.  Uses scratch engine
    state (a hypothetical replay, not live traffic) and records no
    stats.  This is the closed-form primitive behind the LU per-panel
    cost table.
    """
    times = [t0] * len(nodes)
    engines: dict = {}
    from repro.mpi.ops import SUM
    for kind, root, payloads in steps:
        wire = Wire(network, nodes, engines=engines, record_stats=False)
        sim = CollSim(kind, len(nodes), DetachedSender(wire),
                      root=root, op=SUM)
        resolved: list = []
        order = sorted(range(len(nodes)), key=lambda r: times[r])
        for rank in order:
            resolved.extend(sim.arrive(rank, times[rank], payloads[rank]))
        sim.drain(float("inf"))
        resolved.extend(sim.take_resolved())
        for rank, when, _value, _cause in resolved:
            times[rank] = when
    return times
