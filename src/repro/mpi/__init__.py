"""Simulated MPI-2 message passing over the cluster substrate.

This package plays the role MPICH2 played in the paper: it gives SPMD
application code (written as generator coroutines) point-to-point and
collective communication, communicator management, **dynamic process
management** (``spawn`` + ``merge`` — the MPI-2 features ReSHAPE's
resizing library is built on) and persistent requests.

Everything is charged against the simulated network: a ``send`` occupies
the sender's transmit engine and the receiver's receive engine for the
wire time, so collective algorithms and redistribution schedules have the
same cost *shape* they have on real Gigabit Ethernet.

Usage sketch::

    env = Environment()
    machine = system_x(env)
    world = World(env, machine)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.ones(4), dest=1, tag=7)
        elif comm.rank == 1:
            data = yield from comm.recv(source=0, tag=7)

    world.launch(main, processors=[0, 1])
    env.run()
"""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Comm, Intercomm, World
from repro.mpi.datatypes import Phantom, payload_nbytes
from repro.mpi.errors import MPIError
from repro.mpi.ops import MAX, MIN, PROD, SUM, ReduceOp
from repro.mpi.request import PersistentRequest, Request
from repro.mpi.status import Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "Intercomm",
    "MAX",
    "MIN",
    "MPIError",
    "PROD",
    "PersistentRequest",
    "Phantom",
    "ReduceOp",
    "Request",
    "SUM",
    "Status",
    "World",
    "payload_nbytes",
]
