"""Communicators, point-to-point and collective operations, spawn/merge.

Execution model
---------------
Every MPI rank is a simulation :class:`~repro.simulate.Process` driving a
generator.  Communication calls are generators too, invoked with
``yield from``::

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(data, dest=1, tag=3)
        else:
            data = yield from comm.recv(source=0, tag=3)

Point-to-point semantics: a send performs the wire transfer (occupying
the sender's tx and receiver's rx NIC engines — contention is real) and
then deposits an envelope into the receiver's mailbox; a receive blocks
until a matching envelope exists.  Sends therefore never block on an
unposted receive (eager/buffered semantics), which is the common regime
for MPICH2-era redistribution traffic and keeps SPMD code deadlock-free.

Collectives are implemented from point-to-point with the textbook
algorithms (binomial broadcast/reduce, ring allgather, pairwise
exchange all-to-all, dissemination barrier) so their costs scale the way
real implementations do.

Dynamic process management mirrors MPI-2: ``World.spawn_multiple``
starts child ranks and returns an :class:`Intercomm`, whose ``merge()``
yields a new intracommunicator with parents first (low group) and
children after — exactly the structure ReSHAPE's resizing library relies
on.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Sequence

from repro.cluster.machine import Machine
from repro.mpi.datatypes import HEADER_BYTES, Phantom, payload_nbytes
from repro.mpi.errors import MPIError
from repro.mpi.fastcoll import (
    FastBcastToken,
    FastCollState,
    bcast_children,
    build_state as _build_fastcoll_state,
)
from repro.mpi.fastp2p import NetReplay, net_replay
from repro.mpi.ops import ReduceOp, SUM
from repro.mpi.request import PersistentRequest, Request
from repro.mpi.status import Status
from repro.simulate import Environment, Event, Process, Store

#: Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
ANY_SOURCE = -1
ANY_TAG = -1

#: Tags at or above this value are reserved for collective internals.
_COLL_TAG_BASE = 1 << 24

_comm_ids = itertools.count()


@dataclass(frozen=True)
class Envelope:
    """An in-flight message as seen by the matching logic."""

    source: int
    tag: int
    payload: Any
    nbytes: int


@dataclass
class CommStats:
    """Per-communicator traffic accounting."""

    sends: int = 0
    bytes_sent: int = 0
    collectives: int = 0


#: Sentinel: fast-path eligibility not yet computed for a communicator.
_FASTCOLL_UNSET = object()


class _CommShared:
    """State shared by all rank views of one communicator."""

    def __init__(self, world: "World", processors: Sequence[int]):
        if len(set(processors)) != len(processors):
            raise MPIError("duplicate processors in communicator")
        self.world = world
        self.processors = list(processors)
        self.mailboxes = [Store(world.env) for _ in processors]
        self.id = next(_comm_ids)
        self.stats = CommStats()
        #: Node index per rank (hot on the p2p fast path).
        self.nodes = [world.machine.node_of(p) for p in self.processors]
        #: Structural fast-path eligibility (lazy; see repro.mpi.fastcoll).
        self._fastcoll_state: Any = _FASTCOLL_UNSET
        #: In-flight fast-path rendezvous, keyed by collective tag.
        self._fast_calls: dict[int, Any] = {}

    @property
    def size(self) -> int:
        return len(self.processors)

    def fast_state(self) -> Optional[FastCollState]:
        state = self._fastcoll_state
        if state is _FASTCOLL_UNSET:
            state = self._fastcoll_state = _build_fastcoll_state(self)
        return state


class Comm:
    """A rank's view of a communicator.

    Mirrors an MPI intracommunicator: ``rank``/``size``, p2p, collectives,
    subset creation.  All communicating methods are generators.
    """

    def __init__(self, shared: _CommShared, rank: int):
        if not 0 <= rank < shared.size:
            raise MPIError(f"rank {rank} out of range for size {shared.size}")
        self._shared = shared
        self.rank = rank
        self._coll_seq = 0

    # -- basic introspection ------------------------------------------------
    @property
    def size(self) -> int:
        return self._shared.size

    @property
    def processors(self) -> list[int]:
        """Global processor ids, indexed by rank."""
        return self._shared.processors

    @property
    def world(self) -> "World":
        return self._shared.world

    @property
    def env(self) -> Environment:
        return self._shared.world.env

    @property
    def stats(self) -> CommStats:
        return self._shared.stats

    def node_of(self, rank: int) -> int:
        return self._shared.nodes[rank]

    def view(self, rank: int) -> "Comm":
        """Another rank's view of this same communicator."""
        return Comm(self._shared, rank)

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise MPIError(f"{what} rank {rank} out of range "
                           f"(size {self.size})")

    # -- point-to-point -------------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> Generator:
        """Blocking (buffered) send: returns once the wire transfer is done."""
        self._check_rank(dest, "destination")
        if tag < 0:
            raise MPIError("application tags must be non-negative")
        yield from self._send_raw(payload, dest, tag)

    def _fastp2p(self) -> Optional[NetReplay]:
        """The point-to-point fast path's network replay, or None.

        Point-to-point eligibility is sender-local: the receiver only
        ever sees a mailbox envelope, so *any* payload can ride the
        replay — the event chain it replaces carries no information
        beyond the byte count.  Declined only when tracing needs real
        transfers or the world switch is off.
        """
        world = self._shared.world
        if not world.p2p_fastpath:
            return None
        network = world.machine.network
        if network.trace:
            return None
        return net_replay(network)

    def _fast_send_event(self, replay: NetReplay, payload: Any, dest: int,
                         tag: int, nbytes: int, *,
                         start: Optional[float] = None,
                         collect: Optional[list] = None) -> Event:
        """Register one fast-path send; the returned event fires at the
        deposit time with the envelope already in the mailbox (the
        deposit callback precedes any waiter's resume — the intra-instant
        ordering the equivalence contract relies on)."""
        shared = self._shared
        nodes = shared.nodes
        ev = replay.send_event(
            nodes[self.rank], nodes[dest], nbytes,
            shared.world.env.now if start is None else start,
            collect=collect)
        store = shared.mailboxes[dest]
        envelope = Envelope(source=self.rank, tag=tag, payload=payload,
                            nbytes=nbytes)
        assert ev.callbacks is not None
        ev.callbacks.append(lambda _e: store.deposit(envelope))
        return ev

    def _send_raw(self, payload: Any, dest: int, tag: int) -> Generator:
        nbytes = payload_nbytes(payload)
        self._shared.stats.sends += 1
        self._shared.stats.bytes_sent += nbytes
        replay = self._fastp2p()
        if replay is not None:
            yield self._fast_send_event(replay, payload, dest, tag, nbytes)
            return
        src_node = self.node_of(self.rank)
        dst_node = self.node_of(dest)
        yield from self.world.machine.network.transfer(
            src_node, dst_node, nbytes + HEADER_BYTES)
        yield self._shared.mailboxes[dest].put(
            Envelope(source=self.rank, tag=tag, payload=payload,
                     nbytes=nbytes))

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; returns a :class:`Request`."""
        self._check_rank(dest, "destination")
        replay = self._fastp2p()
        if replay is not None:
            nbytes = payload_nbytes(payload)
            self._shared.stats.sends += 1
            self._shared.stats.bytes_sent += nbytes
            ev = self._fast_send_event(replay, payload, dest, tag, nbytes)
            return Request(self.env, ev)
        proc = self.env.process(self._send_raw(payload, dest, tag),
                                name=f"isend:{self.rank}->{dest}")
        return Request(self.env, proc)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive; returns the payload."""
        payload, _status = yield from self.recv_status(source, tag)
        return payload

    def recv_status(self, source: int = ANY_SOURCE,
                    tag: int = ANY_TAG) -> Generator:
        """Blocking receive; returns ``(payload, Status)``."""
        if source != ANY_SOURCE:
            self._check_rank(source, "source")

        def matches(envelope: Envelope) -> bool:
            return ((source == ANY_SOURCE or envelope.source == source) and
                    (tag == ANY_TAG or envelope.tag == tag))

        envelope = yield self._shared.mailboxes[self.rank].get(matches)
        status = Status(source=envelope.source, tag=envelope.tag,
                        nbytes=envelope.nbytes)
        return envelope.payload, status

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; ``wait()`` returns the payload."""
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        if self._fastp2p() is not None:
            # No driver process: the filtered mailbox get *is* the
            # operation; it fires with the matching envelope at deposit
            # time, exactly when the generator path's recv would return.
            def matches(envelope: Envelope) -> bool:
                return ((source == ANY_SOURCE or
                         envelope.source == source) and
                        (tag == ANY_TAG or envelope.tag == tag))

            get_ev = self._shared.mailboxes[self.rank].get(matches)
            return Request(self.env, get_ev,
                           transform=lambda envelope: envelope.payload)
        proc = self.env.process(self.recv(source, tag),
                                name=f"irecv:{self.rank}")
        return Request(self.env, proc)

    def sendrecv(self, payload: Any, dest: int, source: int,
                 send_tag: int = 0, recv_tag: int = ANY_TAG) -> Generator:
        """Simultaneous send and receive; returns the received payload.

        Both operations are posted before either is waited on, so
        head-to-head exchanges (every rank of a ring or a pair calling
        sendrecv at once) complete regardless of posting order — the
        guarantee ``MPI_Sendrecv`` provides.
        """
        send_req = self.isend(payload, dest, send_tag)
        recv_req = self.irecv(source, recv_tag)
        received = yield from recv_req.wait()
        yield from send_req.wait()
        return received

    # -- persistent requests ----------------------------------------------------
    def send_init(self, dest: int, tag: int = 0) -> PersistentRequest:
        self._check_rank(dest, "destination")
        return PersistentRequest(self, "send", dest, tag)

    def recv_init(self, source: int, tag: int = ANY_TAG) -> PersistentRequest:
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        return PersistentRequest(self, "recv", source, tag)

    # -- collective helpers -------------------------------------------------------
    def _next_coll_tag(self) -> int:
        """Fresh tag for one collective call (SPMD callers stay in sync)."""
        tag = _COLL_TAG_BASE + self._coll_seq
        self._coll_seq += 1
        self._shared.stats.collectives += 1
        return tag

    def _fastcoll(self) -> Optional[FastCollState]:
        """The phantom fast path's eligibility record, or None.

        Structural conditions (distinct nodes, backplane headroom) are
        cached on the shared state; the dynamic ones (world switch,
        network tracing) are re-checked per call so tests and ablations
        can toggle them.  Payload-type gating is the caller's job.
        """
        shared = self._shared
        world = shared.world
        if not world.collective_fastpath or world.machine.network.trace:
            return None
        return shared.fast_state()

    def _fast_bcast_forward(self, token: FastBcastToken, root: int,
                            tag: int) -> Generator:
        """Forward a fast-broadcast token to this rank's tree children.

        Deposits land in the children's mailboxes at exactly the times
        the generator path's transfers would produce; this rank's clock
        advances by the duration of its own (sequential, blocking)
        sends.  On exact-backplane networks a send's completion may be
        deferred — then this rank simply waits on it, like the blocking
        generator send it mirrors.
        """
        env = self.env
        shared = self._shared
        replay = net_replay(self.world.machine.network)
        t = env.now
        for child in bcast_children(self.rank, root, self.size):
            if t > env.now:
                # Sequential blocking sends: advance to this send's
                # start first, so the replay registers it at its true
                # issue time (grant ordering and backplane sampling vs
                # other traffic stay exact).
                yield env.sleep_until(t)
            ends: list[float] = []
            ev = self._fast_send_event(replay, token, child, tag,
                                       token.nbytes, start=t,
                                       collect=ends)
            shared.stats.sends += 1
            shared.stats.bytes_sent += token.nbytes
            if ends:
                t = ends[0]
            else:
                yield ev
                t = env.now
        if t > env.now:
            yield env.sleep_until(t)

    # -- collectives --------------------------------------------------------------
    def barrier(self) -> Generator:
        """Dissemination barrier: ceil(log2(P)) rounds of tiny messages."""
        tag = self._next_coll_tag()
        size = self.size
        if size == 1:
            return
        fast = self._fastcoll()
        if fast is not None:
            yield fast.live_call("barrier", tag).join(self.rank, None)
            return
        rounds = max(1, math.ceil(math.log2(size)))
        for k in range(rounds):
            dist = 1 << k
            dest = (self.rank + dist) % size
            source = (self.rank - dist) % size
            req = self.isend(None, dest, tag)
            yield from self.recv(source, tag)
            yield from req.wait()

    def bcast(self, payload: Any, root: int = 0) -> Generator:
        """Binomial-tree broadcast; every rank returns the payload.

        Phantom fast path: when the *root's* payload is a
        :class:`Phantom` (and the communicator qualifies), the broadcast
        ships a :class:`FastBcastToken` down the same binomial tree with
        arithmetically computed deposit times instead of simulated
        transfers.  Non-root ranks cannot know the root's payload type,
        so the decision travels in-band: they post their normal receive
        and switch paths based on what arrives — mixed fast/slow
        divergence is structurally impossible.
        """
        self._check_rank(root, "root")
        tag = self._next_coll_tag()
        size = self.size
        if size == 1:
            return payload
        relrank = (self.rank - root) % size
        if relrank == 0:
            fast = self._fastcoll()
            if fast is not None and isinstance(payload, Phantom):
                yield from self._fast_bcast_forward(
                    FastBcastToken(payload, payload.nbytes), root, tag)
                return payload
        # Receive phase: find the bit where we hang off the tree.
        mask = 1
        while mask < size:
            if relrank & mask:
                source = ((relrank - mask) + root) % size
                payload = yield from self.recv(source, tag)
                break
            mask <<= 1
        if isinstance(payload, FastBcastToken):
            token = payload
            yield from self._fast_bcast_forward(token, root, tag)
            return token.value
        # Send phase: forward to our subtree.
        mask >>= 1
        while mask > 0:
            if relrank + mask < size:
                dest = (relrank + mask + root) % size
                yield from self._send_raw(payload, dest, tag)
            mask >>= 1
        return payload

    def reduce(self, payload: Any, op: ReduceOp = SUM,
               root: int = 0) -> Generator:
        """Binomial-tree reduction; returns the result at root, None elsewhere."""
        self._check_rank(root, "root")
        tag = self._next_coll_tag()
        size = self.size
        if size > 1 and isinstance(payload, Phantom):
            fast = self._fastcoll()
            if fast is not None:
                result = yield fast.live_call(
                    "reduce", tag, root=root, op=op).join(self.rank,
                                                          payload)
                return result
        result = payload
        relrank = (self.rank - root) % size
        mask = 1
        while mask < size:
            if relrank & mask == 0:
                peer = relrank | mask
                if peer < size:
                    source = (peer + root) % size
                    other = yield from self.recv(source, tag)
                    result = op(other, result)
            else:
                dest = ((relrank & ~mask) + root) % size
                yield from self._send_raw(result, dest, tag)
                break
            mask <<= 1
        return result if self.rank == root else None

    def allreduce(self, payload: Any, op: ReduceOp = SUM) -> Generator:
        """Reduce to rank 0 then broadcast (cost shape of MPICH's default)."""
        result = yield from self.reduce(payload, op, root=0)
        result = yield from self.bcast(result, root=0)
        return result

    def gather(self, payload: Any, root: int = 0) -> Generator:
        """Gather payloads; returns the rank-ordered list at root, else None."""
        self._check_rank(root, "root")
        tag = self._next_coll_tag()
        if self.size > 1 and isinstance(payload, Phantom):
            fast = self._fastcoll()
            if fast is not None:
                result = yield fast.live_call(
                    "gather", tag, root=root).join(self.rank, payload)
                return result
        if self.rank != root:
            yield from self._send_raw(payload, root, tag)
            return None
        items: list[Any] = [None] * self.size
        items[root] = payload
        for _ in range(self.size - 1):
            got, status = yield from self.recv_status(ANY_SOURCE, tag)
            items[status.source] = got
        return items

    def allgather(self, payload: Any) -> Generator:
        """Ring allgather: P-1 steps, each shifting one block around."""
        tag = self._next_coll_tag()
        size = self.size
        if size > 1 and isinstance(payload, Phantom):
            fast = self._fastcoll()
            if fast is not None:
                result = yield fast.live_call(
                    "allgather", tag).join(self.rank, payload)
                return result
        items: list[Any] = [None] * size
        items[self.rank] = payload
        right = (self.rank + 1) % size
        left = (self.rank - 1) % size
        for step in range(size - 1):
            send_idx = (self.rank - step) % size
            recv_idx = (self.rank - step - 1) % size
            req = self.isend(items[send_idx], right, tag)
            items[recv_idx] = yield from self.recv(left, tag)
            yield from req.wait()
        return items

    def scatter(self, payloads: Optional[Sequence[Any]],
                root: int = 0) -> Generator:
        """Scatter a list from root; every rank returns its element."""
        self._check_rank(root, "root")
        tag = self._next_coll_tag()
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise MPIError("scatter needs one payload per rank at root")
            requests = []
            for dest, item in enumerate(payloads):
                if dest == root:
                    continue
                requests.append(self.isend(item, dest, tag))
            for req in requests:
                yield from req.wait()
            return payloads[root]
        item = yield from self.recv(root, tag)
        return item

    def alltoall(self, payloads: Sequence[Any]) -> Generator:
        """Personalized all-to-all via pairwise exchange.

        ``payloads[d]`` goes to rank ``d``; returns a list indexed by
        source rank.  Step ``s`` pairs rank ``r`` with ``r+s`` (send) and
        ``r-s`` (receive), so each step is a permutation — contention free
        on the simulated NICs.
        """
        if len(payloads) != self.size:
            raise MPIError("alltoall needs one payload per rank")
        tag = self._next_coll_tag()
        size = self.size
        if size > 1 and all(isinstance(p, Phantom) for p in payloads):
            fast = self._fastcoll()
            if fast is not None:
                result = yield fast.live_call(
                    "alltoall", tag).join(self.rank, list(payloads))
                return result
        received: list[Any] = [None] * size
        received[self.rank] = payloads[self.rank]
        for step in range(1, size):
            dest = (self.rank + step) % size
            source = (self.rank - step) % size
            req = self.isend(payloads[dest], dest, tag)
            received[source] = yield from self.recv(source, tag)
            yield from req.wait()
        return received

    # -- communicator management -----------------------------------------------
    def create_sub(self, ranks: Sequence[int]) -> Generator:
        """Collectively build a sub-communicator of ``ranks``.

        Every rank of the parent must call this with the same list.  The
        lowest listed rank builds the shared state and broadcasts it;
        members return their new view, non-members return None.
        """
        ranks = list(ranks)
        if not ranks:
            raise MPIError("empty sub-communicator")
        for r in ranks:
            self._check_rank(r, "member")
        if len(set(ranks)) != len(ranks):
            raise MPIError("duplicate ranks in sub-communicator")
        leader = ranks[0]
        shared: Optional[_CommShared] = None
        if self.rank == leader:
            shared = _CommShared(
                self.world, [self._shared.processors[r] for r in ranks])
        shared = yield from self.bcast(shared, root=leader)
        if self.rank in ranks:
            return Comm(shared, ranks.index(self.rank))
        return None

    def dup(self) -> Generator:
        """Collective duplicate (fresh mailboxes, same process set)."""
        new_comm = yield from self.create_sub(list(range(self.size)))
        return new_comm

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Comm id={self._shared.id} rank={self.rank}/"
                f"{self.size}>")


class Intercomm:
    """Parent-side handle linking a parent communicator to spawned children.

    Mirrors the intercommunicator returned by ``MPI_Comm_spawn_multiple``:
    ``merge()`` produces the intracommunicator with the parent group's
    ranks first (``high=False`` on the parent side) and children after.
    """

    def __init__(self, parent_shared: _CommShared, merged: _CommShared,
                 child_count: int):
        self._parent_shared = parent_shared
        self._merged = merged
        self.child_count = child_count

    def merge(self, parent_rank: int) -> Comm:
        """The merged intracommunicator view for ``parent_rank``."""
        return Comm(self._merged, parent_rank)


@dataclass
class LaunchedGroup:
    """Handle to a launched set of rank processes."""

    comm_shared: _CommShared
    processes: list[Process] = field(default_factory=list)

    def view(self, rank: int) -> Comm:
        return Comm(self.comm_shared, rank)


class World:
    """Process manager binding the MPI layer to a machine.

    Launches SPMD groups, spawns children at runtime (the MPI-2 dynamic
    process management ReSHAPE uses to grow an application) and accounts
    for process startup latency.
    """

    def __init__(self, env: Environment, machine: Machine, *,
                 launch_overhead: float = 0.1,
                 spawn_overhead: float = 0.25,
                 collective_fastpath: bool = True,
                 p2p_fastpath: Optional[bool] = None):
        self.env = env
        self.machine = machine
        #: Per-group startup cost at job launch (scheduler/job-startup path).
        self.launch_overhead = launch_overhead
        #: Cost of MPI_Comm_spawn_multiple (process creation + connect).
        self.spawn_overhead = spawn_overhead
        #: Master switch for the phantom collective fast path (see
        #: repro.mpi.fastcoll); equivalence tests and the phantom
        #: micro-benchmark's "before" leg turn it off.
        self.collective_fastpath = collective_fastpath
        self._p2p_fastpath = p2p_fastpath

    @property
    def p2p_fastpath(self) -> bool:
        """Switch for the point-to-point fast path (repro.mpi.fastp2p).

        Follows ``collective_fastpath`` (including post-construction
        toggles) until set explicitly, so one flag still means "the
        full event path, please".
        """
        if self._p2p_fastpath is None:
            return self.collective_fastpath
        return self._p2p_fastpath

    @p2p_fastpath.setter
    def p2p_fastpath(self, value: Optional[bool]) -> None:
        self._p2p_fastpath = value

    def launch(self, main: Callable[..., Generator],
               processors: Sequence[int], args: tuple = (),
               name: str = "app", delay: float = 0.0) -> LaunchedGroup:
        """Start ``main(comm, *args)`` on every rank of a new communicator."""
        if not processors:
            raise MPIError("cannot launch on zero processors")
        shared = _CommShared(self, processors)
        group = LaunchedGroup(comm_shared=shared)
        for rank in range(len(processors)):
            comm = Comm(shared, rank)
            gen = self._delayed_main(main, comm, args,
                                     delay + self.launch_overhead)
            group.processes.append(
                self.env.process(gen, name=f"{name}[{rank}]"))
        return group

    def _delayed_main(self, main: Callable[..., Generator], comm: Comm,
                      args: tuple, delay: float) -> Generator:
        if delay > 0:
            yield self.env.sleep(delay)
        result = yield from main(comm, *args)
        return result

    def spawn_multiple(self, entry: Callable[..., Generator],
                       new_processors: Sequence[int],
                       parent: Comm, args: tuple = (),
                       name: str = "spawned") -> Intercomm:
        """Spawn children and pre-build the merged communicator.

        Called by the parent group's root (collectivity is the resizing
        library's responsibility, as in the paper where the library wraps
        the MPI-2 call).  Children run ``entry(merged_comm_view, *args)``
        after ``spawn_overhead`` seconds; parents receive the
        :class:`Intercomm` and call :meth:`Intercomm.merge`.
        """
        if not new_processors:
            raise MPIError("spawn of zero processes")
        parent_shared = parent._shared
        overlap = set(parent_shared.processors) & set(new_processors)
        if overlap:
            raise MPIError(f"processors {sorted(overlap)} already in "
                           "the parent communicator")
        merged = _CommShared(
            self, parent_shared.processors + list(new_processors))
        for i in range(len(new_processors)):
            child_rank = parent_shared.size + i
            view = Comm(merged, child_rank)
            gen = self._delayed_main(entry, view, args, self.spawn_overhead)
            self.env.process(gen, name=f"{name}[{child_rank}]")
        return Intercomm(parent_shared, merged, len(new_processors))
