"""MPI-layer error type."""


class MPIError(RuntimeError):
    """Raised for communicator misuse (bad ranks, tags, payloads...)."""
