"""Phantom point-to-point fast path: a network-level transfer replay.

Why
---
After PR 2's collective short-circuit, point-to-point traffic was the
remaining event-machinery hot spot: every ``Comm._send_raw`` walks the
full ``Network.transfer`` chain — software-overhead timeout, two NIC
resource grants, wire timeout, latency timeout, mailbox put — roughly
eight heap events per message.  None of that machinery carries
information: the transfer's completion time is a deterministic function
of its size, the NIC engine availability, and the backplane load.  This
module computes it with plain arithmetic and delivers the result through
one (usually shared) completion event per distinct completion time.

:class:`NetReplay` is the *network-level* replay shared by this fast
path and the collective fast path (:mod:`repro.mpi.fastcoll`): one
instance per :class:`~repro.cluster.network.Network`, created lazily via
:func:`net_replay`.  Sharing one instance is what makes the replay exact
across traffic classes — p2p flows, collective flows and (via the bridge
in ``Network.transfer``) any remaining generator-path flows all see the
same per-NIC engine occupancy (``Nic.fp_free``) and the same backplane
interval log.

Every flow passes through a deferred resolution machine that mirrors
the kernel's resource semantics: tx engines grant in request
(``t_arrive``) order, rx engines grant in *tx-grant* order (the kernel
requests rx only after tx is held — a tx-queued flow therefore loses
the rx race to a later-issued tx-free flow), and flows finalize in
global wire-start order so the backplane sample at each wire start sees
exactly the set of flows the event kernel would count
(``Network.transfer`` samples ``_active_flows`` once, at wire start).
Finalization never runs ahead of what is provably safe — the sweep
bound ``env.now + software_overhead`` (no future registration can reach
its wire before that), further clamped by announced-but-not-yet-started
generator-path transfers — and a single pump event wakes the machine
when the next wire start lies beyond the bound.  The common case (a
send whose engines are idle, nothing else pending) finalizes inline at
registration with no queues touched.  ``exact`` marks networks whose
backplane can actually be oversubscribed (``num_nodes × max NIC
bandwidth > backplane_bandwidth``): only there do the backplane sample
and the generator-transfer bridge change anything — on headroom
networks the demand can never exceed the backplane, so the same
machinery is trivially exact.

Equivalence contract
--------------------
Identical simulated completion times, payload values and
``CommStats``/``NetworkStats``/NIC counters to the generator path (see
``docs/phantom.md`` and ``tests/test_fastp2p_equivalence.py``).  The
replay mirrors ``Network.transfer``'s arithmetic operation-for-operation
(same float expressions, same sampling instants), including the
same-node shared-memory path, so shared-node machines
(``cpus_per_node > 1``) and tight backplanes are handled exactly rather
than declined.  The only undefined corner is the event kernel's
tie-breaking of *bit-identical* simultaneous requests, which is an
artifact of event sequence numbers, not physics (documented in
``docs/phantom.md``).
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Callable, Optional

from repro.mpi.datatypes import HEADER_BYTES
from repro.simulate import Event
from repro.simulate.engine import Batch


def net_replay(network) -> "NetReplay":
    """The (lazily created) replay instance bound to ``network``."""
    replay = network._replay
    if replay is None:
        replay = network._replay = NetReplay(network)
    return replay


class _Flow:
    """One in-flight replayed transfer (exact regime)."""

    __slots__ = ("src", "dst", "nb", "bw", "start", "t_arrive", "seq",
                 "g_tx", "record_stats", "on_complete")

    def __init__(self, src: int, dst: int, nb: int, bw: float,
                 start: float, t_arrive: float, seq: int,
                 record_stats: bool, on_complete: Callable[[float], None]):
        self.src = src
        self.dst = dst
        self.nb = nb
        self.bw = bw
        self.start = start
        self.t_arrive = t_arrive
        self.seq = seq
        self.g_tx = 0.0
        self.record_stats = record_stats
        self.on_complete = on_complete


class NetReplay:
    """Arithmetic mirror of ``Network.transfer`` for one network."""

    def __init__(self, network):
        self.net = network
        self.env = network.env
        nodes = network.nodes
        bw_max = max(n.nic.bandwidth for n in nodes) if nodes else 0.0
        #: True when concurrent flows could oversubscribe the backplane
        #: (each flow holds one tx engine, so at most ``len(nodes)`` run
        #: at once); the deferred machine is only needed then.
        self.exact = len(nodes) * bw_max > network.backplane_bandwidth
        self._seq = 0
        #: One packed pump record handler for the whole replay (see
        #: _arm_pump); registered once per network replay.
        self._h_pump = network.env.register_handler(self._on_pump)
        #: Completion-event grouping: absolute completion time ->
        #: packed Batch, so simultaneous completions share one record.
        self._groups: dict[float, Batch] = {}
        self._txq: dict[int, list] = {}      # node -> flows by (t_arrive, seq)
        self._tx_busy: dict[int, bool] = {}  # tx granted, not yet finalized
        self._rxq: dict[int, list] = {}      # node -> flows by (g_tx, seq)
        self._act_fast: list[float] = []     # end_hold heap, replayed flows
        self._act_real: list[float] = []     # end_hold heap, generator flows
        self._pending_real: dict[int, float] = {}  # token -> t_arrive
        self._real_token = 0
        self._unresolved = 0
        self._pump_at: Optional[float] = None
        self._sweeping = False
        self._notify: list = []        # after-sweep callbacks
        self._notify_ids: set = set()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def send_event(self, src: int, dst: int, payload_nb: int, start: float,
                   *, collect: Optional[list] = None) -> Event:
        """Register one transfer; returns the event firing at its
        completion (mailbox-deposit) time.

        The event is guaranteed to fire exactly once, at the same
        simulated instant the generator path's transfer would return.
        When the completion time is resolvable immediately it is also
        appended to ``collect``, letting generators chain sequential
        sends without yielding.
        """
        ev = Event(self.env)

        def resolve(end: float) -> None:
            if collect is not None:
                collect.append(end)
            self._group_member(ev, end)

        self.send_flow(src, dst, payload_nb, start, resolve)
        return ev

    def send_flow(self, src: int, dst: int, payload_nb: int, start: float,
                  on_complete: Callable[[float], None], *,
                  record_stats: bool = True) -> None:
        """Register one transfer; ``on_complete(end)`` fires when its
        completion time is known (inline whenever provably safe)."""
        net = self.net
        nbytes = payload_nb + HEADER_BYTES
        if src == dst:
            # Shared-memory path: no NIC engines, no backplane, no
            # software overhead — mirrors Network.transfer exactly.
            node = net.nodes[src]
            end = start + (net.memory_latency +
                           nbytes / node.memory_bandwidth)
            if record_stats:
                stats = net.stats
                stats.messages += 1
                stats.bytes += nbytes
                stats.busy_time += end - start
            on_complete(end)
            return
        t_arrive = start + net.software_overhead
        self._seq += 1
        flow = _Flow(src, dst, nbytes,
                     min(net.nodes[src].nic.bandwidth,
                         net.nodes[dst].nic.bandwidth),
                     start, t_arrive, self._seq, record_stats, on_complete)
        if not self._unresolved:
            # Quick path (the common case: nothing else in flight) — the
            # flow is the global minimum candidate by construction, so
            # its wire start is final as soon as it is within the bound.
            src_nic = net.nodes[src].nic
            dst_nic = net.nodes[dst].nic
            t_hold = max(t_arrive, src_nic.fp_free[0], dst_nic.fp_free[1])
            if t_hold <= self._sweep_bound():
                self._finalize_exact(flow, t_hold)
                return
        insort(self._txq.setdefault(src, []),
               (t_arrive, flow.seq, flow))
        self._unresolved += 1
        if not self._sweeping:
            self._sweep()

    def _mirror_stats(self, src_nic, dst_nic, nbytes: int,
                      busy: float) -> None:
        src_nic.bytes_sent += nbytes
        dst_nic.bytes_received += nbytes
        stats = self.net.stats
        stats.messages += 1
        stats.bytes += nbytes
        stats.busy_time += busy

    # ------------------------------------------------------------------
    # Exact regime: the deferred resolution machine
    # ------------------------------------------------------------------
    def _sweep_bound(self) -> float:
        """Latest wire-start instant that is safe to finalize now.

        Any *future* registration reaches its wire no earlier than
        ``now + software_overhead``; an already-announced generator-path
        transfer no earlier than ``max(its t_arrive, now)``.
        """
        now = self.env.now
        bound = now + self.net.software_overhead
        for t in self._pending_real.values():
            t_eff = t if t > now else now
            if t_eff < bound:
                bound = t_eff
        return bound

    def _grant_tx(self) -> None:
        """Grant tx engines wherever the head flow's grant is computable
        (grant times are bookkeeping — rx queue position — so granting
        ahead of the clock is safe)."""
        txq = self._txq
        tx_busy = self._tx_busy
        nodes = self.net.nodes
        for node in [n for n in txq if n not in tx_busy]:
            queue = txq[node]
            _t_arrive, seq, flow = queue.pop(0)
            if not queue:
                del txq[node]
            flow.g_tx = max(flow.t_arrive, nodes[node].nic.fp_free[0])
            tx_busy[node] = True
            insort(self._rxq.setdefault(flow.dst, []),
                   (flow.g_tx, seq, flow))

    def _sweep(self, limit: Optional[float] = None) -> None:
        """Finalize every flow whose wire start is provably safe (and,
        with ``limit``, no later than it), in global wire-start order;
        arm a pump for the next one otherwise."""
        self._sweeping = True
        nodes = self.net.nodes
        rxq = self._rxq
        try:
            while self._unresolved:
                if self._txq:
                    self._grant_tx()
                best_key = None
                best_flow = None
                for node, queue in rxq.items():
                    g_tx, seq, head = queue[0]
                    t_hold = max(g_tx, nodes[node].nic.fp_free[1])
                    key = (t_hold, seq)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_flow = head
                if best_flow is None:
                    break  # everything left is waiting for a tx grant
                t_hold = best_key[0]
                bound = self._sweep_bound()
                if limit is not None and limit < bound:
                    bound = limit
                if t_hold > bound:
                    now = self.env.now
                    if limit is None and \
                            t_hold > now + self.net.software_overhead:
                        self._arm_pump(t_hold)
                    # else: clamped by an announced generator-path
                    # transfer or an explicit limit; the transfer's wire
                    # start (or the follow-up full sweep) resumes us.
                    break
                dst = best_flow.dst
                queue = rxq[dst]
                del queue[0]
                if not queue:
                    del rxq[dst]
                del self._tx_busy[best_flow.src]
                self._unresolved -= 1
                self._finalize_exact(best_flow, t_hold)
        finally:
            self._sweeping = False
        # Deliver batched progress outside the sweep, so one sweep's
        # worth of completions reaches each consumer as a single batch
        # (resolution order within a simulated instant matters) and
        # follow-up registrations can trigger fresh sweeps.
        while self._notify:
            fn = self._notify.pop(0)
            self._notify_ids.discard(id(fn))
            fn()

    def _finalize_exact(self, flow: _Flow, t_hold: float) -> None:
        """Sample the wire at ``t_hold`` and complete ``flow`` (queue
        bookkeeping, if any, is the caller's job)."""
        net = self.net
        act_fast = self._act_fast
        act_real = self._act_real
        while act_fast and act_fast[0] <= t_hold:
            heapq.heappop(act_fast)
        while act_real and act_real[0] <= t_hold:
            heapq.heappop(act_real)
        wire = flow.nb * (1.0 / flow.bw + net.per_byte_overhead)
        if t_hold > flow.t_arrive:
            wire *= 1.0 + net.contention_penalty
        # Backplane sample at wire start, exactly as Network.transfer:
        # the flow counts itself on top of everything already on the wire.
        demand = (len(act_fast) + len(act_real) + 1) * flow.bw
        if demand > net.backplane_bandwidth:
            wire *= demand / net.backplane_bandwidth
        end_hold = t_hold + wire
        heapq.heappush(act_fast, end_hold)
        src_nic = net.nodes[flow.src].nic
        dst_nic = net.nodes[flow.dst].nic
        src_nic.fp_free[0] = end_hold
        dst_nic.fp_free[1] = end_hold
        end = end_hold + net.latency
        if flow.record_stats:
            self._mirror_stats(src_nic, dst_nic, flow.nb, end - flow.start)
        flow.on_complete(end)

    def after_sweep(self, fn) -> None:
        """Run ``fn`` when the current sweep finishes (deduplicated);
        immediately when no sweep is active."""
        if not self._sweeping:
            fn()
            return
        if id(fn) not in self._notify_ids:
            self._notify_ids.add(id(fn))
            self._notify.append(fn)

    def _arm_pump(self, when: float) -> None:
        if self._pump_at is not None and self._pump_at <= when:
            return
        self._pump_at = when
        # One packed record — no Event object, no callback list.
        self.env.call_at(when, self._h_pump, None)

    def _on_pump(self, _arg) -> None:
        self._pump_at = None
        if self._unresolved and not self._sweeping:
            self._sweep()

    # ------------------------------------------------------------------
    # Bridge for generator-path transfers (Network.transfer)
    # ------------------------------------------------------------------
    def real_announce(self) -> int:
        """A generator-path transfer entered the network; until its wire
        start, replayed finalization must not run past it."""
        self._real_token += 1
        self._pending_real[self._real_token] = (
            self.env.now + self.net.software_overhead)
        return self._real_token

    def real_started(self, token: int) -> int:
        """The announced transfer reached its wire start (``env.now``);
        returns the number of replayed flows active on the wire now.

        The catch-up sweep is clamped to ``now``: replayed flows with
        later wire starts must sample *after* this transfer's interval
        is recorded (``real_interval``), and must not be counted here —
        they are not on the wire yet.
        """
        self._pending_real.pop(token, None)
        if self._unresolved and not self._sweeping:
            self._sweep(limit=self.env.now)
        now = self.env.now
        act = self._act_fast
        while act and act[0] <= now:
            heapq.heappop(act)
        return len(act)

    def real_interval(self, end_hold: float) -> None:
        """Record the announced transfer's wire occupancy, then resume
        the replayed flows that were held behind it — their samples now
        see this transfer."""
        heapq.heappush(self._act_real, end_hold)
        if self._unresolved and not self._sweeping:
            self._sweep()

    def real_abandoned(self, token: int) -> None:
        """The announced transfer died before its wire start
        (interrupt/failure injection) — unclamp the sweep."""
        if self._pending_real.pop(token, None) is not None:
            if self._unresolved and not self._sweeping:
                self._sweep()

    # ------------------------------------------------------------------
    # Completion-event grouping
    # ------------------------------------------------------------------
    def _group_member(self, ev: Event, when: float) -> None:
        batch = self._groups.get(when)
        if batch is None or batch.fired:
            if len(self._groups) > 64:
                self._groups = {t: b for t, b in self._groups.items()
                                if not b.fired}
            batch = self.env.batch_at(when)
            self._groups[when] = batch
        batch.add(ev)
