"""Nonblocking and persistent request handles."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.mpi.errors import MPIError
from repro.simulate import Environment, Event, Process


class Request:
    """Handle to an in-flight nonblocking operation.

    Wraps either the simulation process performing the transfer or — on
    the phantom point-to-point fast path, where no process is spawned —
    the completion event itself.  ``wait`` is a generator
    (``yield from req.wait()``); ``test`` polls.  ``transform`` maps the
    completion value to the caller-visible result (the fast ``irecv``
    completes with the matched envelope and returns its payload).
    """

    def __init__(self, env: Environment, op: Event,
                 transform: Optional[Any] = None):
        self.env = env
        self._op = op
        self._transform = transform

    def wait(self) -> Generator:
        """Block until the operation completes; returns its value."""
        value = yield self._op
        if self._transform is not None:
            value = self._transform(value)
        return value

    def test(self) -> tuple[bool, Optional[Any]]:
        """Non-blocking completion check: ``(done, value_or_None)``."""
        if not self.done:
            return False, None
        value = self._op.value
        if self._transform is not None:
            value = self._transform(value)
        return True, value

    @property
    def done(self) -> bool:
        op = self._op
        if isinstance(op, Process):
            return not op.is_alive
        return op.processed


def wait_all(requests: list[Request]) -> Generator:
    """Wait for every request; returns their values in order."""
    values = []
    for req in requests:
        value = yield from req.wait()
        values.append(value)
    return values


class PersistentRequest:
    """A reusable send or receive, mirroring ``MPI_Send_init`` and friends.

    The paper's redistribution library transfers data "using MPI's
    persistent communication functions"; in a simulation the saved cost is
    per-call setup, modeled here as zero, so persistence is about API
    fidelity: build once, ``start`` each communication step, ``wait``.
    """

    def __init__(self, comm, kind: str, peer: int, tag: int):
        if kind not in ("send", "recv"):
            raise MPIError(f"unknown persistent request kind {kind!r}")
        self.comm = comm
        self.kind = kind
        self.peer = peer
        self.tag = tag
        self._active: Optional[Request] = None
        self._payload: Any = None

    def start(self, payload: Any = None) -> "PersistentRequest":
        """Begin one communication using this request's fixed envelope."""
        if self._active is not None and not self._active.done:
            raise MPIError("persistent request restarted while active")
        if self.kind == "send":
            self._active = self.comm.isend(payload, dest=self.peer,
                                           tag=self.tag)
        else:
            self._active = self.comm.irecv(source=self.peer, tag=self.tag)
        return self

    def wait(self) -> Generator:
        if self._active is None:
            raise MPIError("wait() before start()")
        value = yield from self._active.wait()
        self._active = None
        return value
