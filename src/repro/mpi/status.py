"""Receive status, mirroring ``MPI_Status``."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Status:
    """Metadata of a received message."""

    source: int
    tag: int
    nbytes: int
