"""Table and ASCII-chart renderers for experiment output.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and readable in a
terminal (the closest a text harness gets to regenerating a figure).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.events import TimelineRecorder
from repro.core.job import Job


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(["" if v is None else
                      (f"{v:.2f}" if isinstance(v, float) else str(v))
                      for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def turnaround_table(static_jobs: dict[str, Job],
                     dynamic_jobs: dict[str, Job],
                     title: str = "Job turn-around time") -> str:
    """Render a Table 4/5-shaped comparison."""
    rows = []
    for name in static_jobs:
        s = static_jobs[name]
        d = dynamic_jobs.get(name)
        s_ta = s.turnaround or float("nan")
        d_ta = (d.turnaround if d and d.turnaround is not None
                else float("nan"))
        rows.append([name, s.requested_size, s_ta, d_ta, s_ta - d_ta])
    headers = ["Job", "Initial procs", "Static (s)", "Dynamic (s)",
               "Difference (s)"]
    return format_table(headers, rows, title=title)


def ascii_step_chart(series: dict[str, list[tuple[float, float]]], *,
                     width: int = 72, height: int = 16,
                     xlabel: str = "time (s)",
                     ylabel: str = "procs",
                     t_max: Optional[float] = None) -> str:
    """Plot step-function series as an ASCII chart (one glyph per series)."""
    if not series:
        return "(empty chart)"
    glyphs = "*o+x#@%&"
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        return "(empty chart)"
    tmax = t_max or max(t for t, _ in all_points) or 1.0
    vmax = max(v for _, v in all_points) or 1.0
    grid = [[" "] * width for _ in range(height)]

    def value_at(pts, t):
        current = 0.0
        for pt, pv in pts:
            if pt <= t:
                current = pv
            else:
                break
        return current

    for idx, (name, pts) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        pts = sorted(pts)
        for col in range(width):
            t = tmax * col / (width - 1)
            v = value_at(pts, t)
            if v <= 0:
                continue
            row = height - 1 - int((height - 1) * min(v, vmax) / vmax)
            grid[row][col] = glyph
    lines = [f"{ylabel} (max {vmax:g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width + f"> {xlabel} (max {tmax:.0f})")
    legend = "  ".join(f"{glyphs[i % len(glyphs)]}={name}"
                       for i, name in enumerate(series))
    lines.append(legend)
    return "\n".join(lines)


def render_allocation_history(timeline: TimelineRecorder, *,
                              width: int = 72, height: int = 14) -> str:
    """Figure 4(a)/5(a): per-job processor allocation over time."""
    series = {}
    for tl in timeline.job_timelines().values():
        series[tl.job_name] = [(t, float(n)) for t, n in tl.points]
    return ascii_step_chart(series, width=width, height=height)


def render_busy_processors(static_tl: TimelineRecorder,
                           dynamic_tl: TimelineRecorder, *,
                           width: int = 72, height: int = 14) -> str:
    """Figure 4(b)/5(b): total busy processors, static vs dynamic."""
    series = {
        "static": [(t, float(n)) for t, n in static_tl.busy_processors()],
        "dynamic": [(t, float(n)) for t, n in dynamic_tl.busy_processors()],
    }
    return ascii_step_chart(series, width=width, height=height)
