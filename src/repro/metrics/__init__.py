"""Result accounting and rendering for the reproduction experiments."""

from repro.metrics.report import (
    ascii_step_chart,
    format_table,
    render_allocation_history,
    render_busy_processors,
    turnaround_table,
)

__all__ = [
    "ascii_step_chart",
    "format_table",
    "render_allocation_history",
    "render_busy_processors",
    "turnaround_table",
]
