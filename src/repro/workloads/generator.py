"""Synthetic workload generation for throughput studies beyond W1/W2.

The paper evaluates two hand-built job mixes; scheduling research needs
more.  :class:`WorkloadGenerator` draws job mixes with configurable
arrival processes and size/kind distributions, deterministically from a
seed, so larger utilization/throughput sweeps are reproducible.

Arrival models (``arrival_model``), all mean-preserving — every model
keeps the long-run arrival rate at ``1 / mean_interarrival`` so sweeps
over models compare like for like at fixed offered load:

``"poisson"``
    Exponential interarrivals (the memoryless baseline).
``"lognormal"``
    Heavy-tailed lognormal gaps, ``mu = ln(mean) - sigma^2 / 2`` so the
    mean is exact; ``lognormal_sigma`` controls tail weight.
``"pareto"``
    Pareto gaps with shape ``pareto_alpha`` (> 1) and scale
    ``xm = mean * (alpha - 1) / alpha``; small alpha gives the bursty
    long-silence / packed-cluster pattern real traces show.
``"diurnal"``
    Non-homogeneous Poisson with a sinusoidal day/night rate,
    ``rate(t) = (1 + A sin(2 pi t / period)) / mean``, sampled by
    Lewis-Shedler thinning at the peak rate; ``diurnal_amplitude`` is
    ``A`` in [0, 1] and ``diurnal_period`` the cycle length in seconds.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cluster.topology import config_size
from repro.workloads.paper import JobSpec

#: (kind, problem sizes, starting configs) the generator samples from.
_CATALOG: list[tuple[str, list[int], list[tuple[int, int]]]] = [
    ("lu", [8000, 12000, 14000, 16000],
     [(1, 2), (2, 2), (2, 4)]),
    ("mm", [8000, 12000, 14000],
     [(2, 2), (2, 4)]),
    ("jacobi", [8000],
     [(4, 1), (8, 1)]),
    ("fft", [4096, 8192],
     [(2, 1), (4, 1)]),
    ("masterworker", [20000],
     [(1, 2), (1, 4)]),
]


@dataclass
class WorkloadGenerator:
    """Reproducible random job mixes.

    ``mean_interarrival`` is the Poisson arrival spacing in seconds;
    ``max_initial`` caps the starting allocation so generated jobs fit
    the experiment's processor budget.
    """

    seed: int = 0
    mean_interarrival: float = 300.0
    max_initial: int = 16
    kinds: Optional[Sequence[str]] = None
    #: Interarrival process: ``"poisson"`` (default), ``"lognormal"``,
    #: ``"pareto"`` or ``"diurnal"`` — see the module docstring.
    arrival_model: str = "poisson"
    lognormal_sigma: float = 1.5
    pareto_alpha: float = 1.5
    diurnal_amplitude: float = 0.5
    diurnal_period: float = 86400.0

    def _gap(self, rng: random.Random, clock: float, mean: float) -> float:
        """One interarrival gap from ``arrival_model``, mean-preserving."""
        model = self.arrival_model
        if model == "poisson":
            return rng.expovariate(1.0 / mean)
        if model == "lognormal":
            sigma = self.lognormal_sigma
            if sigma <= 0:
                raise ValueError("lognormal_sigma must be positive")
            mu = math.log(mean) - 0.5 * sigma * sigma
            return rng.lognormvariate(mu, sigma)
        if model == "pareto":
            alpha = self.pareto_alpha
            if alpha <= 1.0:
                raise ValueError("pareto_alpha must exceed 1 (the mean "
                                 "is infinite otherwise)")
            xm = mean * (alpha - 1.0) / alpha
            return xm * rng.paretovariate(alpha)
        if model == "diurnal":
            amp = self.diurnal_amplitude
            if not 0.0 <= amp <= 1.0:
                raise ValueError("diurnal_amplitude must be in [0, 1]")
            # Lewis-Shedler thinning: candidates at the peak rate,
            # accepted with probability rate(t) / peak.
            peak = (1.0 + amp) / mean
            omega = 2.0 * math.pi / self.diurnal_period
            t = clock
            while True:
                t += rng.expovariate(peak)
                rate = (1.0 + amp * math.sin(omega * t)) / mean
                if rng.random() * peak <= rate:
                    return t - clock
        raise ValueError(f"unknown arrival model {model!r}")

    def generate(self, count: int) -> list[JobSpec]:
        if count < 1:
            raise ValueError("count must be positive")
        rng = random.Random(self.seed)
        allowed = set(self.kinds) if self.kinds else None
        catalog = [entry for entry in _CATALOG
                   if allowed is None or entry[0] in allowed]
        if not catalog:
            raise ValueError("no catalog entries match the kind filter")
        specs: list[JobSpec] = []
        clock = 0.0
        for i in range(count):
            kind, sizes, configs = rng.choice(catalog)
            size = rng.choice(sizes)
            fitting = [c for c in configs
                       if config_size(c) <= self.max_initial]
            config = rng.choice(fitting or configs[:1])
            specs.append(JobSpec(kind=kind, problem_size=size,
                                 initial_config=config, arrival=clock,
                                 label=f"{kind}-{i}"))
            clock += self._gap(rng, clock, self.mean_interarrival)
        return specs

    def generate_scale(self, count: int, *,
                       max_size: Optional[int] = None,
                       mean_serial_ms: float = 2000.0,
                       burst: float = 0.05) -> list[JobSpec]:
        """A ``count``-job synthetic mix for scheduler scale studies.

        Every job is a :class:`~repro.apps.synthetic.SyntheticApplication`
        (a handful of simulation events each), so 10k+ of them stress
        the scheduler wake path and the event kernel instead of the MPI
        layer.  Sizes draw uniformly from ``1..max_size`` processors
        (default: the generator's ``max_initial``), serial work draws
        exponentially around ``mean_serial_ms`` milliseconds, and
        arrivals are a near-burst stream (``burst`` seconds mean
        spacing, drawn from ``arrival_model``) — the machine saturates
        early, so most of the population is *queued* most of the time,
        which is exactly the regime the size-indexed queue and calendar
        kernel exist for.

        Deterministic in ``seed``: two calls build identical specs, and
        two runs of the resulting workload must produce identical
        timelines (guarded by ``tests/test_scheduler_indexed.py``).
        """
        if count < 1:
            raise ValueError("count must be positive")
        rng = random.Random(self.seed ^ 0x5CA1E)
        top = max(1, max_size if max_size is not None else self.max_initial)
        specs: list[JobSpec] = []
        clock = 0.0
        for i in range(count):
            size = rng.randint(1, top)
            serial_ms = max(1, int(rng.expovariate(1.0 / mean_serial_ms)))
            specs.append(JobSpec(kind="synthetic", problem_size=serial_ms,
                                 initial_config=(1, size), arrival=clock,
                                 label=f"syn-{i}"))
            clock += self._gap(rng, clock, burst)
        return specs

    def submit_all(self, framework, specs: Sequence[JobSpec], *,
                   iterations: int = 5) -> dict:
        """Submit generated specs; returns {label: Job}."""
        jobs = {}
        for spec in specs:
            app = spec.build(iterations=iterations)
            jobs[spec.name] = framework.submit(
                app, spec.initial_config, arrival=spec.arrival,
                name=spec.name)
        return jobs
