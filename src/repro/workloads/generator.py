"""Synthetic workload generation for throughput studies beyond W1/W2.

The paper evaluates two hand-built job mixes; scheduling research needs
more.  :class:`WorkloadGenerator` draws job mixes with Poisson arrivals
and size/kind distributions, deterministically from a seed, so larger
utilization/throughput sweeps are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.topology import config_size
from repro.workloads.paper import JobSpec, make_application

#: (kind, problem sizes, starting configs) the generator samples from.
_CATALOG: list[tuple[str, list[int], list[tuple[int, int]]]] = [
    ("lu", [8000, 12000, 14000, 16000],
     [(1, 2), (2, 2), (2, 4)]),
    ("mm", [8000, 12000, 14000],
     [(2, 2), (2, 4)]),
    ("jacobi", [8000],
     [(4, 1), (8, 1)]),
    ("fft", [4096, 8192],
     [(2, 1), (4, 1)]),
    ("masterworker", [20000],
     [(1, 2), (1, 4)]),
]


@dataclass
class WorkloadGenerator:
    """Reproducible random job mixes.

    ``mean_interarrival`` is the Poisson arrival spacing in seconds;
    ``max_initial`` caps the starting allocation so generated jobs fit
    the experiment's processor budget.
    """

    seed: int = 0
    mean_interarrival: float = 300.0
    max_initial: int = 16
    kinds: Optional[Sequence[str]] = None

    def generate(self, count: int) -> list[JobSpec]:
        if count < 1:
            raise ValueError("count must be positive")
        rng = random.Random(self.seed)
        allowed = set(self.kinds) if self.kinds else None
        catalog = [entry for entry in _CATALOG
                   if allowed is None or entry[0] in allowed]
        if not catalog:
            raise ValueError("no catalog entries match the kind filter")
        specs: list[JobSpec] = []
        clock = 0.0
        for i in range(count):
            kind, sizes, configs = rng.choice(catalog)
            size = rng.choice(sizes)
            fitting = [c for c in configs
                       if config_size(c) <= self.max_initial]
            config = rng.choice(fitting or configs[:1])
            specs.append(JobSpec(kind=kind, problem_size=size,
                                 initial_config=config, arrival=clock,
                                 label=f"{kind}-{i}"))
            clock += rng.expovariate(1.0 / self.mean_interarrival)
        return specs

    def submit_all(self, framework, specs: Sequence[JobSpec], *,
                   iterations: int = 5) -> dict:
        """Submit generated specs; returns {label: Job}."""
        jobs = {}
        for spec in specs:
            app = spec.build(iterations=iterations)
            jobs[spec.name] = framework.submit(
                app, spec.initial_config, arrival=spec.arrival,
                name=spec.name)
        return jobs
