"""The paper's workload tables (Tables 1-3) as executable configuration.

Problem sizes, topologies and arrival times come straight from §4; the
per-application *work calibration* constants (inner sweeps, FFTs per
iteration, master-worker flop totals) are chosen so that static
iteration times land in the range the paper reports in Tables 4/5 —
see EXPERIMENTS.md for the calibration table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps import (
    Application,
    FFT2DApplication,
    JacobiApplication,
    LUApplication,
    MasterWorkerApplication,
    MatMulApplication,
    SyntheticApplication,
)

#: Table 1 — workload application descriptions.
APPLICATIONS = {
    "LU": "LU factorization (PDGETRF role)",
    "MM": "Matrix-matrix multiplication (PDGEMM role)",
    "Master-worker": "Synthetic master-worker, 20000 fixed-time units "
                     "per iteration",
    "Jacobi": "Iterative Jacobi solver (dense matrix)",
    "FFT": "2D fast Fourier transform for image transformation",
}

#: Table 2 — processor configurations per problem size, verbatim.
PROCESSOR_CONFIGS: dict[tuple[str, int], list[tuple[int, int]]] = {
    ("LU", 8000): [(1, 2), (2, 2), (2, 4), (4, 4), (4, 5), (5, 5), (5, 8)],
    ("LU", 12000): [(1, 2), (2, 2), (2, 3), (3, 3), (3, 4), (4, 4),
                    (4, 5), (5, 5), (5, 6), (6, 6), (6, 8)],
    ("LU", 14000): [(2, 2), (2, 4), (4, 4), (4, 5), (5, 5), (5, 7),
                    (7, 7)],
    ("LU", 16000): [(2, 2), (2, 4), (4, 4), (4, 5), (5, 5), (5, 8)],
    ("LU", 20000): [(2, 2), (2, 4), (4, 4), (4, 5), (5, 5), (5, 8)],
    ("LU", 21000): [(2, 2), (2, 3), (3, 3), (3, 4), (4, 5), (5, 5),
                    (5, 6), (6, 6), (6, 7), (7, 7)],
    ("LU", 24000): [(2, 4), (3, 4), (4, 4), (4, 5), (5, 5), (5, 6),
                    (6, 6), (6, 8)],
    ("Jacobi", 8000): [(4, 1), (8, 1), (10, 1), (16, 1), (20, 1),
                       (32, 1), (40, 1), (50, 1)],
    ("FFT", 8192): [(2, 1), (4, 1), (8, 1), (16, 1), (32, 1)],
    ("Master-worker", 20000): [(1, p) for p in
                               (4, 6, 8, 10, 12, 14, 16, 18, 20, 22)],
}
# MM uses the same grids as LU at equal problem size.
for (_app, _n), _cfgs in list(PROCESSOR_CONFIGS.items()):
    if _app == "LU":
        PROCESSOR_CONFIGS[("MM", _n)] = list(_cfgs)


# -- calibration constants (see EXPERIMENTS.md) ---------------------------
#: Jacobi inner sweeps per outer iteration: static 4-processor iteration
#: time about 330 s, matching Table 4's Jacobi(8000) at 3266 s / 10.
JACOBI_SWEEPS = 40000
#: FFT transforms per outer iteration: static 4-processor iteration time
#: about 84 s, matching Table 4's FFT(8192) at 840 s / 10.
FFT_BATCH = 10
#: Master-worker total flops: 14.7 s per iteration with one worker,
#: matching Table 4's Master-worker at 147 s on its initial 2 processors.
MASTERWORKER_FLOPS = 6.5e11


def _table2_configs(label: str, problem_size: int):
    """Table 2 row for this app/size, or None to fall back to rules."""
    return PROCESSOR_CONFIGS.get((label, problem_size))


def make_application(kind: str, problem_size: int, *,
                     iterations: int = 10,
                     materialized: bool = False) -> Application:
    """Build a paper application with the workload calibrations applied.

    When Table 2 lists configurations for this application and problem
    size, the instance is pinned to exactly those (the paper's setup);
    otherwise legal configurations derive from divisibility rules.
    """
    kind = kind.strip().lower()
    if kind == "lu":
        return LUApplication(problem_size, iterations=iterations,
                             materialized=materialized,
                             allowed_configs=_table2_configs(
                                 "LU", problem_size))
    if kind in ("mm", "matmul"):
        return MatMulApplication(problem_size, iterations=iterations,
                                 materialized=materialized,
                                 allowed_configs=_table2_configs(
                                     "MM", problem_size))
    if kind == "jacobi":
        app = JacobiApplication(problem_size, iterations=iterations,
                                materialized=materialized,
                                allowed_configs=_table2_configs(
                                    "Jacobi", problem_size))
        app.inner_sweeps = JACOBI_SWEEPS
        return app
    if kind in ("fft", "fft2d"):
        app = FFT2DApplication(problem_size, iterations=iterations,
                               materialized=materialized,
                               allowed_configs=_table2_configs(
                                   "FFT", problem_size))
        app.ffts_per_iteration = FFT_BATCH
        return app
    if kind in ("masterworker", "master-worker", "mw"):
        app = MasterWorkerApplication(
            int(MASTERWORKER_FLOPS), iterations=iterations,
            allowed_configs=[(1, 2)] + _table2_configs(
                "Master-worker", 20000))
        return app
    if kind == "synthetic":
        # Scheduler scale studies: ``problem_size`` is milli-seconds of
        # serial work per iteration (see apps/synthetic.py).
        return SyntheticApplication(problem_size, iterations=iterations)
    raise ValueError(f"unknown application kind {kind!r}")


@dataclass(frozen=True)
class JobSpec:
    """One row of a workload table: what to run, when, and how big.

    A frozen, picklable value object: stable ``__eq__``/``__repr__``
    plus a JSON-safe dict round-trip, so workload grids can be written
    as literal dicts and shipped to sweep worker processes.
    """

    kind: str
    problem_size: int
    initial_config: tuple[int, int]
    arrival: float
    label: Optional[str] = None

    def __post_init__(self):
        # Tolerate JSON-decoded lists so from_dict round-trips exactly.
        if not isinstance(self.initial_config, tuple):
            object.__setattr__(self, "initial_config",
                               tuple(self.initial_config))

    def build(self, *, iterations: int = 10,
              materialized: bool = False) -> Application:
        return make_application(self.kind, self.problem_size,
                                iterations=iterations,
                                materialized=materialized)

    @property
    def name(self) -> str:
        return self.label or f"{self.kind}({self.problem_size})"

    def to_dict(self) -> dict:
        """JSON-safe description; inverse of :meth:`from_dict`."""
        return {"kind": self.kind, "problem_size": self.problem_size,
                "initial_config": list(self.initial_config),
                "arrival": self.arrival, "label": self.label}

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        return cls(kind=d["kind"], problem_size=d["problem_size"],
                   initial_config=tuple(d["initial_config"]),
                   arrival=d.get("arrival", 0.0),
                   label=d.get("label"))


#: Table 3 / Table 4 — workload W1.  Initial allocations from Table 4;
#: arrival times from §4.2.1 (LU and MM at t=0, Master-worker at t=450,
#: Jacobi and FFT at t=465).  36 processors available.
WORKLOAD1 = [
    JobSpec("lu", 21000, (2, 3), 0.0, label="LU"),
    JobSpec("mm", 14000, (2, 4), 0.0, label="MM"),
    JobSpec("masterworker", 20000, (1, 2), 450.0, label="Master-worker"),
    JobSpec("jacobi", 8000, (4, 1), 465.0, label="Jacobi"),
    JobSpec("fft", 8192, (4, 1), 465.0, label="2D FFT"),
]
WORKLOAD1_PROCESSORS = 36

#: Table 3 / Table 5 — workload W2.  Initial allocations from Table 5;
#: arrivals from §4.2.2 (LU and Jacobi at t=0, Master-worker at t=560,
#: FFT at t=650).
WORKLOAD2 = [
    JobSpec("lu", 21000, (4, 4), 0.0, label="LU"),
    JobSpec("jacobi", 8000, (10, 1), 0.0, label="Jacobi"),
    JobSpec("masterworker", 20000, (1, 6), 560.0, label="Master-worker"),
    JobSpec("fft", 8192, (4, 1), 650.0, label="2D FFT"),
]
WORKLOAD2_PROCESSORS = 36


def _build(specs, framework, iterations: int):
    jobs = {}
    for spec in specs:
        app = spec.build(iterations=iterations)
        jobs[spec.name] = framework.submit(app, spec.initial_config,
                                           arrival=spec.arrival,
                                           name=spec.name)
    return jobs


def build_workload1(framework, *, iterations: int = 10):
    """Submit W1's five jobs to a framework; returns {name: Job}."""
    return _build(WORKLOAD1, framework, iterations)


def build_workload2(framework, *, iterations: int = 10):
    """Submit W2's four jobs to a framework; returns {name: Job}."""
    return _build(WORKLOAD2, framework, iterations)
