"""Workload definitions: the paper's experiments and a synthetic generator."""

from repro.workloads.paper import (
    APPLICATIONS,
    PROCESSOR_CONFIGS,
    WORKLOAD1,
    WORKLOAD2,
    JobSpec,
    build_workload1,
    build_workload2,
    make_application,
)
from repro.workloads.generator import WorkloadGenerator

__all__ = [
    "APPLICATIONS",
    "PROCESSOR_CONFIGS",
    "WORKLOAD1",
    "WORKLOAD2",
    "JobSpec",
    "WorkloadGenerator",
    "build_workload1",
    "build_workload2",
    "make_application",
]
