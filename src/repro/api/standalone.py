"""Static (fixed-configuration) application runner.

Runs an application at one processor configuration for a number of
iterations, with no scheduler in the loop — the paper's *static
scheduling* baseline, and the measurement harness for per-configuration
iteration times (Figure 2(a)).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.apps.base import AppContext, Application
from repro.blacs import BlacsContext, ProcessGrid
from repro.cluster.machine import Machine, MachineSpec
from repro.mpi import World
from repro.simulate import Environment


@dataclass
class StaticRunResult:
    """Timing record of a fixed-configuration run."""

    config: tuple[int, int]
    iteration_times: list[float] = field(default_factory=list)
    total_time: float = 0.0
    verified: Optional[bool] = None

    @property
    def mean_iteration_time(self) -> float:
        if not self.iteration_times:
            return 0.0
        return sum(self.iteration_times) / len(self.iteration_times)


def run_static(app: Application, config: tuple[int, int], *,
               iterations: Optional[int] = None,
               machine: Optional[Machine] = None,
               env: Optional[Environment] = None,
               machine_spec: Optional[MachineSpec] = None,
               processors: Optional[Sequence[int]] = None,
               verify: bool = False,
               collective_fastpath: bool = True,
               spec: Optional[MachineSpec] = None) -> StaticRunResult:
    """Run ``app`` on a fixed ``(pr, pc)`` grid; returns per-iteration times.

    Builds its own environment/machine unless given one.  ``processors``
    pins specific machine processors (defaults to ``0..p-1``).
    ``collective_fastpath=False`` forces the generator-collective
    reference path — cross-machine-spec ablations use it so every
    variant runs the same code path (the fast path's structural gate
    depends on the spec; see docs/phantom.md).
    """
    if spec is not None:
        # One-release shim: "spec" now means a ScenarioSpec at the API
        # surface (repro.run / repro.sweep); the machine description
        # keyword is machine_spec.
        warnings.warn("run_static(spec=...) is deprecated; pass "
                      "machine_spec=...", DeprecationWarning, stacklevel=2)
        machine_spec = machine_spec if machine_spec is not None else spec
    pr, pc = config
    nprocs = pr * pc
    own_env = env is None
    if own_env:
        env = Environment()
    if machine is None:
        machine = Machine(env, machine_spec or MachineSpec())
    if nprocs > machine.total_processors:
        raise ValueError(f"config {config} needs {nprocs} processors; "
                         f"machine has {machine.total_processors}")
    world = World(env, machine, collective_fastpath=collective_fastpath)
    iters = iterations if iterations is not None else app.iterations
    grid = ProcessGrid(pr, pc)
    data = app.create_data(grid)
    result = StaticRunResult(config=(pr, pc))
    t_start = env.now

    def main(comm):
        blacs = yield from BlacsContext.create(comm, pr, pc)
        ctx = AppContext(comm, blacs, data, machine)
        # Iterations are driven between barriers here, so measure-once
        # replay (Application.replay_iterations) is sound.
        ctx.iteration_anchored = True
        for _it in range(iters):
            yield from comm.barrier()
            t0 = env.now
            yield from app.iterate(ctx)
            yield from comm.barrier()
            if comm.rank == 0:
                result.iteration_times.append(env.now - t0)

    group = world.launch(main, processors=list(processors)
                         if processors is not None else list(range(nprocs)),
                         name=app.name)
    if own_env:
        env.run()
    else:
        env.run(until=env.all_of(group.processes))
    result.total_time = env.now - t_start
    if verify:
        result.verified = app.verify(data)
    return result
