"""The ReSHAPE resizing library and application API (§3.2).

Per-rank flow, exactly as in the paper's Figure 1(b):

1. After each outer iteration the application hits a *resize point*;
   rank 0 contacts the Remap Scheduler with the last iteration time and
   redistribution time (``contact_scheduler``).
2. On **expand**: rank 0 spawns the new processes
   (``MPI_Comm_spawn_multiple`` → ``World.spawn_multiple``), the
   intercommunicator is merged, the old BLACS context is exited, a new
   context is created on the expanded set, and the global data is
   redistributed.
3. On **shrink**: the data is first redistributed to the surviving
   subset, the survivors build the smaller communicator/context, and the
   departing processes terminate.
4. Control returns to the application, which resumes with its next
   iteration.

``ResizeContext`` is the object application code sees; its ``resize()``
is the paper's simple API (everything above in one call) and the
``contact_scheduler`` / ``expand_processors`` / ``shrink_processors`` /
``redistribute_data`` methods are the advanced API.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.base import AppContext
from repro.blacs import BlacsContext, ProcessGrid
from repro.core.remap import RemapDecision
from repro.darray import DistributedMatrix
from repro.mpi.comm import Comm
from repro.redist import checkpoint_redistribute, redistribute

#: Alias used to pick the redistribution implementation by name.
_REDIST_METHODS = {
    "reshape": redistribute,
    "checkpoint": checkpoint_redistribute,
}


class ResizeDecision(RemapDecision):
    """Re-export under the API's name (see §3.2.3)."""


class ResizeContext:
    """One rank's handle on the resizing library.

    Wraps the application context and knows how to talk to the framework
    and rebuild the world around a resize.  ``iteration`` is this rank's
    local outer-iteration counter (ranks stay in step through the
    barriers around each iteration).
    """

    def __init__(self, framework, job, ctx: AppContext, iteration: int = 0):
        self.framework = framework
        self.job = job
        self.ctx = ctx
        self.iteration = iteration
        self.last_iteration_time: float = 0.0
        self.last_redistribution_time: float = 0.0

    @property
    def comm(self) -> Comm:
        return self.ctx.comm

    # ------------------------------------------------------------------
    # Simple functional API (§3.2.3)
    # ------------------------------------------------------------------
    def log(self, iteration_time: float) -> None:
        """Log the iteration time (the paper writes it to a file)."""
        self.last_iteration_time = iteration_time
        if self.comm.rank == 0:
            self.job.iteration_log.append(
                (self.iteration, self.job.config, iteration_time,
                 self.last_redistribution_time))
            self.last_redistribution_time = 0.0

    def resize(self) -> Generator:
        """Contact the scheduler and act on its decision.

        Returns True if this rank remains part of the application, False
        if it was shrunk away (the caller must then terminate).
        """
        decision = yield from self.contact_scheduler(
            self.last_iteration_time, self.last_redistribution_time)
        if decision.action == "expand":
            yield from self.expand_processors(decision)
            return True
        if decision.action == "shrink":
            survived = yield from self.shrink_processors(decision)
            return survived
        return True

    # ------------------------------------------------------------------
    # Advanced functional API (§3.2.3)
    # ------------------------------------------------------------------
    def contact_scheduler(self, iteration_time: float,
                          redistribution_time: float) -> Generator:
        """Report performance; returns the scheduler's RemapDecision."""
        decision: Optional[RemapDecision] = None
        if self.comm.rank == 0:
            # The round trip to the scheduler node.
            yield self.ctx.env.sleep(self.framework.rpc_latency)
            decision = self.framework.remap_request(
                self.job, iteration_time, redistribution_time)
            yield self.ctx.env.sleep(self.framework.rpc_latency)
        decision = yield from self.comm.bcast(decision, root=0)
        return decision

    def expand_processors(self, decision: RemapDecision) -> Generator:
        """Spawn onto the granted processors, merge, rebuild, redistribute."""
        assert decision.new_config is not None
        old_comm = self.comm
        old_config = self.job.config
        merged: Optional[Comm] = None
        if old_comm.rank == 0:
            inter = self.framework.world.spawn_multiple(
                _spawned_child_main, decision.added_processors,
                parent=old_comm,
                args=(self.framework, self.job, decision.new_config,
                      self.iteration),
                name=f"{self.job.name}+")
            merged = inter.merge(parent_rank=0)
        merged = yield from old_comm.bcast(merged, root=0)
        if old_comm.rank != 0:
            merged = merged.view(old_comm.rank)
        # Old BLACS context is exited; the merged set rebuilds everything.
        if self.ctx.blacs is not None:
            self.ctx.blacs.exit()
        new_ctx, elapsed, moved, payload = yield from _rebuild_on(
            merged, self.framework, self.job, decision.new_config)
        if merged.rank == 0:
            self.framework.notify_resized(
                self.job, old_config, decision.new_config, "expand",
                nbytes_payload=payload, nbytes_moved=moved,
                elapsed=elapsed, added=decision.added_processors)
        self.last_redistribution_time = elapsed
        self.ctx = new_ctx
        return True

    def shrink_processors(self, decision: RemapDecision) -> Generator:
        """Redistribute down, then survivors rebuild; returns survival."""
        assert decision.new_config is not None
        old_comm = self.comm
        old_config = self.job.config
        new_grid = ProcessGrid(*decision.new_config)
        q = new_grid.size
        # Data moves first, over the *old* (larger) communicator.
        elapsed, moved, payload, new_data = yield from _redistribute_all(
            old_comm, self.framework, self.job, new_grid)
        # Survivors build the smaller communicator; the old context dies.
        if self.ctx.blacs is not None:
            self.ctx.blacs.exit()
        sub = yield from old_comm.create_sub(list(range(q)))
        if old_comm.rank == 0:
            _swap_job_data(self.job, new_data)
            self.framework.notify_resized(
                self.job, old_config, decision.new_config, "shrink",
                nbytes_payload=payload, nbytes_moved=moved,
                elapsed=elapsed)
        if sub is None:
            # This process was relinquished; it terminates with the old
            # BLACS context (Fig 1(b), shrink path).
            return False
        blacs = yield from BlacsContext.create(sub, *decision.new_config)
        assert blacs is not None
        self.last_redistribution_time = elapsed
        self.ctx = AppContext(blacs.comm, blacs, self.job.data,
                              self.framework.machine)
        return True

    def redistribute_data(self, comm: Comm,
                          new_grid: ProcessGrid) -> Generator:
        """Redistribute every global array onto ``new_grid`` (advanced)."""
        elapsed, _moved, _payload, new_data = yield from _redistribute_all(
            comm, self.framework, self.job, new_grid)
        if comm.rank == 0:
            _swap_job_data(self.job, new_data)
        self.last_redistribution_time = elapsed
        return elapsed


# ---------------------------------------------------------------------------
# Shared collective sequences (parents and spawned children run these
# in lockstep).
# ---------------------------------------------------------------------------

def _redistribute_all(comm: Comm, framework, job,
                      new_grid: ProcessGrid) -> Generator:
    """Redistribute each DistributedMatrix in the job's data dict.

    Returns ``(elapsed, bytes_moved, payload_nbytes, new_data)`` —
    ``bytes_moved`` is the wire traffic the schedules actually generated
    (summed over all ranks; local copies excluded), ``payload_nbytes``
    the total size of the redistributed arrays.  Reporting the payload
    as traffic would overcount: data that stays on its processor never
    touches the network.
    """
    method = _REDIST_METHODS[framework.redistribution_method]
    elapsed = 0.0
    moved = 0
    payload = 0
    new_data: dict = {}
    for key in sorted(job.data):
        value = job.data[key]
        if isinstance(value, DistributedMatrix):
            result = yield from method(comm, value, new_grid)
            new_data[key] = result.matrix
            elapsed += result.elapsed
            moved += result.total_bytes_moved
            payload += result.payload_nbytes
        else:
            new_data[key] = value
    return elapsed, moved, payload, new_data


def _swap_job_data(job, new_data: dict) -> None:
    """Install redistributed data in place (the dict is shared)."""
    job.data.clear()
    job.data.update(new_data)


def _rebuild_on(comm: Comm, framework, job,
                new_config: tuple[int, int]) -> Generator:
    """Post-expansion rebuild: new BLACS context + data redistribution.

    ``comm`` is the merged communicator (old ranks first).  Returns
    ``(new AppContext, redistribution seconds, wire bytes moved,
    payload bytes redistributed)``.
    """
    new_grid = ProcessGrid(*new_config)
    elapsed, moved, payload, new_data = yield from _redistribute_all(
        comm, framework, job, new_grid)
    if comm.rank == 0:
        _swap_job_data(job, new_data)
    blacs = yield from BlacsContext.create(comm, *new_config)
    assert blacs is not None
    ctx = AppContext(blacs.comm, blacs, job.data, framework.machine)
    return ctx, elapsed, moved, payload


# ---------------------------------------------------------------------------
# Rank entry points
# ---------------------------------------------------------------------------

class ApplicationError(RuntimeError):
    """An application raised inside an iteration."""


def resizable_main(comm: Comm, framework, job) -> Generator:
    """Entry for the ranks of a freshly started job.

    Application exceptions are converted into the paper's job-error
    signal: the per-node application monitor reports to the System
    Monitor, which deletes the job and recovers its resources.  Every
    rank reports (the per-node monitors of §3.1); the signal is
    idempotent, so the first one wins.
    """
    assert job.config is not None
    try:
        if job.app.needs_blacs:
            blacs = yield from BlacsContext.create(comm, *job.config)
            assert blacs is not None
            ctx = AppContext(blacs.comm, blacs, job.data,
                             framework.machine)
        else:
            # Pure-compute apps skip the context-setup collectives.
            ctx = AppContext(comm, None, job.data, framework.machine)
        rctx = ResizeContext(framework, job, ctx,
                             iteration=job.iterations_done)
        yield from _iteration_loop(rctx)
    except Exception as err:  # noqa: BLE001 - converted into a signal
        framework.job_error(job, repr(err))
        return


def _spawned_child_main(comm: Comm, framework, job,
                        new_config: tuple[int, int],
                        next_iteration: int) -> Generator:
    """Entry for processes spawned during an expansion.

    ``comm`` is this child's view of the merged communicator.  The child
    performs code-specific local initialization (here: joining the
    collective rebuild) and then enters the iteration loop in step with
    the parents.

    Application errors convert into the job-error signal exactly as in
    :func:`resizable_main` — a spawned rank crashing must still reach
    the System Monitor, or the job's processors are never reclaimed and
    the application scheduler stalls on a machine that looks full.
    """
    try:
        new_ctx, _elapsed, _moved, _payload = yield from _rebuild_on(
            comm, framework, job, new_config)
        rctx = ResizeContext(framework, job, new_ctx,
                             iteration=next_iteration)
        yield from _iteration_loop(rctx)
    except Exception as err:  # noqa: BLE001 - converted into a signal
        framework.job_error(job, repr(err))
        return


def _iteration_loop(rctx: ResizeContext) -> Generator:
    """The outer loop every rank runs: iterate, log, resize, repeat."""
    job = rctx.job
    app = job.app
    framework = rctx.framework
    while rctx.iteration < app.iterations:
        # This loop barriers around every iteration, which is what makes
        # measure-once iteration replay sound (Application.replay_iterations).
        rctx.ctx.iteration_anchored = True
        yield from rctx.comm.barrier()
        t0 = rctx.ctx.env.now
        yield from app.iterate(rctx.ctx)
        yield from rctx.comm.barrier()
        rctx.log(rctx.ctx.env.now - t0)
        if rctx.comm.rank == 0:
            job.iterations_done = rctx.iteration + 1
        rctx.iteration += 1
        if rctx.iteration >= app.iterations:
            break
        alive = yield from rctx.resize()
        if not alive:
            return
    if rctx.comm.rank == 0:
        framework.job_complete(job)
