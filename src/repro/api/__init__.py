"""Application-facing API: the resizing library and runners.

* :mod:`repro.api.standalone` — run an application at a fixed processor
  configuration (no scheduler): the baseline the paper calls *static
  scheduling*, and the harness behind Figure 2(a)-style sweeps.
* :mod:`repro.api.resize` — the resizing library: the advanced API
  (``contact_scheduler`` / ``expand_processors`` / ``shrink_processors``
  / ``redistribute``) and the simple API (``log`` / ``resize``) from
  §3.2.3, implemented over spawn/merge and the redistribution library.
"""

from repro.api.resize import ResizeContext, ResizeDecision
from repro.api.standalone import StaticRunResult, run_static

__all__ = [
    "ResizeContext",
    "ResizeDecision",
    "StaticRunResult",
    "run_static",
]
