"""Shared-resource primitives built on the event kernel.

``Store`` is an unbounded (or bounded) FIFO channel — the backbone of all
simulated message queues.  ``Resource`` is a counted lock — used for NIC
serialization and disk arbitration.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.simulate.engine import Environment, Event, SimulationError


class StorePut(Event):
    """Pending put; fires when the item has been accepted."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Pending get; fires with the retrieved item as its value."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.env)
        self.filter = filter
        store._get_queue.append(self)
        store._trigger()


class Store:
    """FIFO channel with optional capacity and filtered gets.

    Filtered gets (``store.get(lambda item: ...)``) are what make MPI tag
    and source matching straightforward: each pending receive filters the
    message queue for matching envelopes.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._put_queue: deque[StorePut] = deque()
        self._get_queue: deque[StoreGet] = deque()

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def deposit(self, item: Any) -> None:
        """Insert ``item`` without a put event (phantom fast path).

        Equivalent to an immediately accepted :meth:`put` whose event
        nobody waits on — pending filtered gets are served exactly as a
        put would serve them.  Only valid for unbounded stores (message
        mailboxes); a bounded store must use :meth:`put` so the producer
        can block.
        """
        if len(self.items) >= self.capacity:
            raise SimulationError("deposit() into a full bounded store")
        self.items.append(item)
        self._trigger()

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        return StoreGet(self, filter)

    def __len__(self) -> int:
        return len(self.items)

    def _trigger(self) -> None:
        """Match pending puts with capacity and pending gets with items."""
        progress = True
        while progress:
            progress = False
            # Accept puts while there is room.  Grants ride the packed
            # delivery path (env.deliver): one fused call books the same
            # (time, priority, seq) record succeed() would.
            while self._put_queue and len(self.items) < self.capacity:
                put_ev = self._put_queue.popleft()
                self.items.append(put_ev.item)
                self.env.deliver(put_ev)
                progress = True
            # Serve gets, respecting filters, preserving FIFO among getters.
            served: list[StoreGet] = []
            for get_ev in list(self._get_queue):
                match_idx = None
                for idx, item in enumerate(self.items):
                    if get_ev.filter is None or get_ev.filter(item):
                        match_idx = idx
                        break
                if match_idx is not None:
                    item = self.items[match_idx]
                    del self.items[match_idx]
                    self.env.deliver(get_ev, item)
                    served.append(get_ev)
                    progress = True
            for ev in served:
                self._get_queue.remove(ev)


class ResourceRequest(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """Counted lock with FIFO granting.

    ``capacity`` slots; ``request()`` returns an event that fires when a
    slot is granted; ``release(req)`` frees it.  Used to serialize access
    to NIC transmit/receive engines so that link contention emerges from
    the simulation rather than being assumed away.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._queue: deque[ResourceRequest] = deque()
        self._users: set[ResourceRequest] = set()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self) -> ResourceRequest:
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        if request in self._users:
            self._users.discard(request)
            self._trigger()
        else:
            # Releasing an ungranted request = cancelling it.
            try:
                self._queue.remove(request)
            except ValueError:
                raise SimulationError("release of unknown request")

    def _trigger(self) -> None:
        # Grant delivery is packed (env.deliver): same record, same
        # (time, priority, seq) position, one call instead of three.
        while self._queue and len(self._users) < self.capacity:
            req = self._queue.popleft()
            self._users.add(req)
            self.env.deliver(req)
