"""Core discrete-event kernel: environment, packed records, processes.

The queue stores *packed records* — ``(time, priority, seq, handler_id,
arg)`` tuples — not event objects.  Popping a record jumps through a
small per-:class:`Environment` handler table: ``handler_id`` 0 fires the
:class:`Event` object in ``arg`` (the rich composition layer), any other
id calls a registered handler function with ``arg``.  The common case —
a one-shot timed wakeup — therefore never allocates an ``Event`` or a
callback list: :meth:`Environment.call_at` books a bare record, and a
process that yields :meth:`Environment.sleep` is resumed through the
builtin process-resume handler.

Rich ``Event`` / :class:`Process` / ``AllOf``-style composition remains
as a thin layer on top: an Event is a value holder plus a callback list,
and scheduling one just packs a record with handler id 0.  The queue
itself lives behind the small interface in
:mod:`repro.simulate.calendar`: a slotted calendar queue by default,
with the seed binary heap available as ``Environment(kernel="heap")``
for ablation.

Determinism contract: records are totally ordered by ``(time, priority,
seq)`` where ``seq`` is the monotone tie counter ``Environment._seq``.
Every scheduling path (``schedule``, ``schedule_at``, ``wake_at``,
``call_at``, ``call_later``, ``deliver``, ``batch_at``, a yielded
``Sleep``) increments it exactly once at the moment its record is
pushed; nothing else may touch the queue, or tie ordering (and with it
determinism) breaks.  The handler id and argument are never compared —
``seq`` is unique, so comparisons stop at the third field.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.simulate.calendar import make_event_queue

#: Priority classes for simultaneous events.  URGENT fires before NORMAL at
#: the same timestamp; used by the kernel for interrupts.
URGENT = 0
NORMAL = 1

#: Builtin handler-table positions, identical in every Environment
#: (asserted at construction).  0 is the Event-object dispatcher and is
#: inlined in the run loop; the others are module-level functions below.
HANDLER_EVENT = 0
HANDLER_RESUME = 1
HANDLER_BATCH = 2


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value given to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()  # sentinel: event value not yet decided


class Event:
    """A one-shot occurrence that processes can wait for.

    An event moves through three states: *pending* (created), *triggered*
    (scheduled to fire at some time), and *processed* (callbacks have run).
    Waiting is expressed by yielding the event from a process generator.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True
        self._scheduled = False
        self._processed = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.env.schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure carrying ``exception``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._value = exception
        self._ok = False
        self.env.schedule(self, delay=delay)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Sleep:
    """A packed one-shot timed wakeup a process can yield.

    The flat replacement for :class:`Timeout` on the hot path: a process
    that yields a Sleep is resumed by a single packed
    ``(when, NORMAL, seq, HANDLER_RESUME, (process, value, token))``
    record — no Event object, no callback list.  A Sleep is *not* an
    Event: it cannot be shared, composed (``AllOf``/``AnyOf``) or
    waited on by anyone but the yielding process.  Use
    :meth:`Environment.timeout` where Event semantics are needed.

    Created via :meth:`Environment.sleep` (relative) or
    :meth:`Environment.sleep_until` (absolute); the wakeup time is fixed
    at creation.
    """

    __slots__ = ("when", "value")

    def __init__(self, when: float, value: Any = None):
        self.when = when
        self.value = value


class Timeout(Event):
    """Event that fires automatically ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        self.env.schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._value = None
        self._ok = True
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A running generator coroutine.

    A process *is* an event: it fires when the generator returns (value =
    return value) or raises (failure).  Other processes can therefore wait
    on it or interrupt it.
    """

    __slots__ = ("_generator", "_target", "_sleep_token", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: Guard for packed sleeps: an interrupt bumps the token so the
        #: orphaned wakeup record is ignored when it eventually pops.
        self._sleep_token = 0
        #: The event (or Sleep) this process is currently waiting on.
        self._target: Any = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self._target is None:
            raise SimulationError(f"{self.name} cannot interrupt itself")
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev.callbacks.append(self._resume)
        self.env.schedule(interrupt_ev, priority=URGENT)
        # Deregister from the old target so a later trigger is ignored.
        target = self._target
        self._target = None
        if type(target) is Sleep:
            # The packed wakeup record cannot be removed from the queue;
            # bumping the token makes it a no-op when it pops.
            self._sleep_token += 1
        elif target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass

    # -- generator driving --------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        self._advance(event._ok, event._value)

    def _advance(self, ok: bool, value: Any) -> None:
        """Advance the generator with a bare (ok, value) outcome."""
        env = self.env
        env._active_proc = self
        while True:
            try:
                if ok:
                    next_ev = self._generator.send(value)
                else:
                    if isinstance(value, BaseException):
                        next_ev = self._generator.throw(value)
                    else:  # pragma: no cover - defensive
                        next_ev = self._generator.throw(
                            SimulationError(repr(value)))
            except StopIteration as stop:
                self._target = None
                self._value = stop.value
                self._ok = True
                env.schedule(self)
                break
            except BaseException as err:
                self._target = None
                self._value = err
                self._ok = False
                if self.callbacks:
                    env.schedule(self)
                else:
                    # Nobody is waiting: surface the crash instead of
                    # swallowing it silently.
                    env._active_proc = None
                    raise
                break

            if type(next_ev) is Sleep:
                # Packed timed wakeup: one record, no Event machinery.
                self._sleep_token += 1
                self._target = next_ev
                env._seq += 1
                env._queue.push(next_ev.when, NORMAL, env._seq,
                                HANDLER_RESUME,
                                (self, next_ev.value, self._sleep_token))
                break
            if not isinstance(next_ev, Event):
                msg = (f"process {self.name!r} yielded {next_ev!r}; "
                       "processes must yield Event or Sleep instances")
                self._generator.throw(SimulationError(msg))
                continue
            if next_ev.env is not env:
                raise SimulationError("event belongs to a different Environment")

            if next_ev._processed:
                # Already fired and delivered: re-deliver its value now.
                ok = next_ev._ok
                value = next_ev._value
                continue
            # Wait for it.
            assert next_ev.callbacks is not None
            next_ev.callbacks.append(self._resume)
            self._target = next_ev
            break
        env._active_proc = None


class Batch:
    """Events delivered together by one packed queue record.

    The batched-completion primitive behind the phantom fast paths: a
    P-rank collective resolves all P per-rank completion events through
    a single ``(when, priority, seq, HANDLER_BATCH, batch)`` record
    instead of P separate ones.  Members are resolved (value assigned)
    when added and delivered — callbacks run, ``processed`` becomes true
    — when the record pops, in the order they were added.

    Created via :meth:`Environment.batch_at`; members may be added any
    time before the batch fires (``fired`` flips when it has).
    """

    __slots__ = ("env", "members", "fired")

    def __init__(self, env: "Environment"):
        self.env = env
        self.members: list[Event] = []
        self.fired = False

    def add(self, event: Event, value: Any = None, ok: bool = True) -> None:
        """Attach ``event`` as a member resolving to ``value``."""
        if event.triggered or event._scheduled:
            raise SimulationError(f"{event!r} already triggered/scheduled")
        if event.env is not self.env:
            raise SimulationError("event belongs to a different Environment")
        event._value = value
        event._ok = ok
        # The batch owns delivery; nothing else may schedule the member.
        event._scheduled = True
        self.members.append(event)


def _resume_sleeping(arg) -> None:
    """HANDLER_RESUME: wake the process sleeping on a packed record."""
    process, value, token = arg
    if process._sleep_token != token:
        return  # interrupted while asleep; the record is orphaned
    process._target = None
    process._advance(True, value)


def _fire_batch(batch: Batch) -> None:
    """HANDLER_BATCH: deliver every member of a :class:`Batch`."""
    batch.fired = True
    for member in batch.members:
        callbacks = member.callbacks
        member.callbacks = None
        member._processed = True
        if callbacks:
            for cb in callbacks:
                cb(member)


class _Condition(Event):
    """Base for AllOf/AnyOf: fires when ``_check`` says enough children did."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if not isinstance(ev, Event):
                raise SimulationError(
                    f"{ev!r} is not an Event; Sleep wakeups are "
                    "single-waiter and cannot be composed — use "
                    "env.timeout() where condition semantics are needed")
            if ev.env is not env:
                raise SimulationError("all events must share one Environment")
            if ev._processed:
                self._on_child(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._on_child)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events
                if ev._processed and ev._ok}

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._check():
            self.succeed(self._collect())

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every child event has fired successfully."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._count == len(self.events)


class AnyOf(_Condition):
    """Fires as soon as any child event fires."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._count >= 1


class Environment:
    """The simulation world: clock + packed event queue + handler table."""

    def __init__(self, initial_time: float = 0.0, *,
                 kernel: str = "calendar"):
        self._now = float(initial_time)
        try:
            self._queue = make_event_queue(kernel)
        except ValueError as err:
            raise SimulationError(str(err)) from None
        self.kernel = kernel
        self._seq = 0
        self._active_proc: Optional[Process] = None
        #: The handler table: position 0 is the Event-object dispatcher
        #: (inlined in the run loop, never called through the table);
        #: builtin handlers follow at fixed positions, then whatever the
        #: session registers.  The table only ever grows — ids stay
        #: valid for the Environment's lifetime.
        self._handlers: list[Any] = [None]
        self._handler_ids: dict[Any, int] = {}
        assert self.register_handler(_resume_sleeping) == HANDLER_RESUME
        assert self.register_handler(_fire_batch) == HANDLER_BATCH

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- handler table ------------------------------------------------------
    def register_handler(self, fn: Callable[[Any], None]) -> int:
        """Append ``fn`` to the handler table; returns its id.

        ``fn`` is called as ``fn(arg)`` when a record scheduled with its
        id pops.  Register once and reuse the id — the table never
        shrinks, so per-call registration would leak entries (use
        :meth:`handler_id` for idempotent registration).
        """
        self._handlers.append(fn)
        return len(self._handlers) - 1

    def handler_id(self, fn: Callable[[Any], None]) -> int:
        """Idempotent :meth:`register_handler`: one table entry per
        function, cached by identity.

        The pattern for classes with many short-lived instances (e.g.
        one per collective call): register the *unbound* method once and
        pass the instance as ``arg``.
        """
        hid = self._handler_ids.get(fn)
        if hid is None:
            hid = self._handler_ids[fn] = self.register_handler(fn)
        return hid

    # -- scheduling ---------------------------------------------------------
    def schedule_entry(self, event: Event, when: float,
                       priority: int) -> None:
        """Queue entry point for Event objects: issue a tie number,
        pack a handler-id-0 record.

        Every Event scheduling path comes through here (``schedule``,
        ``schedule_at``, ``wake_at`` all do) so the monotone ``seq``
        counter covers the whole queue — an entry pushed around it could
        tie-break nondeterministically.
        """
        if when != when:  # NaN would silently corrupt the queue order
            raise SimulationError("event time is NaN")
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        self._queue.push(when, priority, self._seq, HANDLER_EVENT, event)

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Enqueue ``event`` to fire at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self.schedule_entry(event, self._now + delay, priority)

    def schedule_at(self, event: Event, when: float,
                    priority: int = NORMAL) -> None:
        """Enqueue ``event`` to fire at the absolute time ``when``.

        The phantom fast path computes completion times as absolute
        clocks; scheduling them as ``now + (when - now)`` would lose the
        last bit to float association, so this bypasses the delay form.
        """
        if when < self._now:
            raise SimulationError(f"schedule_at({when}) is in the past "
                                  f"(now {self._now})")
        self.schedule_entry(event, when, priority)

    def call_at(self, when: float, handler_id: int, arg: Any = None,
                priority: int = NORMAL) -> None:
        """Book a bare packed record: at ``when``, call
        ``handlers[handler_id](arg)``.

        The object-free one-shot wakeup — no Event, no callback list,
        one tuple in the queue.  ``handler_id`` comes from
        :meth:`register_handler` / :meth:`handler_id`.
        """
        if when != when:
            raise SimulationError("event time is NaN")
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past "
                                  f"(now {self._now})")
        self._seq += 1
        self._queue.push(when, priority, self._seq, handler_id, arg)

    def call_later(self, delay: float, handler_id: int, arg: Any = None,
                   priority: int = NORMAL) -> None:
        """Relative-time :meth:`call_at`: fire ``delay`` seconds from now."""
        if not (delay >= 0.0):  # also rejects NaN
            raise SimulationError(f"negative delay {delay!r}")
        self._seq += 1
        self._queue.push(self._now + delay, priority, self._seq,
                         handler_id, arg)

    def deliver(self, event: Event, value: Any = None, ok: bool = True,
                priority: int = NORMAL) -> None:
        """Resolve ``event`` and book its firing at the current instant.

        The packed grant path for Store/Resource: one call replacing
        ``succeed()`` → ``schedule()`` → ``schedule_entry()``, producing
        the identical record at the identical ``(time, priority, seq)``
        position.
        """
        if event._value is not PENDING or event._scheduled:
            raise SimulationError(f"{event!r} already triggered")
        event._value = value
        event._ok = ok
        event._scheduled = True
        self._seq += 1
        self._queue.push(self._now, priority, self._seq, HANDLER_EVENT,
                         event)

    def wake_at(self, when: float, value: Any = None) -> Event:
        """An event that fires at the absolute time ``when``."""
        ev = Event(self)
        ev._value = value
        ev._ok = True
        self.schedule_at(ev, when)
        return ev

    def sleep(self, delay: float, value: Any = None) -> Sleep:
        """A packed timed wakeup for the yielding process (relative).

        ``yield env.sleep(d)`` is the flat form of
        ``yield env.timeout(d)``: same clock advance, same interrupt
        semantics, no Event allocation.  Only the yielding process can
        consume it.
        """
        if not (delay >= 0.0):  # also rejects NaN
            raise SimulationError(f"negative sleep delay {delay!r}")
        return Sleep(self._now + delay, value)

    def sleep_until(self, when: float, value: Any = None) -> Sleep:
        """A packed timed wakeup at the absolute time ``when``."""
        if when != when:
            raise SimulationError("event time is NaN")
        if when < self._now:
            raise SimulationError(f"sleep_until({when}) is in the past "
                                  f"(now {self._now})")
        return Sleep(when, value)

    def batch_at(self, when: float, priority: int = NORMAL) -> Batch:
        """A :class:`Batch` whose members deliver together at ``when``.

        One packed record regardless of member count; members may be
        added until the record pops.
        """
        batch = Batch(self)
        self.call_at(when, HANDLER_BATCH, batch, priority)
        return batch

    def schedule_many(self, completions, priority: int = NORMAL
                      ) -> list[Batch]:
        """Schedule many ``(event, value, when)`` completions at once.

        ``when`` is an absolute simulated time.  Completions sharing a
        time are grouped into one :class:`Batch`, so N simultaneous
        logical completions cost one packed record.  Within a group,
        events fire in input order.  Returns the batches (one per
        distinct time).
        """
        groups: dict[float, Batch] = {}
        for event, value, when in completions:
            batch = groups.get(when)
            if batch is None:
                batch = groups[when] = self.batch_at(when, priority)
            batch.add(event, value)
        return list(groups.values())

    # -- factories ------------------------------------------------------------
    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- main loop ------------------------------------------------------------
    def step(self) -> None:
        """Pop and dispatch the next record in the queue."""
        if not self._queue:
            raise SimulationError("step() on an empty queue")
        when, _prio, _seq, hid, arg = self._queue.pop()
        if when < self._now:  # pragma: no cover - queue guarantees order
            raise SimulationError("time went backwards")
        self._now = when
        if hid:
            self._handlers[hid](arg)
            return
        callbacks = arg.callbacks
        arg.callbacks = None  # new waiters see a processed event
        arg._processed = True
        assert callbacks is not None
        for cb in callbacks:
            cb(arg)

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._queue.peek_when()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a number (absolute simulated time), an
        :class:`Event` (run until it fires; returns its value), or ``None``
        (run to exhaustion).
        """
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not self._queue:
                    raise SimulationError(
                        "queue drained before the awaited event fired")
                self.step()
            if not stop._ok and isinstance(stop._value, BaseException):
                raise stop._value
            return stop._value
        deadline = float("inf") if until is None else float(until)
        if deadline != float("inf") and deadline < self._now:
            raise SimulationError(f"until={deadline} is in the past")
        # Hot loop: one pop_due call per record (a fused peek + pop),
        # then one table jump — Event firing (handler id 0) is inlined
        # to keep the common composition path flat too.
        pop_due = self._queue.pop_due
        handlers = self._handlers
        while True:
            entry = pop_due(deadline)
            if entry is None:
                break
            self._now = entry[0]
            hid = entry[3]
            if hid:
                handlers[hid](entry[4])
                continue
            event = entry[4]
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            assert callbacks is not None
            for cb in callbacks:
                cb(event)
        if deadline != float("inf"):
            self._now = deadline
        return None
