"""Core discrete-event kernel: environment, events, processes.

The design follows the classic event-queue pattern: a queue of
``(time, priority, seq, event)`` entries; popping an entry *fires* the
event, which runs its callbacks; process callbacks advance a generator
until it yields the next event to wait on.

The queue itself lives behind the small interface in
:mod:`repro.simulate.calendar`: a slotted calendar queue by default
(O(1) amortized at large event populations), with the seed binary heap
available as ``Environment(kernel="heap")`` for ablation.  All
scheduling — ``schedule``, ``schedule_at``, ``wake_at``,
``schedule_many`` — goes through :meth:`Environment.schedule_entry`, the
single point that issues the monotone tie counter; nothing else may
touch the queue, or tie ordering (and with it determinism) breaks.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.simulate.calendar import make_event_queue

#: Priority classes for simultaneous events.  URGENT fires before NORMAL at
#: the same timestamp; used by the kernel for interrupts.
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value given to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()  # sentinel: event value not yet decided


class Event:
    """A one-shot occurrence that processes can wait for.

    An event moves through three states: *pending* (created), *triggered*
    (scheduled to fire at some time), and *processed* (callbacks have run).
    Waiting is expressed by yielding the event from a process generator.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True
        self._scheduled = False
        self._processed = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.env.schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure carrying ``exception``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._value = exception
        self._ok = False
        self.env.schedule(self, delay=delay)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires automatically ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        self.env.schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._value = None
        self._ok = True
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A running generator coroutine.

    A process *is* an event: it fires when the generator returns (value =
    return value) or raises (failure).  Other processes can therefore wait
    on it or interrupt it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self._target is None:
            raise SimulationError(f"{self.name} cannot interrupt itself")
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev.callbacks.append(self._resume)
        self.env.schedule(interrupt_ev, priority=URGENT)
        # Deregister from the old target so a later trigger is ignored.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    # -- generator driving --------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        self.env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_ev = self._generator.send(event._value)
                else:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        next_ev = self._generator.throw(exc)
                    else:  # pragma: no cover - defensive
                        next_ev = self._generator.throw(
                            SimulationError(repr(exc)))
            except StopIteration as stop:
                self._target = None
                self._value = stop.value
                self._ok = True
                self.env.schedule(self)
                break
            except BaseException as err:
                self._target = None
                self._value = err
                self._ok = False
                if self.callbacks:
                    self.env.schedule(self)
                else:
                    # Nobody is waiting: surface the crash instead of
                    # swallowing it silently.
                    self.env._active_proc = None
                    raise
                break

            if not isinstance(next_ev, Event):
                msg = (f"process {self.name!r} yielded {next_ev!r}; "
                       "processes must yield Event instances")
                self._generator.throw(SimulationError(msg))
                continue
            if next_ev.env is not self.env:
                raise SimulationError("event belongs to a different Environment")

            if next_ev._processed:
                # Already fired and delivered: re-deliver its value now.
                event = next_ev
                continue
            # Wait for it.
            assert next_ev.callbacks is not None
            next_ev.callbacks.append(self._resume)
            self._target = next_ev
            break
        self.env._active_proc = None


class AggregateEvent(Event):
    """One heap entry that fires a batch of member events together.

    The batched-completion primitive behind the phantom fast path: a
    P-rank collective resolves all P per-rank completion events through a
    single scheduled entry instead of P separate ones.  Members are
    resolved (value assigned) when added and delivered — callbacks run,
    ``processed`` becomes true — when the aggregate itself fires.
    Members fire in the order they were added.
    """

    __slots__ = ("members",)

    def __init__(self, env: "Environment"):
        super().__init__(env)
        self.members: list[Event] = []
        self._value = None
        self._ok = True
        assert self.callbacks is not None
        self.callbacks.append(self._fire_members)

    def add(self, event: Event, value: Any = None, ok: bool = True) -> None:
        """Attach ``event`` as a member resolving to ``value``."""
        if event.triggered or event._scheduled:
            raise SimulationError(f"{event!r} already triggered/scheduled")
        if event.env is not self.env:
            raise SimulationError("event belongs to a different Environment")
        event._value = value
        event._ok = ok
        # The aggregate owns delivery; nothing else may schedule it.
        event._scheduled = True
        self.members.append(event)

    def _fire_members(self, _event: Event) -> None:
        for member in self.members:
            callbacks = member.callbacks
            member.callbacks = None
            member._processed = True
            if callbacks:
                for cb in callbacks:
                    cb(member)


class _Condition(Event):
    """Base for AllOf/AnyOf: fires when ``_check`` says enough children did."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("all events must share one Environment")
            if ev._processed:
                self._on_child(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._on_child)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events
                if ev._processed and ev._ok}

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._check():
            self.succeed(self._collect())

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every child event has fired successfully."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._count == len(self.events)


class AnyOf(_Condition):
    """Fires as soon as any child event fires."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._count >= 1


class Environment:
    """The simulation world: clock + event queue + process factory."""

    def __init__(self, initial_time: float = 0.0, *,
                 kernel: str = "calendar"):
        self._now = float(initial_time)
        try:
            self._queue = make_event_queue(kernel)
        except ValueError as err:
            raise SimulationError(str(err)) from None
        self.kernel = kernel
        self._seq = 0
        self._active_proc: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- scheduling ---------------------------------------------------------
    def schedule_entry(self, event: Event, when: float,
                       priority: int) -> None:
        """The one queue entry point: issue a tie number, enqueue.

        Every scheduling path must come through here (``schedule``,
        ``schedule_at``, ``wake_at``, ``schedule_many`` all do) so the
        monotone ``seq`` counter covers the whole queue — an entry
        pushed around it could tie-break nondeterministically.
        """
        if when != when:  # NaN would silently corrupt the queue order
            raise SimulationError("event time is NaN")
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        self._queue.push(when, priority, self._seq, event)

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Enqueue ``event`` to fire at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self.schedule_entry(event, self._now + delay, priority)

    def schedule_at(self, event: Event, when: float,
                    priority: int = NORMAL) -> None:
        """Enqueue ``event`` to fire at the absolute time ``when``.

        The phantom fast path computes completion times as absolute
        clocks; scheduling them as ``now + (when - now)`` would lose the
        last bit to float association, so this bypasses the delay form.
        """
        if when < self._now:
            raise SimulationError(f"schedule_at({when}) is in the past "
                                  f"(now {self._now})")
        self.schedule_entry(event, when, priority)

    def wake_at(self, when: float, value: Any = None) -> Event:
        """An event that fires at the absolute time ``when``."""
        ev = Event(self)
        ev._value = value
        ev._ok = True
        self.schedule_at(ev, when)
        return ev

    def schedule_many(self, completions, priority: int = NORMAL
                      ) -> list["AggregateEvent"]:
        """Schedule many ``(event, value, when)`` completions at once.

        ``when`` is an absolute simulated time.  Completions sharing a
        time are grouped into one :class:`AggregateEvent`, so N
        simultaneous logical completions cost one heap entry.  Within a
        group, events fire in input order.  Returns the aggregates (one
        per distinct time).
        """
        groups: dict[float, AggregateEvent] = {}
        for event, value, when in completions:
            agg = groups.get(when)
            if agg is None:
                agg = groups[when] = AggregateEvent(self)
            agg.add(event, value)
        for when, agg in groups.items():
            self.schedule_at(agg, when, priority=priority)
        return list(groups.values())

    # -- factories ------------------------------------------------------------
    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- main loop ------------------------------------------------------------
    def step(self) -> None:
        """Fire the next event in the queue."""
        if not self._queue:
            raise SimulationError("step() on an empty queue")
        when, _prio, _seq, event = self._queue.pop()
        if when < self._now:  # pragma: no cover - queue guarantees order
            raise SimulationError("time went backwards")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None  # new waiters see a processed event
        event._processed = True
        assert callbacks is not None
        for cb in callbacks:
            cb(event)

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._queue.peek_when()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a number (absolute simulated time), an
        :class:`Event` (run until it fires; returns its value), or ``None``
        (run to exhaustion).
        """
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not self._queue:
                    raise SimulationError(
                        "queue drained before the awaited event fired")
                self.step()
            if not stop._ok and isinstance(stop._value, BaseException):
                raise stop._value
            return stop._value
        deadline = float("inf") if until is None else float(until)
        if deadline != float("inf") and deadline < self._now:
            raise SimulationError(f"until={deadline} is in the past")
        # Hot loop: one pop_due call per event (a fused peek + pop), the
        # firing inlined from step() to keep per-event overhead down.
        pop_due = self._queue.pop_due
        while True:
            entry = pop_due(deadline)
            if entry is None:
                break
            when, _prio, _seq, event = entry
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            assert callbacks is not None
            for cb in callbacks:
                cb(event)
        if deadline != float("inf"):
            self._now = deadline
        return None
