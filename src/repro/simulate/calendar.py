"""Event-queue kernels: the reference binary heap and a calendar queue.

The simulation kernel totally orders scheduled events by the key
``(time, priority, seq)`` — ``seq`` is a monotone tie counter issued by
the :class:`~repro.simulate.engine.Environment`, so the key is unique
and *any* correct priority queue yields the identical pop sequence.
That is the determinism contract: swapping the queue implementation can
never reorder a simulation (guarded by ``tests/test_calendar_queue.py``).

Two implementations share one small interface (``push`` / ``pop`` /
``pop_due`` / ``peek_when`` / ``__len__``):

:class:`HeapEventQueue`
    The seed kernel's ``heapq`` — O(log n) per operation.  Kept as the
    reference for equivalence tests and the heap-vs-calendar ablation
    in ``benchmarks/test_perf_engine.py``.

:class:`CalendarEventQueue`
    A slotted calendar queue (Brown 1988, hash-mapped variant): events
    hash into buckets of ``width`` simulated seconds keyed by their
    absolute slot number, giving O(1) amortized enqueue and dequeue.
    Instead of the classic linear year scan, a small heap of active
    slot numbers finds the next non-empty bucket (cheap integer
    comparisons; empty-bucket scans never happen).  Buckets are plain
    lists kept unsorted until their slot becomes current, then sorted
    once (C timsort) and consumed from the tail.  The bucket width
    re-derives itself from the live event population whenever the mean
    occupancy drifts out of band, so the structure tracks whatever
    time-scale the simulation currently runs at.

    Small populations stay on a plain heap (``_SPILL``/``_COLLAPSE``
    hysteresis): the C heap is unbeatable below a few thousand pending
    events, and the calendar's constant factor only pays for itself
    once the heap's O(log n) comparisons dominate.  See
    ``docs/engine.md`` for the design and the resize policy.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Optional

_INF = float("inf")

#: Entry tuples are packed records ``(when, priority, seq, handler_id,
#: arg)``, compared left-to-right.  ``seq`` is unique (the Environment's
#: monotone tie counter), so comparisons never reach the handler id or
#: the argument — the queue stores them opaquely and pop order is fully
#: determined by the ``(when, priority, seq)`` key, exactly as it was
#: for the seed kernel's ``(when, priority, seq, event)`` entries.
Entry = tuple  # (float, int, int, int, Any)


class HeapEventQueue:
    """The seed kernel's binary heap, behind the queue interface."""

    __slots__ = ("_heap",)

    kind = "heap"

    def __init__(self) -> None:
        self._heap: list[Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, when: float, priority: int, seq: int,
             handler_id: int, arg: Any) -> None:
        heappush(self._heap, (when, priority, seq, handler_id, arg))

    def pop(self) -> Entry:
        return heappop(self._heap)

    def pop_due(self, deadline: float) -> Optional[Entry]:
        """Pop the next entry if its time is <= ``deadline``, else None."""
        heap = self._heap
        if heap and heap[0][0] <= deadline:
            return heappop(heap)
        return None

    def peek_when(self) -> float:
        heap = self._heap
        return heap[0][0] if heap else _INF


class CalendarEventQueue:
    """Slotted calendar queue with heap fallback for small populations.

    Events land in the bucket ``int(when / width)`` (the *absolute*
    slot — buckets live in a dict, so there is no modulo wrap and no
    collision between years).  A heap of active slot numbers yields the
    next non-empty bucket; within a bucket the full ``(when, priority,
    seq)`` key orders entries, so pops are bit-identical to the
    reference heap's.

    Buckets stay append-only until their slot becomes the current one;
    the first pop from a slot sorts the bucket descending and further
    pops take O(1) from the tail.  A push *into* the current slot (a
    zero-delay cascade) just invalidates the sorted cache — timsort
    re-sorts the nearly-sorted bucket in close to linear time.
    """

    __slots__ = ("_heap", "_slots", "_slot_heap", "_inv", "_cur",
                 "_size", "_pushes", "_calendar", "resizes", "spills")

    kind = "calendar"

    #: Population at which the heap spills into calendar buckets, and
    #: the level at which the calendar collapses back (hysteresis).
    _SPILL = 4096
    _COLLAPSE = 1024
    #: Events per bucket the resize aims for, and the occupancy band
    #: outside which a resize triggers.
    _TARGET = 8.0
    _MIN_OCC = 2.0
    _MAX_OCC = 48.0
    #: Push-counter mask between occupancy checks (power of two - 1).
    _CHECK_MASK = 4095

    def __init__(self) -> None:
        self._heap: list[Entry] = []          # heap mode storage
        self._slots: dict[int, list[Entry]] = {}
        self._slot_heap: list[int] = []       # active slot numbers
        self._inv = 1.0                       # 1 / bucket width
        self._cur: Optional[int] = None       # slot whose bucket is sorted
        self._size = 0
        self._pushes = 0
        self._calendar = False
        #: Diagnostics for the benchmark/doc: width recomputations and
        #: heap<->calendar transitions taken.
        self.resizes = 0
        self.spills = 0

    def __len__(self) -> int:
        return self._size

    # -- scheduling --------------------------------------------------------
    def push(self, when: float, priority: int, seq: int,
             handler_id: int, arg: Any) -> None:
        self._size += 1
        if not self._calendar:
            heappush(self._heap, (when, priority, seq, handler_id, arg))
            if self._size > self._SPILL:
                self._spill()
            return
        slot = int(when * self._inv) if when < _INF else _INF
        bucket = self._slots.get(slot)
        if bucket is None:
            self._slots[slot] = [(when, priority, seq, handler_id, arg)]
            heappush(self._slot_heap, slot)
        else:
            bucket.append((when, priority, seq, handler_id, arg))
            if slot == self._cur:
                self._cur = None
        self._pushes += 1
        if not (self._pushes & self._CHECK_MASK):
            self._maybe_resize()

    # -- dequeueing --------------------------------------------------------
    def pop(self) -> Entry:
        if not self._calendar:
            self._size -= 1
            return heappop(self._heap)
        slot = self._slot_heap[0]
        bucket = self._slots[slot]
        if slot != self._cur:
            bucket.sort()
            bucket.reverse()
            self._cur = slot
        entry = bucket.pop()
        if not bucket:
            del self._slots[slot]
            heappop(self._slot_heap)
            self._cur = None
        self._size -= 1
        if self._size < self._COLLAPSE:
            self._collapse()
        return entry

    def pop_due(self, deadline: float) -> Optional[Entry]:
        """Pop the next entry if its time is <= ``deadline``, else None."""
        if not self._calendar:
            heap = self._heap
            if heap and heap[0][0] <= deadline:
                self._size -= 1
                return heappop(heap)
            return None
        if not self._slot_heap:
            return None
        slot = self._slot_heap[0]
        if slot is not _INF and slot > 0 and slot > deadline * self._inv:
            # Every entry in a positive slot s has time >= s * width,
            # so s > deadline/width means nothing there is due yet.
            return None
        bucket = self._slots[slot]
        if slot != self._cur:
            bucket.sort()
            bucket.reverse()
            self._cur = slot
        if bucket[-1][0] > deadline:
            return None
        entry = bucket.pop()
        if not bucket:
            del self._slots[slot]
            heappop(self._slot_heap)
            self._cur = None
        self._size -= 1
        if self._size < self._COLLAPSE:
            self._collapse()
        return entry

    def peek_when(self) -> float:
        if not self._calendar:
            heap = self._heap
            return heap[0][0] if heap else _INF
        if not self._slot_heap:
            return _INF
        slot = self._slot_heap[0]
        bucket = self._slots[slot]
        if slot != self._cur:
            bucket.sort()
            bucket.reverse()
            self._cur = slot
        return bucket[-1][0]

    # -- mode transitions --------------------------------------------------
    def _spill(self) -> None:
        """Heap -> calendar: bucket the population at a derived width."""
        entries = self._heap
        self._heap = []
        self._calendar = True
        self.spills += 1
        self._rebuild(entries)

    def _collapse(self) -> None:
        """Calendar -> heap: small populations run faster on the C heap."""
        entries = [e for b in self._slots.values() for e in b]
        self._slots.clear()
        self._slot_heap.clear()
        self._cur = None
        self._calendar = False
        self.spills += 1
        heapify(entries)
        self._heap = entries

    # -- self-resizing bucket width ---------------------------------------
    def _maybe_resize(self) -> None:
        nslots = len(self._slots)
        occupancy = self._size / nslots if nslots else self._TARGET
        if self._MIN_OCC <= occupancy <= self._MAX_OCC:
            return
        entries = [e for b in self._slots.values() for e in b]
        self._slots.clear()
        self._slot_heap.clear()
        self._rebuild(entries)

    def _rebuild(self, entries: list[Entry]) -> None:
        """Re-bucket ``entries`` at a width targeting ``_TARGET`` events
        per bucket over the population's current time span."""
        finite_lo = _INF
        finite_hi = -_INF
        for entry in entries:
            when = entry[0]
            if when < finite_lo:
                finite_lo = when
            if finite_hi < when < _INF:
                finite_hi = when
        span = finite_hi - finite_lo
        if span > 0:
            width = span / max(1.0, len(entries) / self._TARGET)
            extreme = max(abs(finite_lo), abs(finite_hi))
            if width > 0 and extreme / width < 2.0 ** 53:
                # Slots must stay exactly representable; an extreme
                # span/width ratio keeps the previous width instead.
                self._inv = 1.0 / width
        self.resizes += 1
        inv = self._inv
        slots = self._slots
        for entry in entries:
            when = entry[0]
            slot = int(when * inv) if when < _INF else _INF
            bucket = slots.get(slot)
            if bucket is None:
                slots[slot] = [entry]
            else:
                bucket.append(entry)
        slot_heap = list(slots)
        heapify(slot_heap)
        self._slot_heap = slot_heap
        self._cur = None


def make_event_queue(kernel: str):
    """Factory: ``"calendar"`` (default kernel) or ``"heap"`` (reference)."""
    if kernel == "calendar":
        return CalendarEventQueue()
    if kernel == "heap":
        return HeapEventQueue()
    raise ValueError(f"unknown event-queue kernel {kernel!r}")
