"""Discrete-event simulation engine.

A small, deterministic, generator-coroutine discrete-event kernel in the
style of SimPy.  Every active entity in the reproduction — MPI ranks,
scheduler threads, NIC transfers, disks — is a :class:`Process` driving a
Python generator.  Processes interact by yielding *events*:

* :class:`Timeout` — resume after simulated seconds elapse.
* :class:`Event` — a bare one-shot event another process can ``succeed``.
* :class:`AllOf` / :class:`AnyOf` — composite conditions.
* ``Store.get()`` / ``Store.put()`` — FIFO channels.
* ``Resource.request()`` — mutual exclusion (e.g. a NIC).

The engine is single-threaded and fully deterministic: ties in the event
queue break on a monotone sequence number, so identical inputs always give
identical trajectories.
"""

from repro.simulate.calendar import (
    CalendarEventQueue,
    HeapEventQueue,
    make_event_queue,
)
from repro.simulate.engine import (
    HANDLER_BATCH,
    HANDLER_EVENT,
    HANDLER_RESUME,
    AllOf,
    AnyOf,
    Batch,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Sleep,
    Timeout,
)
from repro.simulate.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Batch",
    "CalendarEventQueue",
    "Environment",
    "Event",
    "HANDLER_BATCH",
    "HANDLER_EVENT",
    "HANDLER_RESUME",
    "HeapEventQueue",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Sleep",
    "Store",
    "Timeout",
    "make_event_queue",
]
