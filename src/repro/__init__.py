"""ReSHAPE reproduction: dynamic resizing and scheduling of parallel
applications on a simulated distributed-memory cluster.

See README.md for the architecture overview and docs/sweep.md for the
declarative experiment API.  Top-level conveniences:

>>> import repro
>>> spec = repro.ScenarioSpec(kind="schedule", workload="w1")
>>> result = repro.run(spec)                    # one scenario
>>> grid = [spec, spec.but(dynamic=False)]
>>> sweep = repro.sweep(grid, max_workers=2)    # a grid, in parallel
>>> sweep.scenarios[0].turnarounds
{...}

Scenario specs are frozen, picklable and JSON-round-trippable
(``ScenarioSpec.from_dict`` / ``to_dict``), so grids can be literal
dicts or live in JSON files; ``repro.run``/``repro.sweep`` accept both
specs and dicts.  The imperative surface is still available:

>>> from repro import ReshapeFramework, make_application
>>> fw = ReshapeFramework(num_processors=36)
>>> job = fw.submit(make_application("lu", 12000), config=(1, 2))
>>> fw.run()
"""

from typing import Optional, Sequence, Union

from repro.core.framework import ReshapeFramework
from repro.sweep.resolver import run_scenario
from repro.sweep.runner import SweepResult, SweepRunner, sweep_scenarios
from repro.sweep.spec import (
    ScenarioError,
    ScenarioOutcome,
    ScenarioResult,
    ScenarioSpec,
)
from repro.workloads.paper import JobSpec, make_application

__version__ = "0.2.0"


def run(spec: Union[ScenarioSpec, dict]) -> ScenarioResult:
    """Run one declarative scenario (spec or JSON-safe dict)."""
    return run_scenario(spec)


def sweep(specs: Sequence[Union[ScenarioSpec, dict]], *,
          max_workers: Optional[int] = None,
          timeout: Optional[float] = None,
          **runner_kwargs) -> SweepResult:
    """Fan a grid of scenarios across worker processes and merge.

    ``max_workers=None`` uses every core; ``1`` runs in-process.  This
    function shadows the :mod:`repro.sweep` package as an attribute of
    ``repro`` on purpose — ``from repro.sweep import ...`` still
    imports the package.
    """
    return sweep_scenarios(specs, max_workers=max_workers,
                           timeout=timeout, **runner_kwargs)


__all__ = [
    "JobSpec",
    "ReshapeFramework",
    "ScenarioError",
    "ScenarioOutcome",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepResult",
    "SweepRunner",
    "__version__",
    "make_application",
    "run",
    "run_scenario",
    "sweep",
]
