"""ReSHAPE reproduction: dynamic resizing and scheduling of parallel
applications on a simulated distributed-memory cluster.

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.  Top-level conveniences:

>>> from repro import ReshapeFramework, make_application
>>> fw = ReshapeFramework(num_processors=36)
>>> job = fw.submit(make_application("lu", 12000), config=(1, 2))
>>> fw.run()
"""

from repro.core.framework import ReshapeFramework
from repro.workloads.paper import make_application

__version__ = "0.1.0"

__all__ = ["ReshapeFramework", "make_application", "__version__"]
