#!/usr/bin/env python
"""CI benchmark-regression gate.

Compares freshly produced smoke benchmark JSONs against the committed
baselines in ``benchmarks/baselines/`` and exits non-zero when any
tracked metric regresses by more than the tolerance (default 25%).

Tracked metrics are *same-host ratios* (the ``speedup`` of an optimized
leg over its reference leg, both measured in the same process seconds
apart), not absolute seconds: a ratio transfers across runner
generations and load levels, while an absolute-time baseline recorded
on one host fails forever on a slower one.  A fast-path regression
still shows up — slowing the optimized leg drops its speedup exactly
the way it raises its host time.

Usage (CI runs exactly this after the smoke benchmarks)::

    python scripts/check_bench.py
    python scripts/check_bench.py --results benchmarks/results \
        --baselines benchmarks/baselines --tolerance 0.25

Verified locally by injecting a slowdown into a fast-path leg and
watching the gate fail (see docs/engine.md §CI gate).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: file -> list of tracked-metric entries.  Baseline-relative entries,
#: ``(path, "higher")`` / ``(path, "lower")``, compare against the
#: committed baseline with the tolerance; ``higher`` means the metric
#: is a speedup (regression = falling below baseline), ``lower`` gates
#: a raw time.  Absolute entries need no baseline value:
#: ``(path, "within", lo, hi)`` gates a band (the paper's 4.5-14.5x
#: checkpoint ratio), ``(path, "atleast", x)`` a floor, and
#: ``(path, "flag")`` requires a literal ``true``.
#:
#: A metric recorded as an explicit JSON ``null`` is skipped with a
#: notice — the producer measured it as unavailable on this host (e.g.
#: parallel speedup on a single-core runner) — while a *missing* key
#: still fails: silence is a broken producer, null is an honest one.
TRACKED: dict[str, list[tuple]] = {
    "BENCH_engine_smoke.json": [
        ("raw_kernel.speedup", "higher"),
        ("raw_kernel.hold.speedup", "higher"),
        ("packed_dispatch.speedup", "higher"),
        ("scheduler.speedup_vs_seed", "higher"),
    ],
    "BENCH_redist_smoke.json": [
        ("bookkeeping.speedup", "higher"),
        ("schedule_build.speedup", "higher"),
    ],
    "BENCH_phantom_smoke.json": [
        ("speedup", "higher"),
        ("redist_delivery.speedup", "higher"),
    ],
    "BENCH_sweep_smoke.json": [
        ("checkpoint.ratio_min", "within", 4.5, 14.5),
        ("checkpoint.ratio_max", "within", 4.5, 14.5),
        ("checkpoint.in_band", "flag"),
        ("parallel.bit_identical", "flag"),
        ("parallel.speedup", "atleast", 1.7),
    ],
}

#: Sentinel distinguishing a missing key from an explicit JSON null.
MISSING = object()


def lookup(data: dict, path: str, default=None):
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return default
        node = node[part]
    return node


def check_file(name: str, metrics, results_dir: pathlib.Path,
               baselines_dir: pathlib.Path, tolerance: float) -> list[str]:
    failures: list[str] = []
    baseline_path = baselines_dir / name
    result_path = results_dir / name
    if not baseline_path.exists():
        print(f"  {name}: no baseline committed — skipped")
        return failures
    if not result_path.exists():
        failures.append(f"{name}: benchmark result missing "
                        f"(expected {result_path})")
        return failures
    baseline = json.loads(baseline_path.read_text())
    result = json.loads(result_path.read_text())
    for entry in metrics:
        path, direction = entry[0], entry[1]
        base = None
        if direction in ("higher", "lower"):
            base = lookup(baseline, path)
            if base is None:
                print(f"  {name}:{path}: not in baseline — skipped")
                continue
        cand = lookup(result, path, MISSING)
        if cand is MISSING:
            failures.append(f"{name}:{path}: missing from results")
            continue
        if cand is None:
            reason = lookup(result, f"{path}_skipped") or "recorded null"
            print(f"  skip {name}:{path}: {reason}")
            continue
        if direction in ("higher", "lower"):
            if direction == "higher":
                floor = base * (1.0 - tolerance)
                ok = cand >= floor
                verdict = (f"{cand:.3f} vs baseline {base:.3f} "
                           f"(floor {floor:.3f})")
            else:
                ceiling = base * (1.0 + tolerance)
                ok = cand <= ceiling
                verdict = (f"{cand:.3f} vs baseline {base:.3f} "
                           f"(ceiling {ceiling:.3f})")
        elif direction == "within":
            lo, hi = entry[2], entry[3]
            ok = lo <= cand <= hi
            verdict = f"{cand:.3f} vs band [{lo:g}, {hi:g}]"
        elif direction == "atleast":
            floor = entry[2]
            ok = cand >= floor
            verdict = f"{cand:.3f} vs floor {floor:g}"
        elif direction == "flag":
            ok = cand is True
            verdict = f"{cand!r} (must be true)"
        else:  # pragma: no cover - a typo in TRACKED
            raise ValueError(f"unknown direction {direction!r}")
        marker = "ok  " if ok else "FAIL"
        print(f"  {marker} {name}:{path}: {verdict}")
        if not ok:
            failures.append(f"{name}:{path}: {verdict}")
    return failures


def main(argv=None) -> int:
    root = pathlib.Path(__file__).resolve().parents[1]
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", type=pathlib.Path,
                        default=root / "benchmarks" / "results")
    parser.add_argument("--baselines", type=pathlib.Path,
                        default=root / "benchmarks" / "baselines")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (0.25 = 25%%)")
    args = parser.parse_args(argv)

    print(f"benchmark regression gate: tolerance {args.tolerance:.0%}")
    failures: list[str] = []
    for name, metrics in TRACKED.items():
        failures.extend(check_file(name, metrics, args.results,
                                   args.baselines, args.tolerance))
    if failures:
        print(f"\n{len(failures)} tracked metric(s) regressed:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
