#!/usr/bin/env python
"""Porting your own iterative code to ReSHAPE (paper §3.2.3).

The paper's pitch is that a conventional SPMD program needs only small
changes to become resizable: mark the resize point at the end of the
outer loop and declare the global data.  This example writes a new
application from scratch — a distributed power-iteration eigensolver —
ports it to the :class:`~repro.apps.Application` interface, and runs it
resizable under the framework.

Run:  python examples/port_an_application.py
"""

import numpy as np

from repro.apps.base import AppContext, Application
from repro.blacs import ProcessGrid
from repro.core import ReshapeFramework
from repro.darray import Descriptor, DistributedMatrix, numroc
from repro.darray.blockcyclic import cyclic_global_indices
from repro.mpi import Phantom, SUM


class PowerIteration(Application):
    """Dominant-eigenvector solver: x <- A x / ||A x|| each sweep.

    Structure mirrors the paper's target applications: a global 2-D
    array (row strips), a replicated small vector, an outer iteration of
    uniform cost — so it resizes with zero extra effort.
    """

    topology = "flat"
    sweeps_per_iteration = 10

    @property
    def name(self) -> str:
        return "PowerIteration"

    def default_block(self) -> int:
        return max(1, self.problem_size // 20)

    def create_data(self, grid: ProcessGrid):
        if grid.pc != 1:
            grid = ProcessGrid(grid.size, 1)
        desc = Descriptor(m=self.problem_size, n=self.problem_size,
                          mb=self.block, nb=self.problem_size,
                          grid=grid)
        if self.materialized:
            rng = np.random.default_rng(42)
            n = self.problem_size
            a = rng.standard_normal((n, n))
            a = a + a.T  # symmetric: real dominant eigenpair
            # A rank-one boost isolates the top eigenvalue so the power
            # method converges within the demo's sweep budget.
            v = rng.standard_normal(n)
            v /= np.linalg.norm(v)
            a += 8.0 * np.sqrt(n) * np.outer(v, v)
            return {"A": DistributedMatrix.from_global(a, desc)}
        return {"A": DistributedMatrix(desc, materialized=False)}

    def legal_configs(self, max_procs, min_procs=1):
        return [(p, 1) for p in range(min_procs, max_procs + 1)
                if self.problem_size % p == 0]

    def iterate(self, ctx: AppContext):
        """One outer iteration = a batch of power-method sweeps.

        This is the *entire* port: ordinary distributed numpy code with
        `yield from` on the communication calls.  The resize point is
        wherever this generator returns.
        """
        a = ctx.data["A"]
        desc = a.desc
        n, pr = desc.n, desc.grid.pr
        myrow = ctx.blacs.myrow
        lm = numroc(n, desc.mb, myrow, 0, pr)
        state = ctx.data.setdefault("_x", {})
        x = state.get("x")
        if a.materialized and x is None:
            x = np.ones(n) / np.sqrt(n)

        for _ in range(self.sweeps_per_iteration):
            yield from ctx.charge(2.0 * lm * n)     # local strip matvec
            if a.materialized:
                rows = cyclic_global_indices(n, desc.mb, myrow, 0, pr)
                piece = (rows, a.local(ctx.comm.rank) @ x)
            else:
                piece = Phantom(lm * 8)
            pieces = yield from ctx.comm.allgather(piece)
            if a.materialized:
                y = np.empty(n)
                for rows, vals in pieces:
                    y[rows] = vals
                norm2 = yield from ctx.comm.allreduce(
                    float(y @ y), SUM)
                x = y / np.sqrt(norm2 / ctx.comm.size)
            else:
                yield from ctx.comm.allreduce(0.0, SUM)
        if a.materialized and ctx.comm.rank == 0:
            state["x"] = x

    def verify(self, data) -> bool:
        state = data.get("_x", {})
        if "x" not in state or not data["A"].materialized:
            return True
        a = data["A"].to_global()
        x = state["x"]
        lam = x @ a @ x
        return bool(np.linalg.norm(a @ x - lam * x) < 1e-6 * abs(lam))


def main() -> None:
    framework = ReshapeFramework(num_processors=20)
    app = PowerIteration(200, iterations=8, materialized=True)
    job = framework.submit(app, config=(2, 1), name="power-iteration")
    framework.run()

    print(f"job finished: {job.state.value}, "
          f"turn-around {job.turnaround:.2f} s")
    print("allocation path:",
          " -> ".join(f"{c[0] * c[1]}"
                      for c in dict.fromkeys(
                          cfg for _i, cfg, _t, _r in job.iteration_log)))
    print("eigenpair verified:", app.verify(job.data))


if __name__ == "__main__":
    main()
