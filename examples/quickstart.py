#!/usr/bin/env python
"""Quickstart: one resizable job under ReSHAPE, start to finish.

Runs an LU factorization job on a simulated 16-processor cluster.  The
job starts on 2 processors; at each resize point the Remap Scheduler
grows it while iterations keep getting faster, detects the sweet spot
(the first expansion that makes things worse), shrinks back, and holds.

Run:  python examples/quickstart.py
"""

from repro.core import ReshapeFramework
from repro.metrics import format_table
from repro.workloads.paper import make_application


def main() -> None:
    # A simulated 36-processor slice of a System X-like cluster.
    framework = ReshapeFramework(num_processors=36)

    # LU factorization of a 12000 x 12000 matrix, 10 outer iterations.
    # (Phantom data: the communication schedule is real, the matrix
    # entries are not materialized.)
    app = make_application("lu", 12000, iterations=10)
    job = framework.submit(app, config=(1, 2), name="lu-demo")

    framework.run()

    rows = []
    prev = None
    for iteration, config, t, redist in job.iteration_log:
        procs = config[0] * config[1]
        rows.append([iteration, f"{config[0]}x{config[1]}", procs, t,
                     None if prev is None else prev - t, redist])
        prev = t
    print(format_table(
        ["iter", "grid", "procs", "time (s)", "dT (s)", "redist (s)"],
        rows, title="LU(12000) under ReSHAPE dynamic resizing"))
    print(f"\njob state: {job.state.value}")
    print(f"turn-around time: {job.turnaround:.1f} s")
    print(f"total redistribution overhead: {job.redistribution_time:.1f} s")
    print(f"cluster utilization: {framework.utilization():.1%}")


if __name__ == "__main__":
    main()
