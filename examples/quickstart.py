#!/usr/bin/env python
"""Quickstart: one resizable job under ReSHAPE, start to finish.

Runs an LU factorization job on a simulated cluster via the declarative
facade: a :class:`repro.ScenarioSpec` describes the experiment, and
``repro.run`` resolves it.  The job starts on 2 processors; at each
resize point the Remap Scheduler grows it while iterations keep getting
faster, detects the sweet spot (the first expansion that makes things
worse), shrinks back, and holds.  A two-line ``repro.sweep`` then
contrasts the same scenario with resizing disabled.

Run:  python examples/quickstart.py
"""

import repro
from repro.metrics import format_table


def main() -> None:
    # LU factorization of a 12000 x 12000 matrix, 10 outer iterations,
    # on a 36-processor slice of a System X-like cluster.  (Phantom
    # data: the communication schedule is real, the matrix entries are
    # not materialized.)
    spec = repro.ScenarioSpec(
        kind="schedule", workload="single", app="lu", size=12000,
        start=(1, 2), iterations=10, num_processors=36, label="lu-demo")
    result = repro.run(spec)

    _name, log = result.iteration_logs[0]
    rows = []
    prev = None
    for iteration, config, t, redist in log:
        procs = config[0] * config[1]
        rows.append([iteration, f"{config[0]}x{config[1]}", procs, t,
                     None if prev is None else prev - t, redist])
        prev = t
    print(format_table(
        ["iter", "grid", "procs", "time (s)", "dT (s)", "redist (s)"],
        rows, title="LU(12000) under ReSHAPE dynamic resizing"))

    _job, _size, _arrival, turnaround, redist_time = result.job_stats[0]
    print(f"\njob state: "
          f"{'finished' if turnaround is not None else 'error'}")
    print(f"turn-around time: {turnaround:.1f} s")
    print(f"total redistribution overhead: {redist_time:.1f} s")
    print(f"cluster utilization: {result.utilization:.1%}")

    # The same experiment with resizing off, as a two-scenario sweep
    # (specs are values: .but() copies with fields replaced).
    sweep = repro.sweep([spec, spec.but(dynamic=False,
                                        label="lu-demo-static")],
                        max_workers=1)
    dyn, static = sweep.scenarios
    (dyn_ta,), (static_ta,) = (dyn.turnarounds.values(),
                               static.turnarounds.values())
    print(f"\ndynamic vs static turn-around: "
          f"{dyn_ta:.1f} s vs {static_ta:.1f} s")


if __name__ == "__main__":
    main()
