#!/usr/bin/env python
"""Scheduling a mixed workload: the paper's W1 experiment, condensed.

Five applications with staggered arrivals compete for 36 processors.
The run is performed twice — once with static scheduling (jobs keep
their initial allocation for life) and once with ReSHAPE dynamic
resizing — and the per-job turn-around times, utilization and the
busy-processor timelines are compared.

Run:  python examples/job_mix_scheduling.py        (about a minute)
      python examples/job_mix_scheduling.py --fast (3 iterations/job)
"""

import argparse

from repro.core import ReshapeFramework
from repro.metrics import (
    render_allocation_history,
    render_busy_processors,
    turnaround_table,
)
from repro.workloads import build_workload1
from repro.workloads.paper import WORKLOAD1_PROCESSORS


def run(dynamic: bool, iterations: int):
    framework = ReshapeFramework(num_processors=WORKLOAD1_PROCESSORS,
                                 dynamic=dynamic)
    jobs = build_workload1(framework, iterations=iterations)
    framework.run()
    return framework, jobs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="run 3 iterations per job instead of 10")
    args = parser.parse_args()
    iterations = 3 if args.fast else 10

    fw_static, jobs_static = run(dynamic=False, iterations=iterations)
    fw_dynamic, jobs_dynamic = run(dynamic=True, iterations=iterations)

    print("Processor allocation history (dynamic scheduling):")
    print(render_allocation_history(fw_dynamic.timeline))
    print("\nTotal busy processors, static vs dynamic:")
    print(render_busy_processors(fw_static.timeline, fw_dynamic.timeline))
    print()
    print(turnaround_table(jobs_static, jobs_dynamic,
                           title="Turn-around times (workload W1)"))
    print(f"\nutilization: static {fw_static.utilization():.1%}, "
          f"dynamic {fw_dynamic.utilization():.1%}")


if __name__ == "__main__":
    main()
