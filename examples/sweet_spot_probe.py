#!/usr/bin/env python
"""Probing for processor-count sweet spots (paper §4.1.1).

For several LU matrix sizes, measures iteration time at every legal
processor configuration (the paper's Figure 2(a) methodology) and then
lets ReSHAPE find the sweet spot adaptively, comparing the two.

Run:  python examples/sweet_spot_probe.py [--size 12000]
"""

import argparse

from repro.api import run_static
from repro.core import ReshapeFramework
from repro.metrics import format_table
from repro.workloads.paper import PROCESSOR_CONFIGS, make_application


def exhaustive_probe(size: int) -> dict[tuple[int, int], float]:
    """Static runs at every Table 2 configuration."""
    times = {}
    for config in PROCESSOR_CONFIGS[("LU", size)]:
        app = make_application("lu", size, iterations=1)
        result = run_static(app, config)
        times[config] = result.mean_iteration_time
    return times


def adaptive_probe(size: int):
    """One ReSHAPE run that discovers the sweet spot on its own."""
    framework = ReshapeFramework(num_processors=50)
    app = make_application("lu", size, iterations=10)
    start = app.legal_configs(50)[0]
    job = framework.submit(app, config=start)
    framework.run()
    return job


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=12000,
                        choices=sorted({s for (a, s) in PROCESSOR_CONFIGS
                                        if a == "LU"}))
    args = parser.parse_args()

    print(f"Exhaustive probe of LU({args.size}) "
          f"(one static run per configuration)...")
    times = exhaustive_probe(args.size)
    best = min(times, key=times.get)
    rows = [[f"{pr}x{pc}", pr * pc, t,
             "  <-- best" if (pr, pc) == best else ""]
            for (pr, pc), t in sorted(times.items(),
                                      key=lambda kv: kv[0][0] * kv[0][1])]
    print(format_table(["grid", "procs", "iteration time (s)", ""],
                       rows))

    print("\nAdaptive probe (one ReSHAPE run)...")
    job = adaptive_probe(args.size)
    visited = [cfg for _it, cfg, _t, _r in job.iteration_log]
    final = visited[-1]
    print("configurations visited:",
          " -> ".join(f"{pr}x{pc}" for pr, pc in
                      dict.fromkeys(visited)))
    print(f"ReSHAPE settled on {final[0]}x{final[1]} "
          f"({final[0] * final[1]} processors); exhaustive best was "
          f"{best[0]}x{best[1]} ({best[0] * best[1]}).")
    print(f"redistribution paid while probing: "
          f"{job.redistribution_time:.1f} s over a "
          f"{job.turnaround:.0f} s run")


if __name__ == "__main__":
    main()
