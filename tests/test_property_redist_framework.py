"""Property tests over the full resize machinery.

These drive the framework end-to-end with randomized shapes and assert
the invariants the whole design rests on: data survives any sequence of
resizes, processors are conserved, and utilization is well-defined.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps import MatMulApplication
from repro.cluster import MachineSpec
from repro.core import JobState, ReshapeFramework


@settings(deadline=None, max_examples=8)
@given(n_over_block=st.sampled_from([6, 8, 12]),
       block=st.sampled_from([6, 10, 16]),
       iterations=st.integers(3, 6),
       procs=st.sampled_from([6, 9, 12, 16]))
def test_data_integrity_under_random_resizes(n_over_block, block,
                                             iterations, procs):
    n = n_over_block * block
    fw = ReshapeFramework(num_processors=procs,
                          machine_spec=MachineSpec(num_nodes=max(procs, 4)))
    app = MatMulApplication(n, block=block, iterations=iterations,
                            materialized=True)
    job = fw.submit(app, config=(1, 2))
    fw.run()
    assert job.state == JobState.FINISHED
    rng = np.random.default_rng(99)
    a_ref = rng.standard_normal((n, n))
    b_ref = rng.standard_normal((n, n))
    np.testing.assert_allclose(job.data["A"].to_global(), a_ref)
    np.testing.assert_allclose(job.data["B"].to_global(), b_ref)
    # C holds the last product, wherever the data ended up.
    np.testing.assert_allclose(job.data["C"].to_global(),
                               a_ref @ b_ref, atol=1e-8)


@settings(deadline=None, max_examples=6)
@given(arrivals=st.lists(st.floats(0.0, 2.0), min_size=2, max_size=4),
       procs=st.sampled_from([8, 12]))
def test_processor_conservation(arrivals, procs):
    """At no recorded instant does allocation exceed the pool."""
    fw = ReshapeFramework(num_processors=procs,
                          machine_spec=MachineSpec(num_nodes=procs))
    for i, arrival in enumerate(arrivals):
        app = MatMulApplication(480, block=48, iterations=2)
        fw.submit(app, config=(1, 2), arrival=arrival, name=f"j{i}")
    fw.run()
    for _t, busy in fw.timeline.busy_processors():
        assert 0 <= busy <= procs
    assert fw.pool.free_count == procs
    for job in fw.jobs:
        assert job.state == JobState.FINISHED


@settings(deadline=None, max_examples=5)
@given(procs=st.sampled_from([6, 9, 16]), seed=st.integers(0, 100))
def test_utilization_bounded(procs, seed):
    fw = ReshapeFramework(num_processors=procs,
                          machine_spec=MachineSpec(num_nodes=max(procs, 4)))
    rng = np.random.default_rng(seed)
    for i in range(2):
        app = MatMulApplication(480, block=48, iterations=2)
        fw.submit(app, config=(1, 2),
                  arrival=float(rng.uniform(0, 1)), name=f"job{i}")
    fw.run()
    assert 0.0 <= fw.utilization() <= 1.0


@settings(deadline=None, max_examples=6)
@given(iterations=st.integers(2, 5))
def test_iteration_log_complete_under_resizing(iterations):
    fw = ReshapeFramework(num_processors=12,
                          machine_spec=MachineSpec(num_nodes=12))
    app = MatMulApplication(960, block=96, iterations=iterations)
    job = fw.submit(app, config=(1, 2))
    fw.run()
    assert [rec[0] for rec in job.iteration_log] == list(range(iterations))
    assert all(rec[2] > 0 for rec in job.iteration_log)
