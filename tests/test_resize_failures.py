"""Regression tests for the resize-path failure and accounting fixes.

* A rank spawned during an expansion that raises must reach the
  job-error path: the System Monitor reclaims every processor the job
  holds (including the freshly granted ones) and queued jobs still
  start — previously the error escaped ``_spawned_child_main`` and the
  experiment wedged with the machine looking full.
* Redistribution metrics must report the wire traffic actually
  generated (``RedistributionResult.total_bytes_moved``), not the whole
  payload — local copies never touch the network.
* The timeline must distinguish job failures (``"error"``) from
  successes (``"finish"``).
"""

from typing import Generator

import numpy as np
import pytest

from repro.apps import LUApplication
from repro.apps.base import AppContext, Application
from repro.blacs import ProcessGrid
from repro.cluster import Machine, MachineSpec
from repro.core import JobState, ReshapeFramework
from repro.darray import Descriptor, DistributedMatrix
from repro.mpi import World
from repro.redist import checkpoint_redistribute, redistribute
from repro.simulate import Environment


class ChildCrashApplication(Application):
    """Runs fine on its starting ranks; any rank that joins later (via
    expansion) raises at the end of its first iteration."""

    topology = "flat"

    def __init__(self, initial_procs: int, **kwargs):
        super().__init__(100, **kwargs)
        self.initial_procs = initial_procs

    @property
    def name(self) -> str:
        return "ChildCrasher"

    def create_data(self, grid: ProcessGrid):
        return {}

    def legal_configs(self, max_procs, min_procs=1):
        return [(1, p) for p in range(max(self.initial_procs, min_procs),
                                      max_procs + 1)]

    def iterate(self, ctx: AppContext) -> Generator:
        yield from ctx.charge(4.4e9)  # ~1 simulated second per iteration
        if ctx.comm.rank >= self.initial_procs:
            raise RuntimeError("spawned child exploded")


class NoopApplication(Application):
    """A small well-behaved job used as the queued follower."""

    topology = "flat"

    def __init__(self, **kwargs):
        super().__init__(100, **kwargs)

    @property
    def name(self) -> str:
        return "Noop"

    def create_data(self, grid: ProcessGrid):
        return {}

    def legal_configs(self, max_procs, min_procs=1):
        return [(1, p) for p in range(max(2, min_procs), max_procs + 1)]

    def iterate(self, ctx: AppContext) -> Generator:
        yield from ctx.charge(1e6)


def run_child_crash(with_follower: bool):
    fw = ReshapeFramework(num_processors=6, machine_spec=MachineSpec(num_nodes=8))
    crasher = fw.submit(
        ChildCrashApplication(initial_procs=3, iterations=6),
        config=(1, 3), name="crasher")
    follower = None
    if with_follower:
        # Arrives after the expansion has been granted but before the
        # spawned child crashes, so it genuinely waits in the queue.
        follower = fw.submit(NoopApplication(iterations=2), config=(1, 3),
                             arrival=1.8, name="follower")
    fw.run()
    return fw, crasher, follower


def test_failing_spawned_child_reaches_job_error_path():
    fw, crasher, _ = run_child_crash(with_follower=False)
    # The expansion genuinely happened (children were spawned)...
    reasons = [c.reason for c in fw.timeline.changes
               if c.job_id == crasher.job_id]
    assert "expand" in reasons
    # ...and the child's crash was converted into the job-error signal.
    assert crasher.state == JobState.FAILED
    assert fw.monitor.failed == [crasher]
    assert reasons[-1] == "error"


def test_failing_spawned_child_releases_all_processors():
    fw, crasher, _ = run_child_crash(with_follower=False)
    # Both the original allocation and the expansion grant came back.
    assert fw.pool.free_count == fw.pool.total
    assert crasher.processors == []


def test_scheduler_not_stalled_queued_job_starts_after_child_crash():
    fw, crasher, follower = run_child_crash(with_follower=True)
    assert crasher.state == JobState.FAILED
    # The follower was queued while the crasher held the machine, and
    # started only once the error freed it.
    assert follower.state == JobState.FINISHED
    assert follower.start_time >= crasher.end_time
    assert crasher.end_time > follower.arrival_time


def test_error_and_finish_remain_distinct_on_shared_timeline():
    fw, crasher, follower = run_child_crash(with_follower=True)
    errors = fw.timeline.endings("error")
    finishes = fw.timeline.endings("finish")
    assert [c.job_id for c in errors] == [crasher.job_id]
    assert [c.job_id for c in finishes] == [follower.job_id]
    assert 0.0 < fw.utilization() <= 1.0


def test_job_error_is_idempotent():
    fw, crasher, _ = run_child_crash(with_follower=False)
    before = len(fw.timeline.changes)
    fw.job_error(crasher, "late duplicate signal")
    assert len(fw.timeline.changes) == before
    assert fw.monitor.failed == [crasher]


# ---------------------------------------------------------------------------
# bytes-moved accounting
# ---------------------------------------------------------------------------

def run_redistribution(m, n, mb, nb, old, new, *, use_checkpoint=False,
                       materialized=True):
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=16))
    world = World(env, machine, launch_overhead=0.0)
    desc = Descriptor(m=m, n=n, mb=mb, nb=nb, grid=ProcessGrid(*old))
    if materialized:
        g = np.random.default_rng(3).standard_normal((m, n))
        dm = DistributedMatrix.from_global(g, desc)
    else:
        dm = DistributedMatrix(desc, materialized=False)
    results = {}

    def main(comm):
        method = checkpoint_redistribute if use_checkpoint else redistribute
        res = yield from method(comm, dm, ProcessGrid(*new))
        results[comm.rank] = res

    nprocs = max(old[0] * old[1], new[0] * new[1])
    world.launch(main, processors=list(range(nprocs)))
    env.run()
    return results


@pytest.mark.parametrize("materialized", [True, False])
def test_total_bytes_moved_matches_per_rank_wire_traffic(materialized):
    results = run_redistribution(24, 24, 2, 2, (2, 2), (2, 3),
                                 materialized=materialized)
    sent = sum(r.bytes_moved for r in results.values())
    totals = {r.total_bytes_moved for r in results.values()}
    payloads = {r.payload_nbytes for r in results.values()}
    # Every rank reports the same schedule-wide numbers, and they agree
    # with what the ranks actually put on the wire.
    assert totals == {sent}
    assert payloads == {24 * 24 * 8}
    # Some data stayed put, so wire traffic is strictly below payload.
    assert 0 < sent < 24 * 24 * 8


def test_identity_redistribution_moves_zero_bytes():
    results = run_redistribution(24, 24, 2, 2, (2, 2), (2, 2))
    res = results[0]
    assert res.total_bytes_moved == 0
    assert res.payload_nbytes == 24 * 24 * 8
    assert res.local_copies > 0


def test_checkpoint_total_bytes_matches_per_rank_traffic():
    results = run_redistribution(24, 24, 2, 2, (2, 2), (2, 3),
                                 use_checkpoint=True)
    sent = sum(r.bytes_moved for r in results.values())
    assert {r.total_bytes_moved for r in results.values()} == {sent}
    assert sent > 0


def test_profiler_records_wire_bytes_not_payload():
    """The resize history must log actual traffic, distinct from payload."""
    fw = ReshapeFramework(num_processors=16,
                          machine_spec=MachineSpec(num_nodes=16))
    app = LUApplication(480, block=48, iterations=5, materialized=True)
    job = fw.submit(app, config=(1, 2))
    fw.run()
    records = fw.profiler.redistribution_log(job.job_id).records
    assert records, "the LU job must have resized at least once"
    for rec in records:
        assert rec.bytes_moved is not None
        assert 0 <= rec.bytes_moved <= rec.nbytes
    # Block-cyclic resizes always keep some data in place, so at least
    # one record shows traffic strictly below the payload.
    assert any(rec.bytes_moved < rec.nbytes for rec in records)
    assert any(rec.bytes_moved > 0 for rec in records)
