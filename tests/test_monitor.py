"""System Monitor unit tests: resource recovery on end and on error."""

from repro.apps import LUApplication
from repro.core import Job, JobState, ProcessorPool
from repro.core.monitor import SystemMonitor


def make_job(size=4):
    job = Job(app=LUApplication(480, block=48),
              initial_config=(2, size // 2))
    return job


def test_job_end_recovers_resources():
    pool = ProcessorPool(8)
    woken = []
    monitor = SystemMonitor(pool, on_resources_freed=lambda: woken.append(1))
    job = make_job()
    job.processors = pool.allocate(4, job.job_id)
    monitor.job_started(job)
    assert job.job_id in monitor.running

    monitor.job_ended(job, now=12.5)
    assert job.state == JobState.FINISHED
    assert job.end_time == 12.5
    assert pool.free_count == 8
    assert job.processors == []
    assert monitor.finished == [job]
    assert woken == [1]


def test_job_error_recovers_resources():
    pool = ProcessorPool(8)
    monitor = SystemMonitor(pool)
    job = make_job()
    job.processors = pool.allocate(4, job.job_id)
    monitor.job_started(job)

    monitor.job_failed(job, now=3.0, error="segfault")
    assert job.state == JobState.FAILED
    assert pool.free_count == 8
    assert monitor.failed == [job]
    assert job.job_id not in monitor.running


def test_monitor_tracks_multiple_jobs():
    pool = ProcessorPool(16)
    monitor = SystemMonitor(pool)
    jobs = [make_job() for _ in range(3)]
    for job in jobs:
        job.processors = pool.allocate(4, job.job_id)
        monitor.job_started(job)
    assert len(monitor.running) == 3
    monitor.job_ended(jobs[1], now=1.0)
    assert len(monitor.running) == 2
    assert pool.free_count == 8


def test_turnaround_uses_arrival_not_start():
    job = make_job()
    job.arrival_time = 10.0
    job.start_time = 25.0
    job.end_time = 100.0
    assert job.turnaround == 90.0
