"""Unit tests for the simulated hardware substrate."""

import pytest

from repro.cluster import (
    Machine,
    MachineSpec,
    Node,
    system_x,
)
from repro.simulate import Environment


def test_node_compute_time():
    env = Environment()
    node = Node(env, 0, flop_rate=1e9)
    assert node.compute_time(2e9) == pytest.approx(2.0)


def test_node_compute_advances_clock():
    env = Environment()
    node = Node(env, 0, flop_rate=1e9)

    def proc():
        yield from node.compute(5e8)

    env.process(proc())
    env.run()
    assert env.now == pytest.approx(0.5)


def test_node_negative_flops_rejected():
    env = Environment()
    node = Node(env, 0)

    def proc():
        yield from node.compute(-1.0)

    env.process(proc())
    with pytest.raises(ValueError):
        env.run()


def test_transfer_time_formula():
    env = Environment()
    m = Machine(env, MachineSpec(num_nodes=2, nic_bandwidth=100e6,
                                 latency=50e-6, software_overhead=0.0))
    t = m.network.transfer_time(0, 1, 100_000_000)
    assert t == pytest.approx(50e-6 + 1.0)


def test_transfer_same_node_uses_memory():
    env = Environment()
    m = Machine(env, MachineSpec(num_nodes=2, memory_bandwidth=1e9,
                                 memory_latency=1e-6))
    t = m.network.transfer_time(0, 0, 1_000_000)
    assert t == pytest.approx(1e-6 + 1e-3)


def test_transfer_advances_clock():
    env = Environment()
    m = Machine(env, MachineSpec(num_nodes=2, nic_bandwidth=100e6,
                                 latency=0.0, software_overhead=0.0))

    def proc():
        yield from m.network.transfer(0, 1, 50_000_000)

    env.process(proc())
    env.run()
    assert env.now == pytest.approx(0.5)


def test_transfer_contention_serializes_at_receiver():
    """Two senders to one receiver take twice as long as one."""
    env = Environment()
    m = Machine(env, MachineSpec(num_nodes=3, nic_bandwidth=100e6,
                                 latency=0.0, contention_penalty=0.0,
                                 software_overhead=0.0))
    ends = {}

    def sender(src):
        yield from m.network.transfer(src, 2, 100_000_000)
        ends[src] = env.now

    env.process(sender(0))
    env.process(sender(1))
    env.run()
    # Each message needs 1 s of wire time into node 2's rx engine.
    assert min(ends.values()) == pytest.approx(1.0)
    assert max(ends.values()) == pytest.approx(2.0)


def test_transfer_disjoint_pairs_run_in_parallel():
    env = Environment()
    m = Machine(env, MachineSpec(num_nodes=4, nic_bandwidth=100e6,
                                 latency=0.0, software_overhead=0.0))
    ends = []

    def sender(src, dst):
        yield from m.network.transfer(src, dst, 100_000_000)
        ends.append(env.now)

    env.process(sender(0, 1))
    env.process(sender(2, 3))
    env.run()
    assert ends == [pytest.approx(1.0), pytest.approx(1.0)]


def test_contention_penalty_inflates_queued_transfers():
    """With the endpoint-congestion model on, fan-in costs extra."""
    env = Environment()
    m = Machine(env, MachineSpec(num_nodes=3, nic_bandwidth=100e6,
                                 latency=0.0, contention_penalty=0.25,
                                 software_overhead=0.0))
    ends = {}

    def sender(src):
        yield from m.network.transfer(src, 2, 100_000_000)
        ends[src] = env.now

    env.process(sender(0))
    env.process(sender(1))
    env.run()
    # First transfer unaffected; the second queued for the rx engine, so
    # it pays 1.25 s of degraded wire time after waiting 1 s.
    assert min(ends.values()) == pytest.approx(1.0)
    assert max(ends.values()) == pytest.approx(2.25)


def test_transfer_stats_accumulate():
    env = Environment()
    m = Machine(env, MachineSpec(num_nodes=2))

    def proc():
        yield from m.network.transfer(0, 1, 1000)
        yield from m.network.transfer(1, 0, 2000)

    env.process(proc())
    env.run()
    assert m.network.stats.messages == 2
    assert m.network.stats.bytes == 3000


def test_transfer_trace_records():
    env = Environment()
    m = Machine(env, MachineSpec(num_nodes=2), trace_network=True)

    def proc():
        yield from m.network.transfer(0, 1, 1000)

    env.process(proc())
    env.run()
    assert len(m.network.stats.records) == 1
    rec = m.network.stats.records[0]
    assert rec.src == 0 and rec.dst == 1 and rec.nbytes == 1000
    assert rec.duration > 0


def test_disk_write_read_times():
    env = Environment()
    m = Machine(env, MachineSpec(num_nodes=1, disk_write_bandwidth=50e6,
                                 disk_read_bandwidth=100e6))

    def proc():
        yield from m.disk.write(50_000_000)
        t_after_write = env.now
        yield from m.disk.read(100_000_000)
        return t_after_write

    p = env.process(proc())
    env.run()
    # write: seek + 1 s ; read: seek + 1 s
    assert p.value == pytest.approx(1.0 + m.disk.seek_time)
    assert env.now == pytest.approx(2.0 + 2 * m.disk.seek_time)
    assert m.disk.bytes_written == 50_000_000
    assert m.disk.bytes_read == 100_000_000


def test_disk_serializes_writers():
    env = Environment()
    m = Machine(env, MachineSpec(num_nodes=1, disk_write_bandwidth=100e6))
    ends = []

    def writer():
        yield from m.disk.write(100_000_000)
        ends.append(env.now)

    env.process(writer())
    env.process(writer())
    env.run()
    assert ends[1] > ends[0]
    assert ends[1] == pytest.approx(2.0 + 2 * m.disk.seek_time)


def test_machine_node_of_mapping():
    env = Environment()
    m = Machine(env, MachineSpec(num_nodes=4, cpus_per_node=2))
    assert m.node_of(0) == 0
    assert m.node_of(1) == 0
    assert m.node_of(2) == 1
    assert m.node_of(7) == 3
    with pytest.raises(ValueError):
        m.node_of(8)


def test_system_x_preset():
    env = Environment()
    m = system_x(env)
    assert m.total_processors == 50
    assert m.spec.flop_rate == pytest.approx(4.4e9)


def test_negative_transfer_rejected():
    env = Environment()
    m = Machine(env, MachineSpec(num_nodes=2))

    def proc():
        yield from m.network.transfer(0, 1, -5)

    env.process(proc())
    with pytest.raises(ValueError):
        env.run()
