"""Unit tests for the resizing library API (ResizeContext)."""

import numpy as np
import pytest

from repro.apps import LUApplication, MatMulApplication
from repro.cluster import MachineSpec
from repro.core import JobState, ReshapeFramework
from repro.core.policies import GreedyExpansionPolicy, ThresholdSweetSpot


def run_lu(dynamic=True, n=480, block=48, iterations=5, procs=16,
           materialized=True, **fw_kwargs):
    fw = ReshapeFramework(num_processors=procs,
                          machine_spec=MachineSpec(num_nodes=max(procs, 8)),
                          dynamic=dynamic, **fw_kwargs)
    app = LUApplication(n, block=block, iterations=iterations,
                        materialized=materialized)
    job = fw.submit(app, config=(1, 2))
    fw.run()
    return fw, job


def test_iteration_log_has_one_entry_per_iteration():
    _fw, job = run_lu(iterations=5)
    assert [rec[0] for rec in job.iteration_log] == [0, 1, 2, 3, 4]


def test_log_records_redistribution_of_previous_resize():
    _fw, job = run_lu(iterations=5)
    # Some iteration after the first must carry a redistribution cost.
    assert any(rec[3] > 0 for rec in job.iteration_log[1:])
    # The first iteration never does (no resize happened yet).
    assert job.iteration_log[0][3] == 0.0


def test_resize_points_between_iterations_only():
    """Config can only change between consecutive log entries."""
    _fw, job = run_lu(iterations=6)
    for (it1, _c1, _t1, _r1), (it2, _c2, _t2, _r2) in zip(
            job.iteration_log, job.iteration_log[1:]):
        assert it2 == it1 + 1


def test_no_resize_on_last_iteration():
    """The paper resizes between iterations; after the last one the job
    just finishes (no pointless redistribution)."""
    fw, job = run_lu(iterations=2)
    resizes = [c for c in fw.timeline.changes
               if c.reason in ("expand", "shrink")]
    finish = [c for c in fw.timeline.changes if c.reason == "finish"]
    assert finish
    assert all(r.time <= finish[0].time for r in resizes)


def test_processors_match_config_throughout():
    fw, job = run_lu(iterations=6)
    # After the run the pool has everything back.
    assert fw.pool.free_count == fw.pool.total
    assert job.processors == []


def test_framework_policies_are_pluggable():
    fw, job = run_lu(iterations=6,
                     sweet_spot=ThresholdSweetSpot(0.10),
                     expansion=GreedyExpansionPolicy())
    assert job.state == JobState.FINISHED


def test_rpc_latency_charged():
    """Each resize point costs two scheduler round-trips on rank 0."""
    fw_fast, job_fast = run_lu(iterations=4, materialized=False,
                               rpc_latency=0.0, dynamic=False)
    fw_slow, job_slow = run_lu(iterations=4, materialized=False,
                               rpc_latency=0.5, dynamic=False)
    # 3 resize points x 2 x 0.5 s = 3 s difference, plus identical work.
    delta = job_slow.turnaround - job_fast.turnaround
    assert delta == pytest.approx(3.0, abs=0.5)


def test_matmul_data_correct_after_resizes():
    fw = ReshapeFramework(num_processors=16,
                          machine_spec=MachineSpec(num_nodes=16))
    app = MatMulApplication(96, block=12, iterations=5,
                            materialized=True)
    job = fw.submit(app, config=(1, 2))
    fw.run()
    assert job.state == JobState.FINISHED
    a = job.data["A"].to_global()
    b = job.data["B"].to_global()
    c = job.data["C"].to_global()
    np.testing.assert_allclose(c, a @ b, atol=1e-9)


def test_redistribution_time_accumulates_on_job():
    _fw, job = run_lu(iterations=6)
    logged = sum(rec[3] for rec in job.iteration_log)
    assert job.redistribution_time == pytest.approx(logged, rel=0.2)


class TestPriorityScheduling:
    def test_high_priority_jumps_queue(self):
        fw = ReshapeFramework(num_processors=4,
                              machine_spec=MachineSpec(num_nodes=8),
                              dynamic=False, backfill=False)
        blocker = fw.submit(LUApplication(480, block=48, iterations=4),
                            config=(2, 2), arrival=0.0)
        low = fw.submit(LUApplication(480, block=48, iterations=2),
                        config=(2, 2), arrival=0.01, priority=0,
                        name="low")
        high = fw.submit(LUApplication(480, block=48, iterations=2),
                         config=(2, 2), arrival=0.02, priority=5,
                         name="high")
        fw.run()
        assert high.start_time < low.start_time
        assert blocker.state == JobState.FINISHED

    def test_equal_priority_stays_fcfs(self):
        fw = ReshapeFramework(num_processors=4,
                              machine_spec=MachineSpec(num_nodes=8),
                              dynamic=False, backfill=False)
        fw.submit(LUApplication(480, block=48, iterations=3),
                  config=(2, 2), arrival=0.0)
        first = fw.submit(LUApplication(480, block=48, iterations=2),
                          config=(2, 2), arrival=0.01, name="first")
        second = fw.submit(LUApplication(480, block=48, iterations=2),
                           config=(2, 2), arrival=0.02, name="second")
        fw.run()
        assert first.start_time < second.start_time
