"""Collective-operation tests for the simulated MPI layer."""

import numpy as np
import pytest

from repro.cluster import Machine, MachineSpec
from repro.mpi import MAX, MIN, MPIError, Phantom, SUM, World
from repro.simulate import Environment


def run_spmd(main, nprocs=4, num_nodes=16):
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=num_nodes))
    world = World(env, machine, launch_overhead=0.0)
    group = world.launch(main, processors=list(range(nprocs)))
    env.run()
    return env, [p.value for p in group.processes]


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7, 8, 13])
def test_bcast_all_sizes(nprocs):
    def main(comm):
        payload = "the-word" if comm.rank == 0 else None
        result = yield from comm.bcast(payload, root=0)
        return result

    _, values = run_spmd(main, nprocs=nprocs)
    assert values == ["the-word"] * nprocs


@pytest.mark.parametrize("root", [0, 1, 3])
def test_bcast_nonzero_root(root):
    def main(comm):
        payload = 123 if comm.rank == root else None
        result = yield from comm.bcast(payload, root=root)
        return result

    _, values = run_spmd(main, nprocs=4)
    assert values == [123] * 4


@pytest.mark.parametrize("nprocs", [1, 2, 5, 8])
def test_reduce_sum_scalars(nprocs):
    def main(comm):
        result = yield from comm.reduce(comm.rank + 1, SUM, root=0)
        return result

    _, values = run_spmd(main, nprocs=nprocs)
    assert values[0] == nprocs * (nprocs + 1) // 2
    assert all(v is None for v in values[1:])


def test_reduce_numpy_elementwise():
    def main(comm):
        vec = np.full(4, float(comm.rank))
        result = yield from comm.reduce(vec, SUM, root=0)
        return None if result is None else result.tolist()

    _, values = run_spmd(main, nprocs=4)
    assert values[0] == [6.0, 6.0, 6.0, 6.0]


def test_reduce_max_min():
    def main(comm):
        mx = yield from comm.allreduce(comm.rank, MAX)
        mn = yield from comm.allreduce(comm.rank, MIN)
        return (mx, mn)

    _, values = run_spmd(main, nprocs=5)
    assert values == [(4, 0)] * 5


@pytest.mark.parametrize("nprocs", [1, 2, 3, 6, 8])
def test_allreduce_sum(nprocs):
    def main(comm):
        result = yield from comm.allreduce(comm.rank, SUM)
        return result

    _, values = run_spmd(main, nprocs=nprocs)
    assert values == [sum(range(nprocs))] * nprocs


@pytest.mark.parametrize("nprocs", [1, 2, 4, 7])
def test_gather(nprocs):
    def main(comm):
        result = yield from comm.gather(comm.rank * 2, root=0)
        return result

    _, values = run_spmd(main, nprocs=nprocs)
    assert values[0] == [2 * r for r in range(nprocs)]
    assert all(v is None for v in values[1:])


@pytest.mark.parametrize("nprocs", [1, 2, 3, 5, 8])
def test_allgather_ring(nprocs):
    def main(comm):
        result = yield from comm.allgather(f"r{comm.rank}")
        return result

    _, values = run_spmd(main, nprocs=nprocs)
    expected = [f"r{r}" for r in range(nprocs)]
    assert values == [expected] * nprocs


@pytest.mark.parametrize("nprocs", [1, 2, 4, 6])
def test_scatter(nprocs):
    def main(comm):
        payloads = None
        if comm.rank == 0:
            payloads = [r * 10 for r in range(comm.size)]
        item = yield from comm.scatter(payloads, root=0)
        return item

    _, values = run_spmd(main, nprocs=nprocs)
    assert values == [r * 10 for r in range(nprocs)]


def test_scatter_wrong_length_rejected():
    def main(comm):
        payloads = [1] if comm.rank == 0 else None
        yield from comm.scatter(payloads, root=0)

    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=4))
    world = World(env, machine, launch_overhead=0.0)
    world.launch(main, processors=[0, 1])
    with pytest.raises(MPIError):
        env.run()


@pytest.mark.parametrize("nprocs", [1, 2, 3, 5])
def test_alltoall_permutation(nprocs):
    def main(comm):
        outbox = [f"{comm.rank}->{d}" for d in range(comm.size)]
        inbox = yield from comm.alltoall(outbox)
        return inbox

    _, values = run_spmd(main, nprocs=nprocs)
    for r, inbox in enumerate(values):
        assert inbox == [f"{s}->{r}" for s in range(nprocs)]


def test_barrier_synchronizes():
    """Ranks that arrive early wait for the stragglers."""
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=4))
    world = World(env, machine, launch_overhead=0.0)
    release_times = {}

    def main(comm):
        yield comm.env.timeout(float(comm.rank))  # staggered arrival
        yield from comm.barrier()
        release_times[comm.rank] = comm.env.now

    world.launch(main, processors=[0, 1, 2, 3])
    env.run()
    # Nobody leaves the barrier before the last arrival at t=3.
    assert min(release_times.values()) >= 3.0


def test_back_to_back_collectives_do_not_cross_match():
    """Two bcasts in sequence get distinct tags and stay ordered."""
    def main(comm):
        a = yield from comm.bcast("A" if comm.rank == 0 else None, root=0)
        b = yield from comm.bcast("B" if comm.rank == 0 else None, root=0)
        return (a, b)

    _, values = run_spmd(main, nprocs=6)
    assert values == [("A", "B")] * 6


def test_bcast_phantom_payload():
    def main(comm):
        payload = Phantom(5000) if comm.rank == 0 else None
        result = yield from comm.bcast(payload, root=0)
        return result.nbytes

    _, values = run_spmd(main, nprocs=4)
    assert values == [5000] * 4


def test_reduce_phantom_keeps_size():
    def main(comm):
        result = yield from comm.allreduce(Phantom(800), SUM)
        return result.nbytes

    _, values = run_spmd(main, nprocs=4)
    assert values == [800] * 4


def test_bcast_cost_scales_logarithmically():
    """Binomial bcast of a big message: time grows ~log2(P), not ~P."""
    def timed(nprocs):
        env = Environment()
        machine = Machine(env, MachineSpec(num_nodes=32, latency=0.0))
        world = World(env, machine, launch_overhead=0.0)

        def main(comm):
            payload = Phantom(112_000_000) if comm.rank == 0 else None
            yield from comm.bcast(payload, root=0)

        world.launch(main, processors=list(range(nprocs)))
        env.run()
        return env.now

    t2, t4, t16 = timed(2), timed(4), timed(16)
    assert t4 == pytest.approx(2 * t2, rel=0.05)
    assert t16 == pytest.approx(4 * t2, rel=0.05)   # log2(16)=4 rounds
