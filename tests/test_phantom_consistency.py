"""Phantom and materialized runs must agree on simulated time.

The whole phantom-mode design rests on one invariant: replacing real
payloads with byte-counted stand-ins changes *nothing* about simulated
timing.  These tests pin that invariant for each kernel (compute charges
are identical by construction; the risk is divergent communication
paths, e.g. a materialized-only branch doing an extra send).

Phantom LU additionally aggregates per-column pivot traffic, so its
timing is an approximation rather than an exact match — asserted as a
band, not an equality.
"""

import pytest

from repro.api import run_static
from repro.apps import (
    FFT2DApplication,
    JacobiApplication,
    LUApplication,
    MatMulApplication,
)
from repro.cluster import MachineSpec


def iter_time(app_cls, config, *, n, block, materialized, **app_kwargs):
    app = app_cls(n, block=block, iterations=1,
                  materialized=materialized, **app_kwargs)
    for key, value in app_kwargs.items():
        setattr(app, key, value)
    result = run_static(app, config, machine_spec=MachineSpec(num_nodes=16))
    return result.mean_iteration_time


def test_matmul_phantom_matches_materialized_exactly():
    t_mat = iter_time(MatMulApplication, (2, 2), n=96, block=12,
                      materialized=True)
    t_pha = iter_time(MatMulApplication, (2, 2), n=96, block=12,
                      materialized=False)
    assert t_pha == pytest.approx(t_mat, rel=1e-6)


def test_jacobi_phantom_close_to_materialized():
    # Phantom Jacobi samples one sweep and repeats it; the payload of a
    # materialized sweep carries index arrays too, so allow a small gap.
    t_mat = iter_time(JacobiApplication, (4, 1), n=80, block=10,
                      materialized=True)
    t_pha = iter_time(JacobiApplication, (4, 1), n=80, block=10,
                      materialized=False)
    assert t_pha == pytest.approx(t_mat, rel=0.35)


def test_fft_phantom_close_to_materialized():
    t_mat = iter_time(FFT2DApplication, (4, 1), n=64, block=4,
                      materialized=True)
    t_pha = iter_time(FFT2DApplication, (4, 1), n=64, block=4,
                      materialized=False)
    assert t_pha == pytest.approx(t_mat, rel=0.25)


def test_lu_phantom_within_band_of_materialized():
    t_mat = iter_time(LUApplication, (2, 2), n=240, block=24,
                      materialized=True)
    t_pha = iter_time(LUApplication, (2, 2), n=240, block=24,
                      materialized=False)
    # Pivot-loop aggregation + synthetic swaps: same order of magnitude.
    assert t_pha == pytest.approx(t_mat, rel=0.5)


def test_phantom_scaling_direction_matches_materialized():
    """If materialized says 4 procs beat 2, phantom must agree."""
    def pair(materialized):
        t2 = iter_time(MatMulApplication, (1, 2), n=192, block=24,
                       materialized=materialized)
        t4 = iter_time(MatMulApplication, (2, 2), n=192, block=24,
                       materialized=materialized)
        return t2, t4

    m2, m4 = pair(True)
    p2, p4 = pair(False)
    assert (m4 < m2) == (p4 < p2)
