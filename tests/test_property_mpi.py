"""Property-based tests of the MPI layer's semantic invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import Machine, MachineSpec
from repro.mpi import SUM, World
from repro.simulate import Environment


def run_spmd(main, nprocs, args=()):
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=max(nprocs, 2)))
    world = World(env, machine, launch_overhead=0.0)
    group = world.launch(main, processors=list(range(nprocs)), args=args)
    env.run()
    return env, [p.value for p in group.processes]


@settings(deadline=None, max_examples=20)
@given(nprocs=st.integers(1, 9), root=st.integers(0, 8),
       payload=st.one_of(st.integers(), st.text(max_size=8),
                         st.lists(st.floats(allow_nan=False,
                                            allow_infinity=False),
                                  max_size=4)))
def test_bcast_delivers_identical_payload(nprocs, root, payload):
    root = root % nprocs

    def main(comm):
        value = payload if comm.rank == root else None
        result = yield from comm.bcast(value, root=root)
        return result

    _, values = run_spmd(main, nprocs)
    assert values == [payload] * nprocs


@settings(deadline=None, max_examples=20)
@given(nprocs=st.integers(1, 8),
       contributions=st.lists(st.integers(-1000, 1000), min_size=8,
                              max_size=8))
def test_allreduce_equals_python_sum(nprocs, contributions):
    def main(comm):
        result = yield from comm.allreduce(contributions[comm.rank], SUM)
        return result

    _, values = run_spmd(main, nprocs)
    expected = sum(contributions[:nprocs])
    assert values == [expected] * nprocs


@settings(deadline=None, max_examples=15)
@given(nprocs=st.integers(1, 7), seed=st.integers(0, 10_000))
def test_alltoall_is_transpose(nprocs, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 100, size=(nprocs, nprocs))

    def main(comm):
        outbox = [int(matrix[comm.rank, d]) for d in range(comm.size)]
        inbox = yield from comm.alltoall(outbox)
        return inbox

    _, values = run_spmd(main, nprocs)
    for r, inbox in enumerate(values):
        assert inbox == [int(matrix[s, r]) for s in range(nprocs)]


@settings(deadline=None, max_examples=15)
@given(nprocs=st.integers(2, 8), count=st.integers(1, 12))
def test_p2p_fifo_per_sender(nprocs, count):
    """Messages between one (src, dst, tag) pair never reorder."""
    def main(comm):
        if comm.rank == 0:
            for i in range(count):
                yield from comm.send(i, dest=comm.size - 1, tag=2)
            return None
        if comm.rank == comm.size - 1:
            got = []
            for _ in range(count):
                got.append((yield from comm.recv(source=0, tag=2)))
            return got
        yield comm.env.timeout(0)
        return None

    _, values = run_spmd(main, nprocs)
    assert values[-1] == list(range(count))


@settings(deadline=None, max_examples=10)
@given(nprocs=st.integers(1, 8))
def test_simulation_is_deterministic(nprocs):
    """Two identical runs give bit-identical end times."""
    def experiment():
        def main(comm):
            total = yield from comm.allreduce(comm.rank, SUM)
            yield from comm.barrier()
            yield from comm.bcast(total, root=0)

        env, _ = run_spmd(main, nprocs)
        return env.now

    assert experiment() == experiment()


@settings(deadline=None, max_examples=10)
@given(nprocs=st.integers(2, 8), nbytes=st.integers(0, 10_000_000))
def test_transfer_time_monotone_in_size(nprocs, nbytes):
    def timed(size):
        def main(comm):
            from repro.mpi import Phantom
            if comm.rank == 0:
                yield from comm.send(Phantom(size), dest=1)
            elif comm.rank == 1:
                yield from comm.recv(source=0)

        env, _ = run_spmd(main, nprocs)
        return env.now

    assert timed(nbytes) <= timed(nbytes + 1_000_000)
