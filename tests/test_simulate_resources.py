"""Unit tests for Store and Resource primitives."""

import pytest

from repro.simulate import Environment, Resource, SimulationError, Store


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        yield store.put("x")
        yield env.timeout(1.0)
        yield store.put("y")

    def consumer():
        a = yield store.get()
        got.append((env.now, a))
        b = yield store.get()
        got.append((env.now, b))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [(0.0, "x"), (1.0, "y")]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(5.0)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(5.0, "late")]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    out = []

    def producer():
        for i in range(5):
            yield store.put(i)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            out.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert out == [0, 1, 2, 3, 4]


def test_store_filtered_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        yield store.put(("tag", 1))
        yield store.put(("other", 2))
        yield store.put(("tag", 3))

    def consumer():
        m = yield store.get(lambda it: it[0] == "other")
        got.append(m)
        m = yield store.get(lambda it: it[0] == "tag")
        got.append(m)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [("other", 2), ("tag", 1)]
    assert list(store.items) == [("tag", 3)]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    events = []

    def producer():
        yield store.put("a")
        events.append(("put-a", env.now))
        yield store.put("b")
        events.append(("put-b", env.now))

    def consumer():
        yield env.timeout(4.0)
        item = yield store.get()
        events.append(("got-" + item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 4.0) in events  # blocked until the get freed a slot


def test_store_bad_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_resource_serializes_two_users():
    env = Environment()
    res = Resource(env, capacity=1)
    spans = []

    def user(tag, hold):
        req = res.request()
        yield req
        start = env.now
        yield env.timeout(hold)
        res.release(req)
        spans.append((tag, start, env.now))

    env.process(user("a", 3.0))
    env.process(user("b", 2.0))
    env.run()
    assert spans == [("a", 0.0, 3.0), ("b", 3.0, 5.0)]


def test_resource_capacity_two_overlaps():
    env = Environment()
    res = Resource(env, capacity=2)
    spans = []

    def user(tag):
        req = res.request()
        yield req
        spans.append((tag, env.now))
        yield env.timeout(1.0)
        res.release(req)

    for tag in ("a", "b", "c"):
        env.process(user(tag))
    env.run()
    # a and b start together, c waits for a slot.
    assert spans == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_release_unknown_request_rejected():
    env = Environment()
    r1 = Resource(env)
    r2 = Resource(env)
    req = r1.request()
    env.run()
    with pytest.raises(SimulationError):
        r2.release(req)


def test_resource_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()  # granted immediately
    waiting = res.request()  # queued
    env.run()
    assert res.queued == 1
    res.release(waiting)  # cancel before grant
    assert res.queued == 0
    res.release(held)
    assert res.count == 0


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=3)
    reqs = [res.request() for _ in range(5)]
    env.run()
    assert res.count == 3
    assert res.queued == 2
    res.release(reqs[0])
    assert res.count == 3  # next in line granted
    assert res.queued == 1
