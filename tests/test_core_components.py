"""Unit tests for pool, queue, profiler, policies and remap decisions."""

import pytest

from repro.apps import LUApplication
from repro.core import (
    Job,
    JobQueue,
    PerformanceProfiler,
    ProcessorPool,
    RemapScheduler,
    SweetSpotPolicy,
    ThresholdSweetSpot,
)
from repro.core.policies import ExpansionPolicy, GreedyExpansionPolicy


class TestProcessorPool:
    def test_allocate_lowest_first(self):
        pool = ProcessorPool(8)
        assert pool.allocate(3, job_id=1) == [0, 1, 2]
        assert pool.free_count == 5
        assert pool.allocate(2, job_id=2) == [3, 4]

    def test_release_specific(self):
        pool = ProcessorPool(4)
        pool.allocate(4, job_id=1)
        pool.release([1, 3], job_id=1)
        assert pool.free_processors() == [1, 3]
        assert pool.processors_of(1) == [0, 2]

    def test_release_wrong_owner_rejected(self):
        pool = ProcessorPool(4)
        pool.allocate(2, job_id=1)
        with pytest.raises(RuntimeError):
            pool.release([0], job_id=2)

    def test_over_allocate_rejected(self):
        pool = ProcessorPool(2)
        with pytest.raises(RuntimeError):
            pool.allocate(3, job_id=1)

    def test_release_all(self):
        pool = ProcessorPool(4)
        pool.allocate(3, job_id=7)
        freed = pool.release_all(7)
        assert freed == [0, 1, 2]
        assert pool.free_count == 4

    def test_owner_lookup(self):
        pool = ProcessorPool(4)
        pool.allocate(2, job_id=9)
        assert pool.owner_of(0) == 9
        assert pool.owner_of(3) is None


def make_job(size, arrival=0.0, n=480):
    pr = 1
    return Job(app=LUApplication(n), initial_config=(pr, size),
               arrival_time=arrival)


class TestJobQueue:
    def test_fcfs_head_only(self):
        q = JobQueue(backfill=False)
        q.enqueue(make_job(8))
        q.enqueue(make_job(2))
        assert q.next_startable(free=4) is None  # head needs 8

    def test_backfill_skips_big_head(self):
        q = JobQueue(backfill=True)
        big = make_job(8)
        small = make_job(2)
        q.enqueue(big)
        q.enqueue(small)
        assert q.next_startable(free=4) is small

    def test_head_preferred_when_it_fits(self):
        q = JobQueue(backfill=True)
        first = make_job(4)
        second = make_job(2)
        q.enqueue(first)
        q.enqueue(second)
        assert q.next_startable(free=4) is first

    def test_needed_for_head(self):
        q = JobQueue()
        q.enqueue(make_job(10))
        assert q.needed_for_head(free=4) == 6
        assert q.needed_for_head(free=12) == 0

    def test_remove(self):
        q = JobQueue()
        job = make_job(2)
        q.enqueue(job)
        q.remove(job)
        assert q.empty


class TestPerformanceProfiler:
    def test_records_and_means(self):
        prof = PerformanceProfiler()
        prof.record_iteration(1, (2, 2), 10.0)
        prof.record_iteration(1, (2, 2), 12.0)
        assert prof.mean_time(1, (2, 2)) == pytest.approx(11.0)
        assert prof.latest_time(1, (2, 2)) == pytest.approx(12.0)
        assert prof.mean_time(1, (9, 9)) is None

    def test_visited_order(self):
        prof = PerformanceProfiler()
        prof.record_iteration(1, (1, 2), 5.0)
        prof.record_iteration(1, (2, 2), 4.0)
        prof.record_iteration(1, (1, 2), 5.1)
        assert prof.visited_configs(1) == [(1, 2), (2, 2)]

    def test_shrink_points_only_smaller_visited(self):
        prof = PerformanceProfiler()
        prof.record_iteration(1, (1, 2), 9.0)
        prof.record_iteration(1, (2, 2), 6.0)
        prof.record_iteration(1, (2, 3), 5.0)
        points = prof.shrink_points(1, (2, 3))
        configs = [p.config for p in points]
        assert configs == [(2, 2), (1, 2)]  # fewest freed first
        assert points[0].processors_freed == 2
        assert points[1].expected_degradation == pytest.approx(4.0)

    def test_last_expansion(self):
        prof = PerformanceProfiler()
        assert prof.last_expansion(1) is None
        prof.record_resize(1, "expand", (1, 2), (2, 2), 100, 0.5, when=1.0)
        prof.record_resize(1, "shrink", (2, 2), (1, 2), 100, 0.5, when=2.0)
        last = prof.last_expansion(1)
        assert last.from_config == (1, 2)
        assert last.to_config == (2, 2)
        assert prof.has_expanded(1)

    def test_forget(self):
        prof = PerformanceProfiler()
        prof.record_iteration(1, (1, 2), 5.0)
        prof.forget(1)
        assert prof.visited_configs(1) == []


class TestSweetSpotPolicies:
    def test_simple_allows_first_expansion(self):
        prof = PerformanceProfiler()
        prof.record_iteration(1, (1, 2), 10.0)
        assert SweetSpotPolicy().expansion_worthwhile(prof, 1, (1, 2))

    def test_simple_blocks_after_regret(self):
        prof = PerformanceProfiler()
        prof.record_iteration(1, (1, 2), 10.0)
        prof.record_resize(1, "expand", (1, 2), (2, 2), 0, 0.1, when=1.0)
        prof.record_iteration(1, (2, 2), 11.0)  # worse!
        policy = SweetSpotPolicy()
        assert policy.expansion_regretted(prof, 1, (2, 2))
        assert not policy.expansion_worthwhile(prof, 1, (2, 2))

    def test_simple_allows_after_improvement(self):
        prof = PerformanceProfiler()
        prof.record_iteration(1, (1, 2), 10.0)
        prof.record_resize(1, "expand", (1, 2), (2, 2), 0, 0.1, when=1.0)
        prof.record_iteration(1, (2, 2), 7.0)
        policy = SweetSpotPolicy()
        assert not policy.expansion_regretted(prof, 1, (2, 2))
        assert policy.expansion_worthwhile(prof, 1, (2, 2))

    def test_threshold_requires_margin(self):
        prof = PerformanceProfiler()
        prof.record_iteration(1, (1, 2), 10.0)
        prof.record_resize(1, "expand", (1, 2), (2, 2), 0, 0.1, when=1.0)
        prof.record_iteration(1, (2, 2), 9.8)  # only 2% better
        lax = SweetSpotPolicy()
        strict = ThresholdSweetSpot(threshold=0.05)
        assert lax.expansion_worthwhile(prof, 1, (2, 2))
        assert not strict.expansion_worthwhile(prof, 1, (2, 2))
        assert strict.expansion_regretted(prof, 1, (2, 2))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ThresholdSweetSpot(threshold=-0.1)


class TestExpansionPolicies:
    CONFIGS = [(1, 2), (2, 2), (2, 3), (3, 3), (3, 4), (4, 4)]

    def test_next_larger(self):
        policy = ExpansionPolicy()
        assert policy.choose(self.CONFIGS, (2, 2), idle=10) == (2, 3)
        assert policy.choose(self.CONFIGS, (2, 2), idle=1) is None

    def test_greedy_takes_biggest(self):
        policy = GreedyExpansionPolicy()
        assert policy.choose(self.CONFIGS, (2, 2), idle=12) == (4, 4)
        assert policy.choose(self.CONFIGS, (2, 2), idle=5) == (3, 3)


class TestRemapScheduler:
    def setup_method(self):
        self.pool = ProcessorPool(16)
        self.queue = JobQueue()
        self.profiler = PerformanceProfiler()
        self.remap = RemapScheduler(self.pool, self.queue, self.profiler)

    def _running_job(self, config):
        job = Job(app=LUApplication(480, block=48),
                  initial_config=config)
        job.config = config
        job.processors = self.pool.allocate(
            config[0] * config[1], job.job_id)
        return job

    def test_first_decision_expands_when_idle(self):
        job = self._running_job((1, 2))
        d = self.remap.decide(job, iteration_time=5.0,
                              redistribution_time=0.0, now=1.0)
        assert d.action == "expand"
        assert d.new_config is not None
        assert len(d.added_processors) == \
            d.new_config[0] * d.new_config[1] - 2

    def test_static_mode_never_resizes(self):
        remap = RemapScheduler(self.pool, self.queue, self.profiler,
                               dynamic=False)
        job = self._running_job((1, 2))
        d = remap.decide(job, 5.0, 0.0, now=1.0)
        assert d.action == "none"

    def test_no_expand_when_queue_nonempty(self):
        job = self._running_job((1, 2))
        waiting = Job(app=LUApplication(480, block=48),
                      initial_config=(4, 4))
        self.queue.enqueue(waiting)
        d = self.remap.decide(job, 5.0, 0.0, now=1.0)
        # 14 free, head needs 16: job has no smaller history -> none.
        assert d.action == "none"

    def test_shrink_for_queued_job(self):
        job = self._running_job((2, 2))
        # History: it previously ran on (1, 2).
        self.profiler.record_iteration(job.job_id, (1, 2), 9.0)
        waiting = Job(app=LUApplication(480, block=48),
                      initial_config=(2, 7))  # needs 14, 12 free
        self.queue.enqueue(waiting)
        d = self.remap.decide(job, 5.0, 0.0, now=1.0)
        assert d.action == "shrink"
        assert d.new_config == (1, 2)

    def test_shrink_back_after_regret(self):
        job = self._running_job((2, 2))
        self.profiler.record_iteration(job.job_id, (1, 2), 5.0)
        self.profiler.record_resize(job.job_id, "expand", (1, 2), (2, 2),
                                    0, 0.1, when=0.5)
        d = self.remap.decide(job, iteration_time=6.0,  # worse than 5.0
                              redistribution_time=0.0, now=1.0)
        assert d.action == "shrink"
        assert d.new_config == (1, 2)

    def test_expansion_allocates_from_pool(self):
        job = self._running_job((1, 2))
        before = self.pool.free_count
        d = self.remap.decide(job, 5.0, 0.0, now=1.0)
        assert d.action == "expand"
        assert self.pool.free_count == before - len(d.added_processors)
