"""Equivalence of the vectorized redistribution data path with the
per-block loop reference implementations it replaced.

The loop implementations (``*_loop`` in ``repro.redist.redistribute``)
are the pre-vectorization code, kept precisely so these tests and the
micro-benchmark can compare against them.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blacs import ProcessGrid
from repro.darray import Descriptor, DistributedMatrix
from repro.darray.blockcyclic import (
    concat_ranges,
    cyclic_global_indices,
    local_to_global,
)
from repro.redist.redistribute import (
    _message_nbytes,
    _message_nbytes_loop,
    _pack_blocks_loop,
    _unpack_blocks_loop,
)
from repro.redist.schedule import build_2d_schedule
from repro.redist.tables import (
    blocks_extent,
    cached_2d_schedule,
    cached_2d_traffic,
)

GRID_DIM = st.integers(1, 4)


def _apply_both_ways(g, desc, old_grid, new_grid):
    """Run one full redistribution through the loop path and the
    vectorized path; returns (loop_target, vectorized_target)."""
    src = DistributedMatrix.from_global(g, desc)
    new_desc = desc.with_grid(new_grid)
    t_loop = DistributedMatrix(new_desc)
    t_vec = DistributedMatrix(new_desc)
    schedule = build_2d_schedule(desc.row_blocks, desc.col_blocks,
                                 old_grid.shape, new_grid.shape)
    for msg in schedule.messages:
        assert _message_nbytes(desc, msg) == _message_nbytes_loop(desc, msg)
        if _message_nbytes(desc, msg) == 0:
            continue
        sr = old_grid.rank_of(*msg.src)
        dr = new_grid.rank_of(*msg.dst)
        _unpack_blocks_loop(t_loop, dr, _pack_blocks_loop(src, sr, msg))
        t_vec.unpack_rect(dr, msg.row_blocks, msg.col_blocks,
                          src.pack_rect(sr, msg.row_blocks,
                                        msg.col_blocks))
    return t_loop, t_vec


@settings(deadline=None, max_examples=40)
@given(m=st.integers(1, 40), n=st.integers(1, 40),
       mb=st.integers(1, 7), nb=st.integers(1, 7),
       pr=GRID_DIM, pc=GRID_DIM, qr=GRID_DIM, qc=GRID_DIM,
       seed=st.integers(0, 2**32 - 1))
def test_vectorized_pack_unpack_matches_loop(m, n, mb, nb, pr, pc,
                                             qr, qc, seed):
    """Property: both data paths place byte-identical matrices."""
    old_grid = ProcessGrid(pr, pc)
    new_grid = ProcessGrid(qr, qc)
    desc = Descriptor(m=m, n=n, mb=mb, nb=nb, grid=old_grid)
    g = np.random.default_rng(seed).standard_normal((m, n))
    t_loop, t_vec = _apply_both_ways(g, desc, old_grid, new_grid)
    for rank in range(new_grid.size):
        np.testing.assert_array_equal(t_loop.local(rank),
                                      t_vec.local(rank))
    np.testing.assert_array_equal(t_vec.to_global(), g)


@pytest.mark.parametrize("m,n,mb,nb", [
    (23, 17, 5, 3),    # ragged trailing blocks in both dimensions
    (24, 24, 24, 24),  # single block
    (7, 31, 7, 2),     # one full-block dimension, one ragged
])
def test_vectorized_pack_unpack_ragged_cases(m, n, mb, nb):
    old_grid = ProcessGrid(2, 3)
    new_grid = ProcessGrid(3, 2)
    desc = Descriptor(m=m, n=n, mb=mb, nb=nb, grid=old_grid)
    g = np.random.default_rng(0).standard_normal((m, n))
    t_loop, t_vec = _apply_both_ways(g, desc, old_grid, new_grid)
    np.testing.assert_array_equal(t_loop.to_global(), t_vec.to_global())
    np.testing.assert_array_equal(t_vec.to_global(), g)


@settings(deadline=None, max_examples=40)
@given(n=st.integers(0, 60), nb=st.integers(1, 8),
       iproc=st.integers(0, 3), nprocs=st.integers(1, 4))
def test_cyclic_global_indices_matches_scalar_port(n, nb, iproc, nprocs):
    if iproc >= nprocs:
        iproc = iproc % nprocs
    idx = cyclic_global_indices(n, nb, iproc, 0, nprocs)
    expected = [local_to_global(l, iproc, nb, 0, nprocs)
                for l in range(len(idx))]
    assert list(idx) == expected
    # Every listed global index must genuinely exist.
    assert all(0 <= g < n for g in idx)


def test_concat_ranges_basic():
    out = concat_ranges(np.array([5, 0, 10]), np.array([2, 0, 3]))
    assert list(out) == [5, 6, 10, 11, 12]
    assert len(concat_ranges(np.array([], dtype=int),
                             np.array([], dtype=int))) == 0


def test_blocks_extent_clips_short_and_overflowing_blocks():
    # n=23, nb=5: blocks 0..3 are full, block 4 has 3, block 5 beyond.
    assert blocks_extent(23, 5, (0, 1)) == 10
    assert blocks_extent(23, 5, (4,)) == 3
    assert blocks_extent(23, 5, (5, 6)) == 0
    assert blocks_extent(23, 5, (0, 4, 7)) == 8


def test_cached_schedule_identical_and_shared():
    fresh = build_2d_schedule(12, 12, (2, 2), (2, 3))
    cached = cached_2d_schedule(12, 12, (2, 2), (2, 3))
    assert cached is cached_2d_schedule(12, 12, (2, 2), (2, 3))
    assert [[ (m.src, m.dst, m.row_blocks, m.col_blocks) for m in step]
            for step in fresh.steps] == \
           [[ (m.src, m.dst, m.row_blocks, m.col_blocks) for m in step]
            for step in cached.steps]


def test_cached_traffic_splits_wire_and_local():
    desc = Descriptor(m=24, n=24, mb=2, nb=2, grid=ProcessGrid(2, 2))
    wire, local = cached_2d_traffic(desc.row_blocks, desc.col_blocks,
                                    (2, 2), (2, 3),
                                    desc.m, desc.n, desc.mb, desc.nb,
                                    desc.itemsize)
    # Everything is accounted exactly once.
    assert wire + local == desc.global_nbytes
    assert wire > 0 and local > 0
    # Identity redistribution: nothing crosses the wire.
    wire_id, local_id = cached_2d_traffic(desc.row_blocks,
                                          desc.col_blocks,
                                          (2, 2), (2, 2),
                                          desc.m, desc.n, desc.mb,
                                          desc.nb, desc.itemsize)
    assert wire_id == 0
    assert local_id == desc.global_nbytes
