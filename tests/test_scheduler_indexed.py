"""Size-indexed scheduler queue: scan equivalence, ledger, determinism.

Three contracts:

* :class:`JobQueue` (size-indexed) and :class:`ScanJobQueue` (the seed
  O(n) scan) return the *identical* job for every probe in any
  enqueue/remove/probe interleaving — the FCFS+backfill decision rule
  is shared, only the cost differs.
* The :class:`ReservationLedger` never changes a decision: it mirrors
  ``needed_for_head`` and its wake filter only skips passes that would
  have started nothing.
* Two runs of the 10k-job synthetic workload produce identical
  timelines, on either kernel and either queue (end-to-end
  determinism of the whole new stack).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReshapeFramework, ReservationLedger
from repro.core.job import Job
from repro.core.pool import ProcessorPool
from repro.core.queue import JobQueue, ScanJobQueue
from repro.simulate import Environment
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.paper import make_application


def make_job(size, priority=0):
    app = make_application("synthetic", 1000, iterations=1)
    return Job(app=app, initial_config=(1, size), priority=priority)


class TestScanEquivalence:
    def drive(self, script):
        """Run one op script against both queues, comparing decisions."""
        indexed = JobQueue(backfill=True)
        scan = ScanJobQueue(backfill=True)
        jobs = []
        for op, value in script:
            if op == "enqueue":
                size, priority = value
                job = make_job(size, priority)
                jobs.append(job)
                indexed.enqueue(job)
                scan.enqueue(job)
            elif op == "probe":
                a = indexed.next_startable(value)
                b = scan.next_startable(value)
                assert a is b, (value, a, b)
            elif op == "start" and len(indexed):
                job = indexed.next_startable(16)
                assert job is scan.next_startable(16)
                if job is not None:
                    indexed.remove(job)
                    scan.remove(job)
            assert len(indexed) == len(scan)
            assert indexed.head() is scan.head()
            assert (indexed.min_requested_size()
                    == scan.min_requested_size())
            for free in (0, 1, 5, 16):
                assert indexed.needed_for_head(free) == \
                    scan.needed_for_head(free)
                assert indexed.can_start(free) == scan.can_start(free)

    @given(st.lists(
        st.one_of(
            st.tuples(st.just("enqueue"),
                      st.tuples(st.integers(1, 16), st.integers(0, 2))),
            st.tuples(st.just("probe"), st.integers(0, 16)),
            st.tuples(st.just("start"), st.none()),
        ), min_size=1, max_size=120))
    @settings(max_examples=150, deadline=None)
    def test_property_identical_decisions(self, script):
        self.drive(script)

    def test_iteration_order_matches_scan(self):
        indexed = JobQueue()
        scan = ScanJobQueue()
        rng = random.Random(4)
        for _ in range(200):
            job = make_job(rng.randint(1, 16), rng.randint(0, 2))
            indexed.enqueue(job)
            scan.enqueue(job)
        assert list(indexed) == list(scan)

    def test_remove_and_reenqueue_drops_stale_entries(self):
        q = JobQueue()
        a, b = make_job(4), make_job(4)
        q.enqueue(a)
        q.enqueue(b)
        q.remove(a)
        assert q.head() is b
        q.enqueue(a)  # re-arrival goes to the back of its class
        assert q.next_startable(4) is b
        q.remove(b)
        assert q.next_startable(4) is a
        q.remove(a)
        assert q.empty and q.head() is None

    def test_double_enqueue_rejected(self):
        q = JobQueue()
        job = make_job(2)
        q.enqueue(job)
        try:
            q.enqueue(job)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("double enqueue must raise")

    def test_fcfs_mode_only_head_starts(self):
        for cls in (JobQueue, ScanJobQueue):
            q = cls(backfill=False)
            big, small = make_job(8), make_job(2)
            q.enqueue(big)
            q.enqueue(small)
            assert q.next_startable(4) is None
            assert not q.can_start(4)
            assert q.next_startable(8) is big


class TestReservationLedger:
    def test_refresh_mirrors_needed_for_head(self):
        pool = ProcessorPool(16)
        ledger = ReservationLedger(pool)
        queue = JobQueue()
        assert ledger.refresh(queue, 16) == 0
        assert ledger.holder is None
        job = make_job(10)
        queue.enqueue(job)
        assert ledger.refresh(queue, 4) == queue.needed_for_head(4) == 6
        assert ledger.holder == job.job_id
        assert ledger.reserved == 4
        assert ledger.available_for_expansion(4) == 0
        assert ledger.refresh(queue, 12) == 0
        assert ledger.reserved == 10
        assert ledger.available_for_expansion(12) == 2
        queue.remove(job)
        assert ledger.refresh(queue, 12) == 0
        assert ledger.available_for_expansion(12) == 12

    def test_wake_filter_skips_only_hopeless_wakes(self):
        env = Environment()
        fw = ReshapeFramework(env=env, num_processors=8, dynamic=False)
        gen = WorkloadGenerator(seed=3, max_initial=8)
        specs = gen.generate_scale(200, max_size=8)
        jobs = gen.submit_all(fw, specs, iterations=1)
        fw.run()
        assert all(j.turnaround is not None for j in jobs.values())
        assert fw.ledger.wakes_taken > 0
        # The filter must have skipped something in a saturated run...
        assert fw.ledger.wakes_skipped > 0
        # ...and skipping must not strand anything: queue drained, all
        # processors back in the pool.
        assert fw.queue.empty
        assert fw.pool.free_count == 8


def run_scale(count, *, kernel="calendar", scheduler="indexed", seed=11):
    gen = WorkloadGenerator(seed=seed, max_initial=16)
    specs = gen.generate_scale(count)
    fw = ReshapeFramework(env=Environment(kernel=kernel),
                          num_processors=36, dynamic=True,
                          scheduler=scheduler)
    jobs = gen.submit_all(fw, specs, iterations=1)
    fw.run()
    assert all(j.turnaround is not None for j in jobs.values())
    # job_id comes from a process-global counter, so identify records
    # by the per-run job *name* (stable across repeated runs).
    timeline = [(ch.time, ch.job_name, ch.reason)
                for ch in fw.timeline.changes]
    return timeline, fw.env.now


class TestDirectExecution:
    def test_multi_iteration_dynamic_job_keeps_resize_points_live(self):
        """Closed-form booking must not bypass live resize decisions: a
        multi-iteration synthetic job under dynamic scheduling executes
        its ranks and can expand onto idle processors."""
        fw = ReshapeFramework(num_processors=8, dynamic=True)
        app = make_application("synthetic", 4000, iterations=6)
        job = fw.submit(app, (1, 2))
        fw.run()
        assert job.turnaround is not None
        # Launched execution leaves per-iteration logs; the direct path
        # books none.  And with 6 idle processors the job must have hit
        # at least one expand decision.
        assert job.iteration_log
        assert any(reason == "expand"
                   for _, _, reason in
                   [(c.time, c.job_name, c.reason)
                    for c in fw.timeline.changes])

    def test_single_iteration_job_books_closed_form(self):
        fw = ReshapeFramework(num_processors=8, dynamic=True)
        app = make_application("synthetic", 4000, iterations=1)
        job = fw.submit(app, (1, 2))
        fw.run()
        assert job.turnaround is not None
        assert not job.iteration_log  # no ranks ran
        assert fw.env.now == 2.0      # 4 s serial / 2 ranks, exact

    def test_static_multi_iteration_job_books_closed_form(self):
        fw = ReshapeFramework(num_processors=8, dynamic=False)
        app = make_application("synthetic", 4000, iterations=3)
        job = fw.submit(app, (1, 2))
        fw.run()
        assert job.turnaround == 6.0  # 3 x 4 s / 2 ranks, no overheads
        assert not job.iteration_log


class TestScaleDeterminism:
    def test_ten_thousand_jobs_deterministic_timeline(self):
        """Two runs of the 10k-job workload: identical timelines."""
        first, now1 = run_scale(10_000)
        second, now2 = run_scale(10_000)
        assert now1 == now2
        assert first == second
        assert sum(1 for _, _, reason in first
                   if reason == "finish") == 10_000

    def test_kernel_and_queue_agnostic_timeline(self):
        """heap/scan and calendar/indexed produce the same schedule."""
        new_stack, now_new = run_scale(1_500)
        old_stack, now_old = run_scale(1_500, kernel="heap",
                                       scheduler="scan")
        assert now_new == now_old
        assert new_stack == old_stack
