"""CLI tests (in-process, via repro.cli.main)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sweep.spec import ScenarioSpec


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["run", "lu", "--size", "480",
                              "--start", "1x2"])
    assert args.command == "run" and args.app == "lu"
    args = parser.parse_args(["workload", "w1"])
    assert args.which == "w1"


def test_run_subcommand(capsys):
    rc = main(["run", "mm", "--size", "2400", "--iterations", "2",
               "--procs", "8", "--start", "1x2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "turn-around" in out
    assert "dynamic scheduling" in out


def test_run_static_flag(capsys):
    rc = main(["run", "mm", "--size", "2400", "--iterations", "2",
               "--procs", "8", "--start", "2x2", "--static"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "static scheduling" in out
    # Static run never leaves its grid.
    assert "2x2" in out and "2x3" not in out


def test_run_policy_flags(capsys):
    rc = main(["run", "mm", "--size", "2400", "--iterations", "3",
               "--procs", "12", "--start", "1x2", "--greedy",
               "--threshold", "0.05"])
    assert rc == 0


def test_sweep_subcommand(capsys):
    rc = main(["sweep", "mm", "--size", "2400", "--procs", "6"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "scaling sweep" in out


def test_synth_subcommand(capsys):
    rc = main(["synth", "--jobs", "2", "--procs", "8",
               "--iterations", "1", "--seed", "1",
               "--interarrival", "10"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "utilization" in out


def test_bad_app_rejected():
    with pytest.raises(SystemExit):
        main(["run", "quicksort"])


def test_json_flag_prints_spec_without_running(capsys):
    rc = main(["run", "lu", "--size", "9000", "--start", "2x2",
               "--threshold", "0.05", "--greedy", "--json"])
    out = capsys.readouterr().out
    assert rc == 0
    spec = json.loads(out)
    assert spec["kind"] == "schedule" and spec["workload"] == "single"
    assert spec["size"] == 9000 and spec["start"] == [2, 2]
    assert spec["sweet_spot"] == "threshold"
    assert spec["sweet_spot_params"] == {"threshold": 0.05}
    assert spec["expansion"] == "greedy"
    # The printed spec is runnable as-is.
    assert ScenarioSpec.from_dict(spec).name


def test_workload_json_emits_static_and_dynamic_pair(capsys):
    rc = main(["workload", "w2", "--json"])
    specs = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert [s["dynamic"] for s in specs] == [False, True]
    assert all(s["workload"] == "w2" for s in specs)


def test_grid_json_lists_smoke_specs(capsys):
    rc = main(["grid", "all", "--smoke", "--json"])
    specs = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert len(specs) == 16
    kinds = {s["kind"] for s in specs}
    assert kinds == {"redist", "schedule"}


def test_grid_ckpt_smoke_reports_band(capsys, tmp_path):
    out_file = tmp_path / "sweep.json"
    rc = main(["grid", "ckpt", "--smoke", "--workers", "1",
               "--out", str(out_file)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "paper band" in out and "IN BAND" in out
    payload = json.loads(out_file.read_text())
    assert payload["checkpoint"]["in_band"] is True
    assert payload["parallel"]["scenarios"] == 8


def test_grid_runs_specs_from_json_file(capsys, tmp_path):
    spec_file = tmp_path / "specs.json"
    main(["run", "mm", "--size", "1200", "--iterations", "1",
          "--procs", "4", "--json"])
    spec_file.write_text(capsys.readouterr().out)
    rc = main(["grid", "--file", str(spec_file), "--workers", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "1 scenarios, 1 worker(s)" in out
