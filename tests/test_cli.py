"""CLI tests (in-process, via repro.cli.main)."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["run", "lu", "--size", "480",
                              "--start", "1x2"])
    assert args.command == "run" and args.app == "lu"
    args = parser.parse_args(["workload", "w1"])
    assert args.which == "w1"


def test_run_subcommand(capsys):
    rc = main(["run", "mm", "--size", "2400", "--iterations", "2",
               "--procs", "8", "--start", "1x2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "turn-around" in out
    assert "dynamic scheduling" in out


def test_run_static_flag(capsys):
    rc = main(["run", "mm", "--size", "2400", "--iterations", "2",
               "--procs", "8", "--start", "2x2", "--static"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "static scheduling" in out
    # Static run never leaves its grid.
    assert "2x2" in out and "2x3" not in out


def test_run_policy_flags(capsys):
    rc = main(["run", "mm", "--size", "2400", "--iterations", "3",
               "--procs", "12", "--start", "1x2", "--greedy",
               "--threshold", "0.05"])
    assert rc == 0


def test_sweep_subcommand(capsys):
    rc = main(["sweep", "mm", "--size", "2400", "--procs", "6"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "scaling sweep" in out


def test_synth_subcommand(capsys):
    rc = main(["synth", "--jobs", "2", "--procs", "8",
               "--iterations", "1", "--seed", "1",
               "--interarrival", "10"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "utilization" in out


def test_bad_app_rejected():
    with pytest.raises(SystemExit):
        main(["run", "quicksort"])
