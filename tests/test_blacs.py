"""Tests for the BLACS-style grid/context layer."""

import pytest

from repro.blacs import BlacsContext, ProcessGrid
from repro.cluster import Machine, MachineSpec
from repro.mpi import MPIError, World
from repro.simulate import Environment


class TestProcessGrid:
    def test_coords_row_major(self):
        g = ProcessGrid(2, 3)
        assert g.coords(0) == (0, 0)
        assert g.coords(2) == (0, 2)
        assert g.coords(3) == (1, 0)
        assert g.coords(5) == (1, 2)

    def test_rank_of_inverts_coords(self):
        g = ProcessGrid(3, 4)
        for r in range(g.size):
            assert g.rank_of(*g.coords(r)) == r

    def test_members(self):
        g = ProcessGrid(2, 3)
        assert g.row_members(1) == [3, 4, 5]
        assert g.col_members(2) == [2, 5]

    def test_bounds_checked(self):
        g = ProcessGrid(2, 2)
        with pytest.raises(ValueError):
            g.coords(4)
        with pytest.raises(ValueError):
            g.rank_of(2, 0)
        with pytest.raises(ValueError):
            ProcessGrid(0, 1)

    def test_equality_and_hash(self):
        assert ProcessGrid(2, 3) == ProcessGrid(2, 3)
        assert ProcessGrid(2, 3) != ProcessGrid(3, 2)
        assert hash(ProcessGrid(2, 3)) == hash(ProcessGrid(2, 3))


def run_spmd(main, nprocs, num_nodes=16):
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=num_nodes))
    world = World(env, machine, launch_overhead=0.0)
    group = world.launch(main, processors=list(range(nprocs)))
    env.run()
    return [p.value for p in group.processes]


class TestBlacsContext:
    def test_create_assigns_coordinates(self):
        def main(comm):
            ctx = yield from BlacsContext.create(comm, 2, 3)
            return (ctx.myrow, ctx.mycol)

        values = run_spmd(main, nprocs=6)
        assert values == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_extra_ranks_get_none(self):
        def main(comm):
            ctx = yield from BlacsContext.create(comm, 1, 2)
            return ctx is None

        values = run_spmd(main, nprocs=4)
        assert values == [False, False, True, True]

    def test_grid_too_big_rejected(self):
        def main(comm):
            yield from BlacsContext.create(comm, 2, 3)

        env = Environment()
        machine = Machine(env, MachineSpec(num_nodes=4))
        world = World(env, machine, launch_overhead=0.0)
        world.launch(main, processors=[0, 1])
        with pytest.raises(MPIError):
            env.run()

    def test_row_bcast_stays_in_row(self):
        def main(comm):
            ctx = yield from BlacsContext.create(comm, 2, 2)
            payload = f"row{ctx.myrow}" if ctx.mycol == 0 else None
            got = yield from ctx.row_bcast(payload, root_col=0)
            return got

        values = run_spmd(main, nprocs=4)
        assert values == ["row0", "row0", "row1", "row1"]

    def test_col_bcast_stays_in_col(self):
        def main(comm):
            ctx = yield from BlacsContext.create(comm, 2, 2)
            payload = f"col{ctx.mycol}" if ctx.myrow == 0 else None
            got = yield from ctx.col_bcast(payload, root_row=0)
            return got

        values = run_spmd(main, nprocs=4)
        assert values == ["col0", "col1", "col0", "col1"]

    def test_exit_blocks_further_use(self):
        def main(comm):
            ctx = yield from BlacsContext.create(comm, 1, 1)
            ctx.exit()
            yield from ctx.row_bcast("x", root_col=0)

        env = Environment()
        machine = Machine(env, MachineSpec(num_nodes=2))
        world = World(env, machine, launch_overhead=0.0)
        world.launch(main, processors=[0])
        with pytest.raises(MPIError):
            env.run()

    def test_context_barrier(self):
        def main(comm):
            ctx = yield from BlacsContext.create(comm, 2, 2)
            yield comm.env.timeout(float(comm.rank))
            yield from ctx.barrier()
            return comm.env.now

        values = run_spmd(main, nprocs=4)
        assert min(values) >= 3.0
