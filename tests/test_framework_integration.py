"""End-to-end ReSHAPE framework tests: full resize lifecycles."""

import numpy as np
import pytest

from repro.apps import (
    JacobiApplication,
    LUApplication,
    MasterWorkerApplication,
    MatMulApplication,
)
from repro.cluster import MachineSpec
from repro.core import JobState, ReshapeFramework


def small_spec(n=16):
    return MachineSpec(num_nodes=n)


def test_single_job_expands_and_completes():
    fw = ReshapeFramework(num_processors=16, machine_spec=small_spec())
    app = LUApplication(480, block=48, iterations=6, materialized=True)
    job = fw.submit(app, config=(1, 2))
    fw.run()
    assert job.state == JobState.FINISHED
    assert len(job.iteration_log) == 6
    # It expanded at least once...
    actions = [c.reason for c in fw.timeline.changes]
    assert "expand" in actions
    # ...and all processors were returned at the end.
    assert fw.pool.free_count == 16


def test_data_survives_resizes():
    fw = ReshapeFramework(num_processors=16, machine_spec=small_spec())
    app = LUApplication(480, block=48, iterations=6, materialized=True)
    job = fw.submit(app, config=(1, 2))
    fw.run()
    rng = np.random.default_rng(1234)
    ref = rng.standard_normal((480, 480))
    np.testing.assert_allclose(job.data["A"].to_global(), ref)


def test_static_mode_holds_configuration():
    fw = ReshapeFramework(num_processors=16, machine_spec=small_spec(),
                          dynamic=False)
    app = LUApplication(480, block=48, iterations=4)
    job = fw.submit(app, config=(2, 2))
    fw.run()
    assert job.state == JobState.FINISHED
    configs = {rec[1] for rec in job.iteration_log}
    assert configs == {(2, 2)}
    reasons = [c.reason for c in fw.timeline.changes]
    assert reasons == ["start", "finish"]


def test_queued_job_waits_for_processors_fcfs():
    fw = ReshapeFramework(num_processors=4, machine_spec=small_spec(4),
                          dynamic=False, backfill=False)
    app1 = LUApplication(480, block=48, iterations=3)
    app2 = LUApplication(480, block=48, iterations=2)
    j1 = fw.submit(app1, config=(2, 2), arrival=0.0)
    j2 = fw.submit(app2, config=(2, 2), arrival=0.0)
    fw.run()
    assert j1.state == j2.state == JobState.FINISHED
    assert j2.start_time >= j1.end_time


def test_backfill_starts_small_job_early():
    fw = ReshapeFramework(num_processors=6, machine_spec=small_spec(8),
                          dynamic=False, backfill=True)
    blocker = LUApplication(480, block=48, iterations=4)
    big = LUApplication(480, block=48, iterations=2)
    small = LUApplication(480, block=48, iterations=2)
    j_block = fw.submit(blocker, config=(2, 2), arrival=0.0)  # takes 4
    j_big = fw.submit(big, config=(2, 3), arrival=1e-3)       # needs 6
    j_small = fw.submit(small, config=(1, 2), arrival=2e-3)   # needs 2
    fw.run()
    # The small job backfilled into the two free processors.
    assert j_small.start_time < j_big.start_time
    assert all(j.state == JobState.FINISHED
               for j in (j_block, j_big, j_small))


def test_running_job_shrinks_for_queued_job():
    fw = ReshapeFramework(num_processors=6, machine_spec=small_spec(8))
    first = LUApplication(480, block=48, iterations=8)
    second = LUApplication(480, block=48, iterations=2)
    j1 = fw.submit(first, config=(1, 2), arrival=0.0)
    # Arrives once j1 has grown; j1 must shrink to make room.
    j2 = fw.submit(second, config=(2, 2), arrival=0.15)
    fw.run()
    assert j1.state == j2.state == JobState.FINISHED
    shrinks = [c for c in fw.timeline.changes
               if c.reason == "shrink" and c.job_id == j1.job_id]
    assert shrinks, "first job never shrank for the queued one"
    assert j2.start_time >= shrinks[0].time


def test_masterworker_resizes_without_data():
    fw = ReshapeFramework(num_processors=12, machine_spec=small_spec(12))
    app = MasterWorkerApplication(int(2e9), iterations=4)
    app.units_per_iteration = 500
    app.chunk_size = 50
    job = fw.submit(app, config=(1, 2))
    fw.run()
    assert job.state == JobState.FINISHED
    actions = [c.reason for c in fw.timeline.changes
               if c.job_id == job.job_id]
    assert "expand" in actions
    assert job.redistribution_time == 0.0  # nothing to redistribute


def test_checkpoint_redistribution_method():
    fw = ReshapeFramework(num_processors=8, machine_spec=small_spec(8),
                          redistribution_method="checkpoint")
    app = LUApplication(480, block=48, iterations=4, materialized=True)
    job = fw.submit(app, config=(1, 2))
    fw.run()
    assert job.state == JobState.FINISHED
    rng = np.random.default_rng(1234)
    ref = rng.standard_normal((480, 480))
    np.testing.assert_allclose(job.data["A"].to_global(), ref)
    assert fw.machine.disk.bytes_written > 0


def test_checkpoint_method_costs_more():
    def total_redist(method):
        fw = ReshapeFramework(num_processors=8, machine_spec=small_spec(8),
                              redistribution_method=method)
        app = LUApplication(960, block=96, iterations=4)
        job = fw.submit(app, config=(1, 2))
        fw.run()
        return job.redistribution_time

    t_ckpt = total_redist("checkpoint")
    t_reshape = total_redist("reshape")
    assert t_ckpt > 2.0 * t_reshape


def test_utilization_and_turnaround_reported():
    fw = ReshapeFramework(num_processors=8, machine_spec=small_spec(8),
                          dynamic=False)
    app = LUApplication(480, block=48, iterations=3)
    job = fw.submit(app, config=(2, 2))
    fw.run()
    ta = fw.turnaround_times()
    assert job.name in ta and ta[job.name] > 0
    util = fw.utilization()
    assert 0.0 < util <= 1.0
    # Static single job on 4 of 8 processors: utilization about half.
    assert util == pytest.approx(0.5, abs=0.2)


def test_dynamic_beats_static_on_turnaround():
    """The headline claim: resizing improves turn-around time."""
    def turnaround(dynamic):
        fw = ReshapeFramework(num_processors=16, machine_spec=small_spec(),
                              dynamic=dynamic)
        # A compute-heavy job that genuinely scales (phantom mode, so
        # paper-ish problem sizes cost nothing to simulate).
        app = MatMulApplication(4800, block=480, iterations=6)
        job = fw.submit(app, config=(1, 2))
        fw.run()
        assert job.state == JobState.FINISHED
        return job.turnaround

    t_static = turnaround(False)
    t_dynamic = turnaround(True)
    assert t_dynamic < t_static


def test_oversized_submission_rejected():
    fw = ReshapeFramework(num_processors=4, machine_spec=small_spec(4))
    with pytest.raises(ValueError):
        fw.submit(LUApplication(480, block=48), config=(4, 4))


def test_arrival_times_respected():
    fw = ReshapeFramework(num_processors=8, machine_spec=small_spec(8),
                          dynamic=False)
    app = LUApplication(480, block=48, iterations=2)
    job = fw.submit(app, config=(2, 2), arrival=5.0)
    fw.run()
    assert job.start_time >= 5.0


def test_jacobi_resizes_with_solver_state():
    fw = ReshapeFramework(num_processors=10, machine_spec=small_spec(10))
    app = JacobiApplication(40, block=5, iterations=5, materialized=True)
    app.inner_sweeps = 25
    job = fw.submit(app, config=(2, 1))
    fw.run()
    assert job.state == JobState.FINISHED
    assert app.verify(job.data)
    actions = [c.reason for c in fw.timeline.changes]
    assert "expand" in actions
