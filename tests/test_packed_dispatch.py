"""Packed-record dispatch: handler table, Sleep, Batch, deliver.

The PR-6 hot-path contract: one-shot timed wakeups run as bare
``(when, priority, seq, handler_id, arg)`` records through the
Environment's handler table, and their queue positions are issued by
the *same* monotone ``seq`` counter as Event records — so packed and
Event traffic interleave deterministically and the two queue kernels
stay bit-identical.
"""

import pytest

from repro.core import ReshapeFramework
from repro.simulate import (
    HANDLER_BATCH,
    HANDLER_EVENT,
    HANDLER_RESUME,
    Environment,
    Interrupt,
    SimulationError,
    Sleep,
)
from repro.workloads import WorkloadGenerator


class TestHandlerTable:
    def test_builtin_ids_are_stable(self):
        env = Environment()
        assert HANDLER_EVENT == 0
        assert env._handlers[HANDLER_RESUME] is not None
        assert env._handlers[HANDLER_BATCH] is not None

    def test_register_returns_fresh_ids(self):
        env = Environment()
        calls = []
        a = env.register_handler(lambda arg: calls.append(("a", arg)))
        b = env.register_handler(lambda arg: calls.append(("b", arg)))
        assert a != b
        env.call_at(1.0, b, "x")
        env.call_at(1.0, a, "y")
        env.run()
        assert calls == [("b", "x"), ("a", "y")]
        assert env.now == 1.0

    def test_handler_id_caches_by_identity(self):
        env = Environment()

        def fn(arg):
            pass

        assert env.handler_id(fn) == env.handler_id(fn)
        n = len(env._handlers)
        env.handler_id(fn)
        assert len(env._handlers) == n

    def test_call_at_rejects_nan_and_past(self):
        env = Environment()
        hid = env.register_handler(lambda arg: None)
        with pytest.raises(SimulationError):
            env.call_at(float("nan"), hid)
        with pytest.raises(SimulationError):
            env.call_at(-1.0, hid)
        with pytest.raises(SimulationError):
            env.call_later(-0.5, hid)

    def test_call_later_fires_relative(self):
        env = Environment()
        out = []
        hid = env.register_handler(out.append)
        env.call_later(2.5, hid, "late")
        env.run()
        assert out == ["late"] and env.now == 2.5


class TestSeqTieOrdering:
    def test_packed_and_event_records_share_one_counter(self):
        """A packed record booked before an Event at the same (time,
        priority) fires first — and vice versa — because both paths
        increment the single Environment seq counter."""
        for flip in (False, True):
            env = Environment()
            log = []
            hid = env.register_handler(log.append)
            ev = env.event()
            ev.callbacks.append(lambda e: log.append("event"))
            if flip:
                env.schedule_at(ev, 5.0)
                env.call_at(5.0, hid, "packed")
            else:
                env.call_at(5.0, hid, "packed")
                env.schedule_at(ev, 5.0)
            ev._value = None
            ev._ok = True
            env.run()
            expected = (["event", "packed"] if flip
                        else ["packed", "event"])
            assert log == expected, flip


class TestSleep:
    def test_sleep_advances_clock_and_returns_value(self):
        env = Environment()
        out = []

        def proc():
            got = yield env.sleep(3.0, value="v")
            out.append((env.now, got))
            yield env.sleep_until(10.0)
            out.append((env.now, None))

        env.process(proc())
        env.run()
        assert out == [(3.0, "v"), (10.0, None)]

    def test_sleep_matches_timeout_semantics(self):
        def trajectory(use_sleep):
            env = Environment()
            log = []

            def worker(tag, delay):
                if use_sleep:
                    yield env.sleep(delay)
                else:
                    yield env.timeout(delay)
                log.append((env.now, tag))

            for tag in range(20):
                env.process(worker(tag, float(tag % 5)))
            env.run()
            return log

        assert trajectory(True) == trajectory(False)

    def test_interrupt_during_sleep(self):
        env = Environment()
        out = []

        def sleeper():
            try:
                yield env.sleep(100.0)
                out.append("woke")
            except Interrupt as intr:
                out.append(("interrupted", env.now, intr.cause))
            yield env.sleep(1.0)
            out.append(("after", env.now))

        def poker(target):
            yield env.sleep(2.0)
            target.interrupt(cause="now")

        p = env.process(sleeper())
        env.process(poker(p))
        env.run()
        # The orphaned packed wakeup at t=100 must be a no-op: the run
        # ends at t=3 (interrupt at 2, then the 1s sleep), not 100.
        assert out == [("interrupted", 2.0, "now"), ("after", 3.0)]
        assert env.now == 100.0  # the orphaned record still pops (inert)

    def test_double_interrupt_while_sleeping_raises(self):
        env = Environment()

        def sleeper():
            try:
                yield env.sleep(50.0)
            except Interrupt:
                pass

        def poker(target):
            yield env.sleep(1.0)
            target.interrupt()
            target.interrupt()  # second one: no target any more

        p = env.process(sleeper())
        env.process(poker(p))
        with pytest.raises(SimulationError):
            env.run()

    def test_sleep_is_not_an_event(self):
        env = Environment()
        s = env.sleep(1.0)
        assert type(s) is Sleep
        with pytest.raises(SimulationError):
            env.all_of([s])


class TestBatch:
    def test_members_fire_together_in_add_order(self):
        env = Environment()
        log = []
        batch = env.batch_at(4.0)
        for i in range(3):
            ev = env.event()
            ev.callbacks.append(
                lambda e, i=i: log.append((env.now, i, e.value)))
            batch.add(ev, value=i * 10)
        assert not batch.fired
        env.run()
        assert batch.fired
        assert log == [(4.0, 0, 0), (4.0, 1, 10), (4.0, 2, 20)]
        assert all(m.processed for m in batch.members)

    def test_add_rejects_scheduled_and_foreign_events(self):
        env = Environment()
        batch = env.batch_at(1.0)
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            batch.add(ev)
        other = Environment()
        with pytest.raises(SimulationError):
            batch.add(other.event())
        member = env.event()
        batch.add(member)
        with pytest.raises(SimulationError):
            env.schedule(member)  # the batch owns delivery

    def test_process_can_wait_on_member(self):
        env = Environment()
        out = []
        batch = env.batch_at(2.0)

        def waiter(ev):
            got = yield ev
            out.append((env.now, got))

        for i in range(2):
            ev = env.event()
            batch.add(ev, value=i)
            env.process(waiter(ev))
        env.run()
        assert out == [(2.0, 0), (2.0, 1)]


class TestDeliver:
    def test_deliver_resolves_and_fires_now(self):
        env = Environment()
        out = []

        def proc():
            ev = env.event()
            env.deliver(ev, value="granted")
            got = yield ev
            out.append((env.now, got))

        env.process(proc())
        env.run()
        assert out == [(0.0, "granted")]

    def test_deliver_rejects_triggered(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            env.deliver(ev)

    def test_deliver_failure_propagates(self):
        env = Environment()
        out = []

        def proc():
            ev = env.event()
            env.deliver(ev, value=RuntimeError("nope"), ok=False)
            try:
                yield ev
            except RuntimeError as err:
                out.append(str(err))

        env.process(proc())
        env.run()
        assert out == ["nope"]


class TestFrameworkPackedArrivals:
    """The scheduler's arrival/wake/completion hops are packed records;
    cross-kernel timelines must stay identical."""

    @staticmethod
    def _timeline(kernel, specs):
        env = Environment(kernel=kernel)
        fw = ReshapeFramework(env=env, num_processors=48, dynamic=False)
        gen = WorkloadGenerator(seed=23)
        gen.submit_all(fw, specs, iterations=1)
        fw.run()
        # job_id is a global auto-increment (distinct across the two
        # frameworks); the name is the stable identity.
        return [(c.time, c.job_name, c.nprocs, c.reason)
                for c in fw.timeline.changes]

    def test_cross_kernel_timeline_identical(self):
        specs = WorkloadGenerator(seed=23, max_initial=8).generate_scale(
            2000, mean_serial_ms=500.0)
        heap = self._timeline("heap", specs)
        cal = self._timeline("calendar", specs)
        assert len(heap) >= 2 * len(specs)  # start + finish per job
        assert heap == cal

    def test_no_driver_processes_per_arrival(self):
        """Arrivals book packed records, not per-job Processes: before
        any arrival fires, the queue holds exactly one record per job
        (no Initialize + Timeout pairs)."""
        env = Environment()
        fw = ReshapeFramework(env=env, num_processors=8, dynamic=False)
        gen = WorkloadGenerator(seed=1, max_initial=4)
        specs = gen.generate_scale(50)
        gen.submit_all(fw, specs, iterations=1)
        assert len(env._queue) == len(specs)
