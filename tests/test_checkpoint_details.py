"""Focused tests of the checkpoint/restart comparator's data path."""

import numpy as np
from repro.blacs import ProcessGrid
from repro.cluster import Machine, MachineSpec
from repro.darray import Descriptor, DistributedMatrix
from repro.mpi import World
from repro.redist import checkpoint_redistribute
from repro.simulate import Environment


def run_checkpoint(m, n, mb, nb, old_grid, new_grid, *,
                   materialized=True, num_nodes=16):
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=num_nodes))
    world = World(env, machine, launch_overhead=0.0)
    desc = Descriptor(m=m, n=n, mb=mb, nb=nb, grid=ProcessGrid(*old_grid))
    if materialized:
        rng = np.random.default_rng(2)
        source = DistributedMatrix.from_global(
            rng.standard_normal((m, n)), desc)
    else:
        source = DistributedMatrix(desc, materialized=False)
    results = {}

    def main(comm):
        res = yield from checkpoint_redistribute(
            comm, source, ProcessGrid(*new_grid))
        results[comm.rank] = res

    nprocs = max(old_grid[0] * old_grid[1], new_grid[0] * new_grid[1])
    world.launch(main, processors=list(range(nprocs)))
    env.run()
    return machine, source, results


def test_every_byte_crosses_the_disk_twice():
    machine, source, _results = run_checkpoint(
        40, 40, 4, 4, (2, 2), (2, 3), materialized=False)
    nbytes = source.desc.global_nbytes
    assert machine.disk.bytes_written == nbytes
    assert machine.disk.bytes_read == nbytes


def test_shrink_through_checkpoint():
    _machine, source, results = run_checkpoint(
        24, 24, 3, 3, (2, 3), (1, 2))
    rebuilt = results[0].matrix.to_global()
    rng = np.random.default_rng(2)
    np.testing.assert_allclose(rebuilt, rng.standard_normal((24, 24)))
    # Departed ranks hold no matrix.
    assert results[4].matrix is None and results[5].matrix is None


def test_checkpoint_cost_dominated_by_funnel():
    """Doubling processor count barely helps: node 0 is the bottleneck."""
    def elapsed(grid):
        _m, _s, results = run_checkpoint(2000, 2000, 100, 100,
                                         (1, 2), grid,
                                         materialized=False)
        return results[0].elapsed

    t_small = elapsed((2, 2))
    t_large = elapsed((2, 4))
    # More destinations != faster: everything still flows through rank 0.
    assert t_large > 0.8 * t_small


def test_identity_checkpoint_roundtrip():
    _machine, _source, results = run_checkpoint(
        20, 20, 5, 5, (2, 2), (2, 2))
    rng = np.random.default_rng(2)
    np.testing.assert_allclose(results[0].matrix.to_global(),
                               rng.standard_normal((20, 20)))
