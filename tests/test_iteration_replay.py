"""The generalized measure-once iteration replay (Application.replay_iterations).

Covers the contract around the helper itself; the clock-equivalence of
the apps that adopted it (LU, MM) is pinned in
``tests/test_fastcoll_equivalence.py``.
"""

from repro.api import run_static
from repro.apps import MatMulApplication
from repro.apps.base import AppContext, Application
from repro.blacs import BlacsContext, ProcessGrid
from repro.cluster import Machine, MachineSpec
from repro.darray import Descriptor, DistributedMatrix
from repro.mpi import Phantom, World
from repro.simulate import Environment


class CountingApp(Application):
    """Phantom app whose iteration body counts its live executions."""

    topology = "flat"

    def __init__(self, *args, confirm=1, **kwargs):
        kwargs.setdefault("materialized", False)
        super().__init__(*args, **kwargs)
        self.body_runs = 0
        self.confirm = confirm

    @property
    def name(self) -> str:
        return "Counting"

    def create_data(self, grid):
        desc = Descriptor(m=self.problem_size, n=self.problem_size,
                          mb=self.block, nb=self.problem_size,
                          grid=ProcessGrid(grid.size, 1),
                          itemsize=self.dtype.itemsize)
        return {"A": DistributedMatrix(desc, materialized=False)}

    def _body(self, ctx):
        if ctx.comm.rank == 0:
            self.body_runs += 1
        result = yield from ctx.comm.allreduce(Phantom(1000))
        return result

    def iterate(self, ctx):
        yield from self.replay_iterations(ctx, lambda: self._body(ctx),
                                          confirm=self.confirm)


def test_anchored_runtime_replays():
    """Driven by run_static (barriers around iterations), the body runs
    ``confirm`` times and every further iteration is replayed."""
    app = CountingApp(64, block=8, iterations=6)
    result = run_static(app, (4, 1),
                        machine_spec=MachineSpec(num_nodes=4))
    assert app.body_runs == 1
    assert len(result.iteration_times) == 6
    # Replayed iterations charge exactly the measured duration.
    times = result.iteration_times
    assert times[1:] == [times[1]] * 5


def test_confirm_two_measures_twice():
    app = CountingApp(64, block=8, iterations=6, confirm=2)
    run_static(app, (4, 1), machine_spec=MachineSpec(num_nodes=4))
    assert app.body_runs == 2


def test_unanchored_driver_declines():
    """A custom loop without the runtime's barriers must run the body
    live every iteration — replay would be unsound there."""
    app = CountingApp(64, block=8, iterations=5)
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=4))
    world = World(env, machine, launch_overhead=0.0)
    data = app.create_data(ProcessGrid(4, 1))

    def main(comm):
        blacs = yield from BlacsContext.create(comm, 4, 1)
        ctx = AppContext(comm, blacs, data, machine)
        # No barriers, no iteration_anchored flag: decline.
        for _ in range(5):
            yield from app.iterate(ctx)

    world.launch(main, processors=list(range(4)))
    env.run()
    assert app.body_runs == 5


def test_fastpath_off_declines():
    """Without the deterministic fast path the helper must not replay
    (tracing/ablation runs need the live event traffic)."""
    app = CountingApp(64, block=8, iterations=4)
    run_static(app, (4, 1), machine_spec=MachineSpec(num_nodes=4),
               collective_fastpath=False)
    assert app.body_runs == 4


def test_materialized_declines():
    """Real data means real per-iteration arithmetic; never replay."""
    app = MatMulApplication(48, block=12, iterations=3, materialized=True)
    result = run_static(app, (2, 2), machine_spec=MachineSpec(num_nodes=4),
                        verify=True)
    assert len(result.iteration_times) == 3
    assert result.verified is True
