"""Focused tests of the shrink mechanics (§3.1's second rule set)."""

import numpy as np
from repro.apps import LUApplication, MasterWorkerApplication
from repro.cluster import MachineSpec
from repro.core import JobState, ReshapeFramework


def test_shrink_only_to_previously_visited_configs():
    """'Applications can only shrink to processor configurations on
    which they have previously run.'"""
    fw = ReshapeFramework(num_processors=8, machine_spec=MachineSpec(num_nodes=8))
    first = LUApplication(480, block=48, iterations=10)
    second = LUApplication(480, block=48, iterations=2)
    j1 = fw.submit(first, config=(1, 2), arrival=0.0)
    fw.submit(second, config=(2, 3), arrival=0.2)
    fw.run()
    visited = []
    shrunk_to = []
    for change in fw.timeline.changes:
        if change.job_id != j1.job_id:
            continue
        if change.reason in ("start", "expand"):
            visited.append(change.config)
        elif change.reason == "shrink":
            shrunk_to.append(change.config)
    for config in shrunk_to:
        assert config in visited


def test_shrink_frees_exact_processor_suffix():
    """Survivors keep the low ranks; freed processors return to pool."""
    fw = ReshapeFramework(num_processors=8, machine_spec=MachineSpec(num_nodes=8))
    first = LUApplication(480, block=48, iterations=10)
    second = LUApplication(480, block=48, iterations=1)
    j1 = fw.submit(first, config=(1, 2), arrival=0.0)
    j2 = fw.submit(second, config=(2, 3), arrival=0.2)
    fw.run()
    assert j1.state == j2.state == JobState.FINISHED
    # At j2's start everything it used had been freed by j1's shrink.
    assert j2.start_time is not None


def test_departing_ranks_data_rescued():
    """Shrink redistributes data off the departing processors first."""
    fw = ReshapeFramework(num_processors=8, machine_spec=MachineSpec(num_nodes=8))
    app = LUApplication(480, block=48, iterations=10, materialized=True)
    j1 = fw.submit(app, config=(1, 2), arrival=0.0)
    fw.submit(LUApplication(480, block=48, iterations=1),
              config=(2, 3), arrival=0.2)
    fw.run()
    rng = np.random.default_rng(1234)
    ref = rng.standard_normal((480, 480))
    np.testing.assert_allclose(j1.data["A"].to_global(), ref)


def test_masterworker_shrinks_for_queue_without_data_cost():
    fw = ReshapeFramework(num_processors=10,
                          machine_spec=MachineSpec(num_nodes=10))
    mw = MasterWorkerApplication(int(2e10), iterations=12)
    mw.units_per_iteration = 400
    mw.chunk_size = 50
    j1 = fw.submit(mw, config=(1, 4), arrival=0.0)
    j2 = fw.submit(LUApplication(480, block=48, iterations=2),
                   config=(2, 3), arrival=1.0)
    fw.run()
    assert j1.state == j2.state == JobState.FINISHED
    shrinks = [c for c in fw.timeline.changes
               if c.reason == "shrink" and c.job_id == j1.job_id]
    assert shrinks, "master-worker should shrink for the queued LU"
    assert j1.redistribution_time == 0.0


def test_shrink_to_starting_set_when_cannot_free_enough():
    """'...the Remap Scheduler will shrink the application to its
    smallest shrink point (i.e., its starting processor set).'"""
    fw = ReshapeFramework(num_processors=12,
                          machine_spec=MachineSpec(num_nodes=12))
    first = LUApplication(480, block=48, iterations=14)
    # The queued job is too big to ever start: the running job still
    # falls back to its starting configuration.
    blocked = LUApplication(960, block=96, iterations=1)
    j1 = fw.submit(first, config=(1, 2), arrival=0.0)
    fw.submit(blocked, config=(3, 4), arrival=0.2)
    fw.run(until=200.0)
    shrinks = [c for c in fw.timeline.changes
               if c.reason == "shrink" and c.job_id == j1.job_id]
    assert shrinks
    assert shrinks[-1].config == (1, 2)


def test_static_never_shrinks():
    fw = ReshapeFramework(num_processors=8, machine_spec=MachineSpec(num_nodes=8),
                          dynamic=False)
    fw.submit(LUApplication(480, block=48, iterations=6), config=(2, 2))
    fw.submit(LUApplication(480, block=48, iterations=2), config=(2, 2),
              arrival=0.1)
    fw.run()
    reasons = {c.reason for c in fw.timeline.changes}
    assert "shrink" not in reasons and "expand" not in reasons
