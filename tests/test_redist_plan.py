"""Precomputed per-rank redistribution delivery vs the reference scan.

PR 2 replaced the driver's per-step, per-rank O(ranks x messages)
rediscovery of "which messages are mine" with a cached
:class:`repro.redist.tables.RedistPlan`.  These tests prove the plan is
a pure re-indexing of the schedule (same sends, same order, same byte
counts, same expected receives) and that the driver's simulated clock
and accounting are unchanged.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blacs import ProcessGrid
from repro.cluster import Machine, MachineSpec
from repro.darray import Descriptor, DistributedMatrix
from repro.mpi import World
from repro.redist import redistribute
from repro.redist.tables import (
    build_rank_plans,
    cached_rank_plans,
    cached_2d_schedule,
    message_nbytes,
)
from repro.simulate import Environment


def reference_rank_scan(schedule, src_grid, dst_grid, desc, rank):
    """The pre-plan driver loop: scan every step for this rank's work."""
    steps = []
    for step in schedule.steps:
        sends = []
        recv_count = 0
        for msg in step:
            nbytes = message_nbytes(desc.m, desc.n, desc.mb, desc.nb,
                                    desc.itemsize, msg)
            src_rank = src_grid.rank_of(*msg.src)
            dst_rank = dst_grid.rank_of(*msg.dst)
            if src_rank == rank and nbytes > 0:
                sends.append((msg, dst_rank, nbytes))
            if dst_rank == rank and src_rank != rank and nbytes > 0:
                recv_count += 1
        steps.append((tuple(sends), recv_count))
    return steps


grids = st.sampled_from([(1, 2), (2, 2), (2, 3), (3, 2), (3, 3), (2, 4),
                         (4, 4), (1, 6), (5, 1)])


@settings(deadline=None, max_examples=40)
@given(src=grids, dst=grids,
       m=st.integers(1, 40), n=st.integers(1, 40),
       mb=st.integers(1, 7), nb=st.integers(1, 7))
def test_plan_matches_reference_scan(src, dst, m, n, mb, nb):
    desc = Descriptor(m=m, n=n, mb=mb, nb=nb, grid=ProcessGrid(*src))
    schedule = cached_2d_schedule(desc.row_blocks, desc.col_blocks,
                                  src, dst)
    src_grid, dst_grid = ProcessGrid(*src), ProcessGrid(*dst)
    plan = build_rank_plans(schedule, src_grid, dst_grid,
                            m, n, mb, nb, desc.itemsize)
    assert plan.num_steps == schedule.num_steps
    for rank in range(max(src_grid.size, dst_grid.size) + 1):
        expected = reference_rank_scan(schedule, src_grid, dst_grid,
                                       desc, rank)
        got = [(step.sends, step.recv_count)
               for step in plan.rank_steps(rank)]
        assert got == expected


def test_cached_plan_is_shared():
    args = (10, 10, (2, 2), (2, 3), 100, 100, 10, 10, 8)
    assert cached_rank_plans(*args) is cached_rank_plans(*args)


@pytest.mark.parametrize("fast", [False, True])
@pytest.mark.parametrize("shapes", [((2, 2), (2, 3)), ((3, 2), (2, 2)),
                                    ((1, 4), (3, 2))])
def test_redistribute_clock_unchanged(shapes, fast):
    """The planned driver redistributes with the exact same simulated
    elapsed time and accounting as before, fast path on or off."""
    old_shape, new_shape = shapes
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=16))
    world = World(env, machine, launch_overhead=0.0,
                  collective_fastpath=fast)
    old_grid = ProcessGrid(*old_shape)
    new_grid = ProcessGrid(*new_shape)
    desc = Descriptor(m=240, n=240, mb=24, nb=24, grid=old_grid)
    source = DistributedMatrix(desc, materialized=False)
    results = {}

    def main(comm):
        res = yield from redistribute(comm, source, new_grid)
        results[comm.rank] = res

    nprocs = max(old_grid.size, new_grid.size)
    world.launch(main, processors=list(range(nprocs)))
    env.run()
    elapsed = {r.elapsed for r in results.values()}
    assert len(elapsed) == 1
    res = results[0]
    assert res.steps > 0
    assert res.total_bytes_moved == sum(
        r.bytes_moved for r in results.values())
    results["snapshot"] = (res.elapsed, res.total_bytes_moved,
                           res.messages, res.local_copies)
    # Pin against a second identical run — determinism across the
    # plan/caches (the cache must not mutate shared state).
    env2 = Environment()
    machine2 = Machine(env2, MachineSpec(num_nodes=16))
    world2 = World(env2, machine2, launch_overhead=0.0,
                   collective_fastpath=fast)
    source2 = DistributedMatrix(desc, materialized=False)
    results2 = {}

    def main2(comm):
        res2 = yield from redistribute(comm, source2, new_grid)
        results2[comm.rank] = res2

    world2.launch(main2, processors=list(range(nprocs)))
    env2.run()
    assert results2[0].elapsed == res.elapsed
    assert results2[0].total_bytes_moved == res.total_bytes_moved


def test_redistribute_fast_and_slow_clocks_agree():
    """Fast-path barriers around the redistribution leave the elapsed
    time bit-identical to the generator path."""
    def run(fast):
        env = Environment()
        machine = Machine(env, MachineSpec(num_nodes=16))
        world = World(env, machine, launch_overhead=0.0,
                      collective_fastpath=fast)
        old_grid, new_grid = ProcessGrid(2, 2), ProcessGrid(2, 3)
        desc = Descriptor(m=360, n=360, mb=24, nb=24, grid=old_grid)
        source = DistributedMatrix(desc, materialized=False)
        results = {}

        def main(comm):
            res = yield from redistribute(comm, source, new_grid)
            results[comm.rank] = res

        world.launch(main, processors=list(range(6)))
        env.run()
        return env.now, results[0].elapsed, results[0].bytes_moved

    assert run(False) == run(True)
