"""Dynamic process management: spawn, merge, sub-communicators."""

import pytest

from repro.cluster import Machine, MachineSpec
from repro.mpi import MPIError, SUM, World
from repro.simulate import Environment


def make_world(num_nodes=16, spawn_overhead=0.0):
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=num_nodes))
    world = World(env, machine, launch_overhead=0.0,
                  spawn_overhead=spawn_overhead)
    return env, world


def test_spawn_and_merge_allreduce():
    """Parents spawn two children; merged comm of 4 runs an allreduce."""
    env, world = make_world()
    results = {}

    def child_main(comm):
        total = yield from comm.allreduce(comm.rank, SUM)
        results[f"child{comm.rank}"] = total

    def parent_main(comm):
        merged = None
        if comm.rank == 0:
            inter = world.spawn_multiple(child_main, [2, 3], parent=comm)
            merged = inter.merge(parent_rank=0)
        # Root shares the merged shared-state with the other parents.
        merged = yield from comm.bcast(merged, root=0)
        if comm.rank != 0:
            merged = merged.view(comm.rank)
        total = yield from merged.allreduce(merged.rank, SUM)
        results[f"parent{comm.rank}"] = total

    world.launch(parent_main, processors=[0, 1])
    env.run()
    # ranks 0+1+2+3 = 6 everywhere
    assert results == {"parent0": 6, "parent1": 6, "child2": 6, "child3": 6}


def test_merged_rank_order_parents_first():
    env, world = make_world()
    seen = {}

    def child_main(comm):
        seen[("child", comm.rank)] = comm.processors
        yield comm.env.timeout(0)

    def parent_main(comm):
        if comm.rank == 0:
            inter = world.spawn_multiple(child_main, [7, 9], parent=comm)
            merged = inter.merge(parent_rank=0)
            seen[("parent", merged.rank)] = merged.processors
        yield comm.env.timeout(0)

    world.launch(parent_main, processors=[3, 5])
    env.run()
    # Parent processors [3,5] keep ranks 0,1; children 7,9 get ranks 2,3.
    assert seen[("parent", 0)] == [3, 5, 7, 9]
    assert seen[("child", 2)] == [3, 5, 7, 9]
    assert seen[("child", 3)] == [3, 5, 7, 9]


def test_spawn_overhead_charged():
    env, world = make_world(spawn_overhead=0.5)
    started = {}

    def child_main(comm):
        started[comm.rank] = comm.env.now
        yield comm.env.timeout(0)

    def parent_main(comm):
        world.spawn_multiple(child_main, [1], parent=comm)
        yield comm.env.timeout(0)

    world.launch(parent_main, processors=[0])
    env.run()
    assert started[1] == pytest.approx(0.5)


def test_spawn_overlapping_processors_rejected():
    env, world = make_world()

    def child_main(comm):
        yield comm.env.timeout(0)

    def parent_main(comm):
        world.spawn_multiple(child_main, [0], parent=comm)
        yield comm.env.timeout(0)

    world.launch(parent_main, processors=[0, 1])
    with pytest.raises(MPIError):
        env.run()


def test_create_sub_shrinks_group():
    env, world = make_world()
    out = {}

    def main(comm):
        sub = yield from comm.create_sub([0, 1])
        if sub is not None:
            total = yield from sub.allreduce(sub.rank + 100, SUM)
            out[comm.rank] = (sub.rank, sub.size, total)
        else:
            out[comm.rank] = None

    world.launch(main, processors=[10, 11, 12, 13])
    env.run()
    assert out[0] == (0, 2, 201)
    assert out[1] == (1, 2, 201)
    assert out[2] is None and out[3] is None


def test_create_sub_preserves_processors():
    env, world = make_world()
    out = {}

    def main(comm):
        sub = yield from comm.create_sub([0, 2])
        if sub is not None:
            out[comm.rank] = sub.processors
        else:
            yield comm.env.timeout(0)

    world.launch(main, processors=[5, 6, 7])
    env.run()
    assert out[0] == [5, 7]
    assert out[2] == [5, 7]


def test_create_sub_empty_rejected():
    env, world = make_world()

    def main(comm):
        yield from comm.create_sub([])

    world.launch(main, processors=[0])
    with pytest.raises(MPIError):
        env.run()


def test_dup_gives_independent_mailboxes():
    env, world = make_world()
    out = {}

    def main(comm):
        dup = yield from comm.dup()
        if comm.rank == 0:
            # Send on the duplicate; a recv on the original must not see it.
            yield from dup.send("on-dup", dest=1, tag=7)
        else:
            got = yield from dup.recv(source=0, tag=7)
            out["dup"] = got
            out["orig_empty"] = len(comm._shared.mailboxes[comm.rank]) == 0

    world.launch(main, processors=[0, 1])
    env.run()
    assert out == {"dup": "on-dup", "orig_empty": True}


def test_launch_zero_processors_rejected():
    env, world = make_world()

    def main(comm):
        yield comm.env.timeout(0)

    with pytest.raises(MPIError):
        world.launch(main, processors=[])


def test_duplicate_processors_rejected():
    env, world = make_world()

    def main(comm):
        yield comm.env.timeout(0)

    with pytest.raises(MPIError):
        world.launch(main, processors=[0, 0])


def test_shrink_then_regrow_cycle():
    """The full ReSHAPE mechanic: 4 ranks -> sub(2) -> spawn back to 4."""
    env, world = make_world()
    trace = []

    def child_main(comm):
        total = yield from comm.allreduce(1, SUM)
        trace.append(("child", comm.rank, total))

    def main(comm):
        sub = yield from comm.create_sub([0, 1])
        if sub is None:
            return  # ranks 2,3 exit — the "shrink"
        merged = None
        if sub.rank == 0:
            inter = world.spawn_multiple(child_main, [8, 9], parent=sub)
            merged = inter.merge(parent_rank=0)
        merged = yield from sub.bcast(merged, root=0)
        if sub.rank != 0:
            merged = merged.view(sub.rank)
        total = yield from merged.allreduce(1, SUM)
        trace.append(("parent", merged.rank, total))

    world.launch(main, processors=[0, 1, 2, 3])
    env.run()
    totals = {t[2] for t in trace}
    assert totals == {4}
    assert len(trace) == 4
