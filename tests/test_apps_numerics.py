"""Numerical correctness of the distributed kernels (materialized mode)."""

import numpy as np
import pytest

from repro.apps import (
    FFT2DApplication,
    JacobiApplication,
    LUApplication,
    MasterWorkerApplication,
    MatMulApplication,
)
from repro.apps.base import AppContext
from repro.apps.fft2d import fft2d_once
from repro.apps.lu import pdgetrf
from repro.apps.matmul import pdgemm
from repro.blacs import BlacsContext, ProcessGrid
from repro.cluster import Machine, MachineSpec
from repro.darray import Descriptor, DistributedMatrix
from repro.mpi import World
from repro.simulate import Environment


def run_kernel(nprocs, body, num_nodes=16):
    """SPMD harness: every rank runs body(ctx) after building a context."""
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=num_nodes))
    world = World(env, machine, launch_overhead=0.0)
    results = {}

    def main(comm, pr, pc):
        blacs = yield from BlacsContext.create(comm, pr, pc)
        ctx = AppContext(blacs.comm, blacs, {}, machine)
        out = yield from body(ctx)
        results[comm.rank] = out

    return env, world, results, main


def spmd(pr, pc, body, num_nodes=16):
    env, world, results, main = run_kernel(pr * pc, body, num_nodes)
    world.launch(main, processors=list(range(pr * pc)), args=(pr, pc))
    env.run()
    return results


def lu_reconstruction_error(n, nb, pr, pc, seed=3):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    desc = Descriptor(m=n, n=n, mb=nb, nb=nb, grid=ProcessGrid(pr, pc))
    dm = DistributedMatrix.from_global(a, desc)

    def body(ctx):
        ipiv = yield from pdgetrf(ctx, dm)
        return ipiv

    results = spmd(pr, pc, body)
    ipiv = results[0]
    factors = dm.to_global()
    lower = np.tril(factors, -1) + np.eye(n)
    upper = np.triu(factors)
    pa = a.copy()
    for j, gp in ipiv:
        pa[[j, gp]] = pa[[gp, j]]
    return np.max(np.abs(pa - lower @ upper)) / np.max(np.abs(a))


class TestLU:
    @pytest.mark.parametrize("pr,pc", [(1, 1), (1, 2), (2, 2), (2, 3)])
    def test_pa_equals_lu(self, pr, pc):
        err = lu_reconstruction_error(n=24, nb=4, pr=pr, pc=pc)
        assert err < 1e-12

    def test_ragged_blocks(self):
        err = lu_reconstruction_error(n=26, nb=4, pr=2, pc=2)
        assert err < 1e-12

    def test_block_equals_matrix(self):
        err = lu_reconstruction_error(n=16, nb=16, pr=1, pc=1)
        assert err < 1e-12

    def test_pivoting_matches_numpy_growth(self):
        """Partial pivoting keeps multipliers bounded by 1."""
        n, nb = 20, 5
        rng = np.random.default_rng(11)
        a = rng.standard_normal((n, n))
        desc = Descriptor(m=n, n=n, mb=nb, nb=nb, grid=ProcessGrid(2, 2))
        dm = DistributedMatrix.from_global(a, desc)

        def body(ctx):
            yield from pdgetrf(ctx, dm)

        spmd(2, 2, body)
        lower = np.tril(dm.to_global(), -1)
        assert np.max(np.abs(lower)) <= 1.0 + 1e-12


class TestMatMul:
    @pytest.mark.parametrize("pr,pc", [(1, 1), (2, 1), (2, 2), (2, 3)])
    def test_matches_numpy(self, pr, pc):
        n, nb = 24, 4
        rng = np.random.default_rng(4)
        a_g = rng.standard_normal((n, n))
        b_g = rng.standard_normal((n, n))
        desc = Descriptor(m=n, n=n, mb=nb, nb=nb, grid=ProcessGrid(pr, pc))
        a = DistributedMatrix.from_global(a_g, desc)
        b = DistributedMatrix.from_global(b_g, desc)
        c = DistributedMatrix(desc)

        def body(ctx):
            yield from pdgemm(ctx, a, b, c)

        spmd(pr, pc, body)
        np.testing.assert_allclose(c.to_global(), a_g @ b_g, atol=1e-10)

    def test_ragged_blocks(self):
        n, nb = 22, 5
        rng = np.random.default_rng(8)
        a_g = rng.standard_normal((n, n))
        b_g = rng.standard_normal((n, n))
        desc = Descriptor(m=n, n=n, mb=nb, nb=nb, grid=ProcessGrid(2, 2))
        a = DistributedMatrix.from_global(a_g, desc)
        b = DistributedMatrix.from_global(b_g, desc)
        c = DistributedMatrix(desc)

        def body(ctx):
            yield from pdgemm(ctx, a, b, c)

        spmd(2, 2, body)
        np.testing.assert_allclose(c.to_global(), a_g @ b_g, atol=1e-10)


class TestFFT2D:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_numpy_fft2(self, p):
        n, mb = 16, 2
        rng = np.random.default_rng(12)
        img = rng.standard_normal((n, n)).astype(np.complex128)
        desc = Descriptor(m=n, n=n, mb=mb, nb=n, grid=ProcessGrid(p, 1),
                          itemsize=16)
        dm = DistributedMatrix.from_global(img, desc)
        scratch = DistributedMatrix(desc, dtype=np.complex128)

        def body(ctx):
            yield from fft2d_once(ctx, dm, scratch)

        spmd(p, 1, body)
        np.testing.assert_allclose(dm.to_global(), np.fft.fft2(img),
                                   atol=1e-9)


class TestJacobiApp:
    def test_converges_to_solution(self):
        app = JacobiApplication(40, block=5, iterations=3,
                                materialized=True)
        app.inner_sweeps = 30
        from repro.api import run_static
        result = run_static(app, (4, 1), verify=True)
        assert result.verified is True
        assert len(result.iteration_times) == 3


class TestMasterWorker:
    def test_all_units_processed(self):
        app = MasterWorkerApplication(int(1e9), iterations=2)
        app.units_per_iteration = 1000
        app.chunk_size = 100
        from repro.api import run_static
        result = run_static(app, (1, 4))
        assert len(result.iteration_times) == 2
        assert all(t > 0 for t in result.iteration_times)

    def test_more_workers_faster(self):
        def time_with(p):
            app = MasterWorkerApplication(int(4e9), iterations=1)
            app.units_per_iteration = 2000
            app.chunk_size = 100
            from repro.api import run_static
            return run_static(app, (1, p)).mean_iteration_time

        t3, t9 = time_with(3), time_with(9)
        assert t9 < t3


class TestApplicationInterface:
    def test_factory(self):
        from repro.apps import application_by_name
        assert application_by_name("lu", problem_size=100).name == "LU"
        assert application_by_name("FFT", problem_size=64).name == "FFT"
        with pytest.raises(ValueError):
            application_by_name("nope", problem_size=4)

    def test_flops_per_iteration_reported(self):
        assert LUApplication(100).flops_per_iteration() == \
            pytest.approx(2 / 3 * 1e6)
        assert MatMulApplication(100).flops_per_iteration() == \
            pytest.approx(2e6)

    def test_legal_configs_respect_divisibility(self):
        app = LUApplication(8000)
        for pr, pc in app.legal_configs(50):
            assert 8000 % pr == 0 and 8000 % pc == 0

    def test_fft_configs_power_of_two(self):
        app = FFT2DApplication(8192)
        sizes = [pr * pc for pr, pc in app.legal_configs(50)]
        assert sizes == [1, 2, 4, 8, 16, 32]

    def test_masterworker_has_no_data(self):
        app = MasterWorkerApplication(int(4e9))
        assert app.create_data(ProcessGrid(1, 4)) == {}

    def test_bad_problem_size(self):
        with pytest.raises(ValueError):
            LUApplication(0)
