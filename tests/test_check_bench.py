"""The CI benchmark-regression gate: passes clean, fails on slowdown."""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parents[1] / "scripts"))
import check_bench  # noqa: E402


@pytest.fixture
def dirs(tmp_path):
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    results.mkdir()
    baselines.mkdir()
    return results, baselines


def write(directory, name, payload):
    (directory / name).write_text(json.dumps(payload))


def engine_payload(raw_speedup=2.3, hold_speedup=2.7, sched_speedup=5.0):
    return {"raw_kernel": {"speedup": raw_speedup,
                           "hold": {"speedup": hold_speedup}},
            "scheduler": {"speedup_vs_seed": sched_speedup}}


def run_gate(results, baselines, tolerance=0.25):
    return check_bench.main(["--results", str(results),
                             "--baselines", str(baselines),
                             "--tolerance", str(tolerance)])


def test_gate_passes_within_tolerance(dirs, capsys):
    results, baselines = dirs
    write(baselines, "BENCH_engine_smoke.json", engine_payload())
    write(results, "BENCH_engine_smoke.json",
          engine_payload(raw_speedup=2.0))  # -13%: inside 25%
    assert run_gate(results, baselines) == 0
    assert "all tracked metrics within tolerance" in capsys.readouterr().out


def test_gate_fails_on_regression(dirs, capsys):
    results, baselines = dirs
    write(baselines, "BENCH_engine_smoke.json", engine_payload())
    write(results, "BENCH_engine_smoke.json",
          engine_payload(raw_speedup=1.0))  # -57%: an injected slowdown
    assert run_gate(results, baselines) == 1
    out = capsys.readouterr().out
    assert "raw_kernel.speedup" in out
    assert "FAIL" in out


def test_gate_fails_on_missing_result_file(dirs):
    results, baselines = dirs
    write(baselines, "BENCH_engine_smoke.json", engine_payload())
    assert run_gate(results, baselines) == 1


def test_gate_skips_files_without_baseline(dirs):
    results, baselines = dirs
    write(results, "BENCH_engine_smoke.json", engine_payload())
    # No baselines committed at all: nothing to compare, gate is green.
    assert run_gate(results, baselines) == 0


def test_gate_fails_on_metric_missing_from_results(dirs):
    results, baselines = dirs
    write(baselines, "BENCH_engine_smoke.json", engine_payload())
    write(results, "BENCH_engine_smoke.json", {"raw_kernel": {}})
    assert run_gate(results, baselines) == 1


def sweep_payload(ratio_min=5.0, ratio_max=14.0, in_band=True,
                  speedup=1.9, bit_identical=True, skipped=None):
    parallel = {"speedup": speedup, "bit_identical": bit_identical}
    if skipped:
        parallel["speedup_skipped"] = skipped
    return {"checkpoint": {"ratio_min": ratio_min, "ratio_max": ratio_max,
                           "in_band": in_band},
            "parallel": parallel}


def test_gate_checks_absolute_band_and_floor(dirs):
    results, baselines = dirs
    write(baselines, "BENCH_sweep_smoke.json", sweep_payload())
    write(results, "BENCH_sweep_smoke.json", sweep_payload())
    assert run_gate(results, baselines) == 0


def test_gate_fails_outside_paper_band(dirs, capsys):
    results, baselines = dirs
    write(baselines, "BENCH_sweep_smoke.json", sweep_payload())
    write(results, "BENCH_sweep_smoke.json",
          sweep_payload(ratio_max=30.0, in_band=False))
    assert run_gate(results, baselines) == 1
    out = capsys.readouterr().out
    assert "checkpoint.ratio_max" in out
    assert "checkpoint.in_band" in out


def test_gate_fails_below_speedup_floor(dirs, capsys):
    results, baselines = dirs
    write(baselines, "BENCH_sweep_smoke.json", sweep_payload())
    write(results, "BENCH_sweep_smoke.json", sweep_payload(speedup=1.2))
    assert run_gate(results, baselines) == 1
    assert "parallel.speedup" in capsys.readouterr().out


def test_gate_fails_when_merge_not_bit_identical(dirs):
    results, baselines = dirs
    write(baselines, "BENCH_sweep_smoke.json", sweep_payload())
    write(results, "BENCH_sweep_smoke.json",
          sweep_payload(bit_identical=False))
    assert run_gate(results, baselines) == 1


def test_gate_skips_explicit_null_but_fails_missing_key(dirs, capsys):
    results, baselines = dirs
    write(baselines, "BENCH_sweep_smoke.json", sweep_payload())
    # An honest null (single-core host) passes with a notice...
    write(results, "BENCH_sweep_smoke.json",
          sweep_payload(speedup=None, skipped="host has 1 core"))
    assert run_gate(results, baselines) == 0
    assert "host has 1 core" in capsys.readouterr().out
    # ...while a silently absent metric is a broken producer.
    payload = sweep_payload()
    del payload["parallel"]["speedup"]
    write(results, "BENCH_sweep_smoke.json", payload)
    assert run_gate(results, baselines) == 1


def test_tracked_metrics_exist_in_committed_baselines():
    """Every baseline-relative tracked metric must resolve in the
    committed baselines — a renamed JSON field would otherwise silently
    weaken the gate.  Absolute entries (within/atleast/flag) carry
    their reference in TRACKED itself; for those, only the file must
    exist."""
    root = pathlib.Path(__file__).parents[1]
    baselines = root / "benchmarks" / "baselines"
    for name, metrics in check_bench.TRACKED.items():
        data = json.loads((baselines / name).read_text())
        for entry in metrics:
            path, direction = entry[0], entry[1]
            if direction in ("higher", "lower"):
                assert check_bench.lookup(data, path) is not None, \
                    f"{name}:{path} missing from committed baseline"
