"""The CI benchmark-regression gate: passes clean, fails on slowdown."""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parents[1] / "scripts"))
import check_bench  # noqa: E402


@pytest.fixture
def dirs(tmp_path):
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    results.mkdir()
    baselines.mkdir()
    return results, baselines


def write(directory, name, payload):
    (directory / name).write_text(json.dumps(payload))


def engine_payload(raw_speedup=2.3, hold_speedup=2.7, sched_speedup=5.0):
    return {"raw_kernel": {"speedup": raw_speedup,
                           "hold": {"speedup": hold_speedup}},
            "scheduler": {"speedup_vs_seed": sched_speedup}}


def run_gate(results, baselines, tolerance=0.25):
    return check_bench.main(["--results", str(results),
                             "--baselines", str(baselines),
                             "--tolerance", str(tolerance)])


def test_gate_passes_within_tolerance(dirs, capsys):
    results, baselines = dirs
    write(baselines, "BENCH_engine_smoke.json", engine_payload())
    write(results, "BENCH_engine_smoke.json",
          engine_payload(raw_speedup=2.0))  # -13%: inside 25%
    assert run_gate(results, baselines) == 0
    assert "all tracked metrics within tolerance" in capsys.readouterr().out


def test_gate_fails_on_regression(dirs, capsys):
    results, baselines = dirs
    write(baselines, "BENCH_engine_smoke.json", engine_payload())
    write(results, "BENCH_engine_smoke.json",
          engine_payload(raw_speedup=1.0))  # -57%: an injected slowdown
    assert run_gate(results, baselines) == 1
    out = capsys.readouterr().out
    assert "raw_kernel.speedup" in out
    assert "FAIL" in out


def test_gate_fails_on_missing_result_file(dirs):
    results, baselines = dirs
    write(baselines, "BENCH_engine_smoke.json", engine_payload())
    assert run_gate(results, baselines) == 1


def test_gate_skips_files_without_baseline(dirs):
    results, baselines = dirs
    write(results, "BENCH_engine_smoke.json", engine_payload())
    # No baselines committed at all: nothing to compare, gate is green.
    assert run_gate(results, baselines) == 0


def test_gate_fails_on_metric_missing_from_results(dirs):
    results, baselines = dirs
    write(baselines, "BENCH_engine_smoke.json", engine_payload())
    write(results, "BENCH_engine_smoke.json", {"raw_kernel": {}})
    assert run_gate(results, baselines) == 1


def test_tracked_metrics_exist_in_committed_baselines():
    """Every tracked metric must resolve in the committed baselines —
    a renamed JSON field would otherwise silently weaken the gate."""
    root = pathlib.Path(__file__).parents[1]
    baselines = root / "benchmarks" / "baselines"
    for name, metrics in check_bench.TRACKED.items():
        data = json.loads((baselines / name).read_text())
        for path, _direction in metrics:
            assert check_bench.lookup(data, path) is not None, \
                f"{name}:{path} missing from committed baseline"
