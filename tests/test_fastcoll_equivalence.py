"""Clock-equivalence of the phantom fast path against the generator path.

The fast-path contract (docs/phantom.md): with the same inputs, a
fast-path collective produces *identical* simulated completion times,
return values, ``CommStats`` and ``NetworkStats`` counters as the
generator algorithm it short-circuits.  These property tests drive both
paths over randomized rank counts, payload sizes and per-rank arrival
skews and require bit-identical clocks.

The composite kernels (LU) additionally pin the closed-form per-panel
tables and the O(1) iteration replay against the sampled reference
path.  Those are exact up to floating-point association and the
resolution order of exactly-tied NIC grants (see docs/phantom.md), so
they get a tight band instead of equality.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import run_static
from repro.apps import (
    FFT2DApplication,
    JacobiApplication,
    LUApplication,
    MatMulApplication,
)
from repro.cluster import Machine, MachineSpec
from repro.mpi import MAX, Phantom, SUM, World
from repro.simulate import Environment
import repro.mpi.comm as comm_module


def run_both(main, nprocs, *, num_nodes=None, **spec_kwargs):
    """Run ``main`` SPMD with the fast path off and on; return both
    observations as ``(end_times, values, comm_stats, net_stats)``.

    The off leg disables both fast paths (p2p follows the collective
    switch), so it is the pristine event-kernel path.
    """
    out = []
    for fast in (False, True):
        env = Environment()
        machine = Machine(env, MachineSpec(
            num_nodes=num_nodes or max(nprocs, 2), **spec_kwargs))
        world = World(env, machine, launch_overhead=0.0,
                      collective_fastpath=fast)
        group = world.launch(main, processors=list(range(nprocs)))
        env.run()
        shared = group.comm_shared
        out.append((
            env.now,
            [p.value for p in group.processes],
            (shared.stats.sends, shared.stats.bytes_sent,
             shared.stats.collectives),
            (machine.network.stats.messages, machine.network.stats.bytes),
        ))
    return out


def normalize(value):
    """Phantoms compare by identity-ish semantics; compare byte counts."""
    if isinstance(value, Phantom):
        return ("phantom", value.nbytes)
    if isinstance(value, (list, tuple)):
        return tuple(normalize(v) for v in value)
    return value


def assert_equivalent(slow, fast):
    assert slow[0] == fast[0], "simulated end time diverged"
    assert [normalize(v) for v in slow[1]] == \
           [normalize(v) for v in fast[1]], "return values diverged"
    assert slow[2] == fast[2], "CommStats diverged"
    assert slow[3] == fast[3], "NetworkStats diverged"


def distinct_nonzero(skew):
    """No two ranks share one exact nonzero arrival offset.

    Two identical stragglers can make two transfers request the same
    NIC engine at the *bit-identical* instant; the event kernel and the
    arithmetic replay then pick equally valid but different grant
    orders (a documented caveat — see docs/phantom.md).  Everything
    else must match exactly, so the strategy keeps zero skews (the
    synchronized SPMD case) and arbitrary distinct offsets.
    """
    nonzero = [s for s in skew if s != 0.0]
    return len(nonzero) == len(set(nonzero))


skews = st.lists(
    st.one_of(st.just(0.0),
              st.floats(min_value=0.0, max_value=0.01,
                        allow_nan=False, allow_infinity=False)),
    min_size=13, max_size=13).filter(distinct_nonzero)


@settings(deadline=None, max_examples=30)
@given(nprocs=st.integers(2, 13), skew=skews)
def test_barrier_equivalence(nprocs, skew):
    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        yield from comm.barrier()
        return comm.env.now

    assert_equivalent(*run_both(main, nprocs))


@settings(deadline=None, max_examples=30)
@given(nprocs=st.integers(2, 13), root=st.integers(0, 12),
       nbytes=st.integers(0, 5_000_000), skew=skews)
def test_bcast_equivalence(nprocs, root, nbytes, skew):
    root = root % nprocs

    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        payload = Phantom(nbytes) if comm.rank == root else None
        result = yield from comm.bcast(payload, root=root)
        assert result.nbytes == nbytes
        return comm.env.now

    assert_equivalent(*run_both(main, nprocs))


@settings(deadline=None, max_examples=30)
@given(nprocs=st.integers(2, 13), root=st.integers(0, 12),
       nbytes=st.integers(0, 1_000_000), skew=skews)
def test_reduce_equivalence(nprocs, root, nbytes, skew):
    root = root % nprocs

    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        result = yield from comm.reduce(Phantom(nbytes), SUM, root=root)
        return (comm.env.now, None if result is None else result.nbytes)

    assert_equivalent(*run_both(main, nprocs))


@settings(deadline=None, max_examples=20)
@given(nprocs=st.integers(2, 13), nbytes=st.integers(0, 1_000_000),
       skew=skews)
def test_allreduce_equivalence(nprocs, nbytes, skew):
    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        result = yield from comm.allreduce(Phantom(nbytes), MAX)
        return (comm.env.now, result.nbytes)

    assert_equivalent(*run_both(main, nprocs))


@settings(deadline=None, max_examples=30)
@given(nprocs=st.integers(2, 13), root=st.integers(0, 12), skew=skews)
def test_gather_equivalence(nprocs, root, skew):
    root = root % nprocs

    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        result = yield from comm.gather(Phantom(1000 + comm.rank),
                                        root=root)
        return (comm.env.now,
                None if result is None else [p.nbytes for p in result])

    assert_equivalent(*run_both(main, nprocs))


@settings(deadline=None, max_examples=30)
@given(nprocs=st.integers(2, 13), skew=skews)
def test_allgather_equivalence(nprocs, skew):
    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        result = yield from comm.allgather(Phantom(500 * (comm.rank + 1)))
        return (comm.env.now, [p.nbytes for p in result])

    assert_equivalent(*run_both(main, nprocs))


@settings(deadline=None, max_examples=30)
@given(nprocs=st.integers(2, 10), skew=skews, seed=st.integers(0, 999))
def test_alltoall_equivalence(nprocs, skew, seed):
    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        out = [Phantom((seed + comm.rank * comm.size + d) * 97 % 40_000)
               for d in range(comm.size)]
        result = yield from comm.alltoall(out)
        return (comm.env.now, [p.nbytes for p in result])

    assert_equivalent(*run_both(main, nprocs))


@settings(deadline=None, max_examples=15)
@given(nprocs=st.integers(2, 10), skew=skews)
def test_back_to_back_collectives_equivalence(nprocs, skew):
    """Sequences exercise the persisted NIC availability (fp_free)."""
    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        yield from comm.barrier()
        r1 = yield from comm.allreduce(Phantom(4096), SUM)
        r2 = yield from comm.bcast(
            Phantom(65536) if comm.rank == 0 else None, root=0)
        yield from comm.allgather(Phantom(128))
        yield from comm.barrier()
        return (comm.env.now, r1.nbytes, r2.nbytes)

    assert_equivalent(*run_both(main, nprocs))


def test_fastpath_covers_shared_nodes():
    """Ranks sharing nodes (cpus_per_node=2) ride the fast path now —
    the shared network replay models rank-per-node NIC queueing and the
    same-node memory path exactly — with identical clocks."""
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=2, cpus_per_node=2))
    world = World(env, machine, launch_overhead=0.0)

    def probe(comm):
        yield from comm.barrier()

    group = world.launch(probe, processors=[0, 1, 2, 3])
    assert group.view(0)._fastcoll() is not None
    env.run()

    def main(comm):
        yield from comm.barrier()
        r = yield from comm.allreduce(Phantom(4096), SUM)
        r2 = yield from comm.bcast(
            Phantom(65536) if comm.rank == 0 else None, root=0)
        yield from comm.allgather(Phantom(128 * (comm.rank + 1)))
        return (comm.env.now, r.nbytes, r2.nbytes)

    assert_equivalent(*run_both(main, 4, num_nodes=2, cpus_per_node=2))


@settings(deadline=None, max_examples=15)
@given(nprocs=st.integers(2, 8), skew=skews)
def test_fastpath_covers_shared_nodes_property(nprocs, skew):
    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        yield from comm.barrier()
        r = yield from comm.allreduce(Phantom(10_000), SUM)
        yield from comm.barrier()
        return (comm.env.now, r.nbytes)

    assert_equivalent(*run_both(main, nprocs,
                                num_nodes=max(2, (nprocs + 1) // 2),
                                cpus_per_node=2))


def test_fastpath_covers_tight_backplane():
    """size * bandwidth above the backplane no longer declines the fast
    path: the replay samples backplane flow-sharing exactly."""
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=8,
                                       backplane_bandwidth=100e6))
    world = World(env, machine, launch_overhead=0.0)

    def probe(comm):
        yield from comm.barrier()

    group = world.launch(probe, processors=list(range(8)))
    assert group.view(0)._fastcoll() is not None
    env.run()

    def main(comm):
        yield from comm.barrier()
        # The ring allgather keeps `size` concurrent flows on the wire —
        # far above the 100 MB/s backplane — so every wire time pays the
        # oversubscription multiplier the event kernel samples.
        items = yield from comm.allgather(Phantom(50_000))
        r = yield from comm.allreduce(Phantom(12_345), SUM)
        yield from comm.barrier()
        return (comm.env.now, [p.nbytes for p in items], r.nbytes)

    assert_equivalent(*run_both(main, 8, num_nodes=8,
                                backplane_bandwidth=100e6))


@settings(deadline=None, max_examples=15)
@given(nprocs=st.integers(2, 10), skew=skews,
       nbytes=st.integers(1, 2_000_000))
def test_fastpath_tight_backplane_property(nprocs, skew, nbytes):
    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        yield from comm.barrier()
        items = yield from comm.allgather(Phantom(nbytes))
        yield from comm.barrier()
        return (comm.env.now, len(items))

    assert_equivalent(*run_both(main, nprocs, num_nodes=nprocs,
                                backplane_bandwidth=150e6))


def test_fastpath_respects_world_switch():
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=4))
    world = World(env, machine, launch_overhead=0.0,
                  collective_fastpath=False)

    def main(comm):
        yield from comm.barrier()

    group = world.launch(main, processors=[0, 1])
    assert group.view(0)._fastcoll() is None
    env.run()


# ---------------------------------------------------------------------------
# Composite kernels: the LU panel tables and iteration replay
# ---------------------------------------------------------------------------

def _iteration_times(app_cls, config, n, block, fast, *, iterations=3,
                     **kwargs):
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=16))
    original = comm_module.World.__init__

    def patched(self, *args, **kw):
        kw["collective_fastpath"] = fast
        original(self, *args, **kw)

    comm_module.World.__init__ = patched
    try:
        app = app_cls(n, block=block, iterations=iterations,
                      materialized=False, **kwargs)
        result = run_static(app, config, env=env, machine=machine)
    finally:
        comm_module.World.__init__ = original
    return result.iteration_times


@pytest.mark.parametrize("config,n,block", [
    ((2, 2), 480, 48),
    ((2, 3), 960, 64),
    ((3, 2), 600, 40),
])
def test_lu_phantom_fast_path_matches_reference(config, n, block):
    """Panel cost tables + O(1) iteration replay vs the sampled path.

    Exact up to float association and tied-NIC-grant ordering — both
    below 1e-3 relative by a wide margin (see docs/phantom.md).
    """
    slow = _iteration_times(LUApplication, config, n, block, False)
    fast = _iteration_times(LUApplication, config, n, block, True)
    assert fast == pytest.approx(slow, rel=1e-3)


def test_lu_iteration_replay_is_constant_per_config():
    """After the first measured iteration, replays charge the same time."""
    fast = _iteration_times(LUApplication, (2, 2), 480, 48, True,
                            iterations=4)
    assert fast[1] == pytest.approx(fast[2], rel=1e-9)
    assert fast[2] == pytest.approx(fast[3], rel=1e-9)


@pytest.mark.parametrize("app_cls,config,n,block", [
    (JacobiApplication, (4, 1), 200, 25),
    (FFT2DApplication, (4, 1), 64, 4),
])
def test_app_phantom_fast_path_exact(app_cls, config, n, block):
    slow = _iteration_times(app_cls, config, n, block, False)
    fast = _iteration_times(app_cls, config, n, block, True)
    assert fast == slow


@pytest.mark.parametrize("config,n,block", [
    ((2, 2), 192, 24),
    ((2, 3), 192, 24),
])
def test_matmul_iteration_replay_matches_reference(config, n, block):
    """SUMMA rides the generalized measure-once replay: the first two
    iterations are measured live (and must be bit-exact against the
    event path); replayed iterations agree to float cancellation of the
    absolute clocks (well under the 1e-9 drift budget)."""
    slow = _iteration_times(MatMulApplication, config, n, block, False,
                            iterations=5)
    fast = _iteration_times(MatMulApplication, config, n, block, True,
                            iterations=5)
    assert fast[:2] == slow[:2]
    assert fast == pytest.approx(slow, rel=1e-12)
    # And the replay really is constant per configuration.
    assert fast[2] == fast[3] == fast[4]
