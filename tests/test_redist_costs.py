"""Tests for the redistribution cost log and its predictor."""

import pytest

from repro.redist import RedistributionCostLog
from repro.redist.costs import _moved_fraction


class TestMovedFraction:
    def test_identity_moves_nothing(self):
        assert _moved_fraction(4, 4) == 0.0

    def test_doubling(self):
        # p=2 -> q=4: blocks 0,1 stay; 2,3 move: half the data.
        assert _moved_fraction(2, 4) == pytest.approx(0.5)

    def test_symmetric(self):
        assert _moved_fraction(3, 5) == _moved_fraction(5, 3)

    def test_bounds(self):
        for p in range(1, 8):
            for q in range(1, 8):
                f = _moved_fraction(p, q)
                assert 0.0 <= f <= 1.0


class TestCostLog:
    def test_observed_exact_pair(self):
        log = RedistributionCostLog()
        log.record((1, 2), (2, 2), 1000, 2.0, when=1.0)
        log.record((1, 2), (2, 2), 1000, 4.0, when=2.0)
        assert log.observed((1, 2), (2, 2)) == pytest.approx(3.0)
        assert log.observed((2, 2), (2, 3)) is None

    def test_predict_prefers_exact(self):
        log = RedistributionCostLog()
        log.record((1, 2), (2, 2), 1000, 2.0, when=1.0)
        assert log.predict((1, 2), (2, 2), 999999) == pytest.approx(2.0)

    def test_predict_scales_unseen_pair(self):
        log = RedistributionCostLog()
        nbytes = 100_000_000
        log.record((1, 2), (2, 2), nbytes, 5.0, when=1.0)
        # Unseen resize, double the data: prediction should exist and
        # grow with volume.
        small = log.predict((2, 2), (2, 3), nbytes)
        big = log.predict((2, 2), (2, 3), 2 * nbytes)
        assert small is not None and big is not None
        assert big > small

    def test_predict_without_history(self):
        log = RedistributionCostLog()
        assert log.predict((1, 2), (2, 2), 100) is None

    def test_effective_bandwidth_positive(self):
        log = RedistributionCostLog()
        log.record((1, 2), (2, 2), 100_000_000, 5.0, when=1.0)
        bw = log.effective_bandwidth()
        assert bw is not None and bw > 0
