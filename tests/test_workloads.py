"""Tests for workload configuration and the synthetic generator."""

import pytest

from repro.cluster.topology import config_size
from repro.core import ReshapeFramework
from repro.workloads import (
    PROCESSOR_CONFIGS,
    WORKLOAD1,
    WORKLOAD2,
    WorkloadGenerator,
    build_workload1,
    make_application,
)
from repro.workloads.paper import (
    WORKLOAD1_PROCESSORS,
    WORKLOAD2_PROCESSORS,
)


class TestTable2Configs:
    def test_all_rows_divide_problem_size(self):
        for (app, n), configs in PROCESSOR_CONFIGS.items():
            for pr, pc in configs:
                if app in ("LU", "MM"):
                    assert n % pr == 0 and n % pc == 0, (app, n, pr, pc)

    def test_sizes_within_cluster(self):
        for configs in PROCESSOR_CONFIGS.values():
            assert all(config_size(c) <= 50 for c in configs)

    def test_jacobi_row_matches_paper(self):
        sizes = [config_size(c)
                 for c in PROCESSOR_CONFIGS[("Jacobi", 8000)]]
        assert sizes == [4, 8, 10, 16, 20, 32, 40, 50]

    def test_fft_row_matches_paper(self):
        sizes = [config_size(c) for c in PROCESSOR_CONFIGS[("FFT", 8192)]]
        assert sizes == [2, 4, 8, 16, 32]

    def test_lu12000_row_matches_paper(self):
        sizes = [config_size(c)
                 for c in PROCESSOR_CONFIGS[("LU", 12000)]]
        assert sizes == [2, 4, 6, 9, 12, 16, 20, 25, 30, 36, 48]


class TestMakeApplication:
    def test_pins_table2_configs(self):
        app = make_application("lu", 12000)
        assert app.legal_configs(50) == PROCESSOR_CONFIGS[("LU", 12000)]

    def test_respects_max_procs(self):
        app = make_application("lu", 12000)
        assert all(config_size(c) <= 20 for c in app.legal_configs(20))

    def test_jacobi_calibration_applied(self):
        from repro.workloads.paper import JACOBI_SWEEPS
        app = make_application("jacobi", 8000)
        assert app.inner_sweeps == JACOBI_SWEEPS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_application("quicksort", 100)


class TestWorkloadSpecs:
    def test_w1_matches_table4_initial_allocs(self):
        initial = {s.label: config_size(s.initial_config)
                   for s in WORKLOAD1}
        assert initial == {"LU": 6, "MM": 8, "Master-worker": 2,
                           "Jacobi": 4, "2D FFT": 4}

    def test_w1_arrivals(self):
        arrivals = {s.label: s.arrival for s in WORKLOAD1}
        assert arrivals["LU"] == 0.0
        assert arrivals["Master-worker"] == 450.0
        assert arrivals["Jacobi"] == arrivals["2D FFT"] == 465.0

    def test_w2_matches_table5_initial_allocs(self):
        initial = {s.label: config_size(s.initial_config)
                   for s in WORKLOAD2}
        assert initial == {"LU": 16, "Jacobi": 10, "Master-worker": 6,
                           "2D FFT": 4}

    def test_w1_fits_experiment(self):
        peak = sum(config_size(s.initial_config) for s in WORKLOAD1)
        assert peak <= WORKLOAD1_PROCESSORS + 10  # staggered arrivals
        assert WORKLOAD2_PROCESSORS == 36

    def test_build_workload1_submits_all(self):
        fw = ReshapeFramework(num_processors=WORKLOAD1_PROCESSORS,
                              dynamic=False)
        jobs = build_workload1(fw, iterations=1)
        assert set(jobs) == {"LU", "MM", "Master-worker", "Jacobi",
                             "2D FFT"}


class TestWorkloadGenerator:
    def test_deterministic_for_seed(self):
        a = WorkloadGenerator(seed=3).generate(10)
        b = WorkloadGenerator(seed=3).generate(10)
        assert a == b

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(seed=1).generate(10)
        b = WorkloadGenerator(seed=2).generate(10)
        assert a != b

    def test_arrivals_monotone(self):
        specs = WorkloadGenerator(seed=5).generate(20)
        arrivals = [s.arrival for s in specs]
        assert arrivals == sorted(arrivals)

    def test_max_initial_respected(self):
        specs = WorkloadGenerator(seed=7, max_initial=4).generate(30)
        assert all(config_size(s.initial_config) <= 4 for s in specs)

    def test_kind_filter(self):
        specs = WorkloadGenerator(seed=1, kinds=["lu"]).generate(10)
        assert all(s.kind == "lu" for s in specs)
        with pytest.raises(ValueError):
            WorkloadGenerator(kinds=["nope"]).generate(1)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            WorkloadGenerator().generate(0)

    def test_arrival_models_deterministic_and_monotone(self):
        for model in ("poisson", "lognormal", "pareto", "diurnal"):
            gen = WorkloadGenerator(seed=9, arrival_model=model)
            a = gen.generate(50)
            b = WorkloadGenerator(seed=9, arrival_model=model).generate(50)
            assert a == b, model
            arrivals = [s.arrival for s in a]
            assert arrivals == sorted(arrivals), model

    def test_arrival_models_mean_preserving(self):
        # Every model must keep the long-run rate at 1/mean, so model
        # sweeps compare at fixed offered load.  Heavy tails converge
        # slowly; a wide tolerance still catches a wrong
        # parameterisation (which is off by e^(sigma^2/2) ~ 3x for
        # lognormal, alpha/(alpha-1) = 3x for pareto at alpha=1.5).
        mean = 50.0
        for model in ("poisson", "lognormal", "pareto", "diurnal"):
            gen = WorkloadGenerator(seed=2, mean_interarrival=mean,
                                    arrival_model=model)
            specs = gen.generate(6000)
            observed = specs[-1].arrival / (len(specs) - 1)
            assert 0.6 * mean < observed < 1.6 * mean, (model, observed)

    def test_heavy_tails_are_heavier_than_poisson(self):
        def max_gap(model):
            specs = WorkloadGenerator(seed=4, mean_interarrival=100.0,
                                      arrival_model=model).generate(3000)
            return max(b.arrival - a.arrival
                       for a, b in zip(specs, specs[1:]))
        poisson = max_gap("poisson")
        assert max_gap("lognormal") > 2 * poisson
        assert max_gap("pareto") > 2 * poisson

    def test_arrival_model_validation(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(arrival_model="weibull").generate(2)
        with pytest.raises(ValueError):
            WorkloadGenerator(arrival_model="pareto",
                              pareto_alpha=1.0).generate(2)
        with pytest.raises(ValueError):
            WorkloadGenerator(arrival_model="lognormal",
                              lognormal_sigma=0.0).generate(2)
        with pytest.raises(ValueError):
            WorkloadGenerator(arrival_model="diurnal",
                              diurnal_amplitude=1.5).generate(2)

    def test_generate_scale_uses_arrival_model(self):
        base = WorkloadGenerator(seed=6).generate_scale(200)
        tail = WorkloadGenerator(
            seed=6, arrival_model="pareto").generate_scale(200)
        assert [s.arrival for s in base] != [s.arrival for s in tail]
        assert all(s.kind == "synthetic" for s in tail)

    def test_generated_mix_runs(self):
        gen = WorkloadGenerator(seed=11, max_initial=8,
                                mean_interarrival=5.0,
                                kinds=["masterworker"])
        specs = gen.generate(3)
        fw = ReshapeFramework(num_processors=16)
        jobs = gen.submit_all(fw, specs, iterations=2)
        fw.run()
        assert all(j.turnaround is not None for j in jobs.values())
