"""Calendar-queue kernel: exact heap equivalence and determinism.

The event kernel's determinism contract: entries are totally ordered by
``(time, priority, seq)`` with ``seq`` unique, so the calendar queue
must pop in *bit-identical* order to the reference heap — including
same-timestamp ties, zero-delay cascades, and across its internal mode
transitions (heap <-> calendar spill/collapse and bucket-width
resizes).
"""

import heapq
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulate import (
    CalendarEventQueue,
    Environment,
    HeapEventQueue,
    SimulationError,
    make_event_queue,
)


def drive_both(ops):
    """Apply a push/pop script to both queues; assert identical pops."""
    heap, cal = HeapEventQueue(), CalendarEventQueue()
    seq = 0
    now = 0.0
    pops = []
    for op, value in ops:
        if op == "push" or not len(heap):
            seq += 1
            when = now + value[0]
            heap.push(when, value[1], seq, 0, seq)
            cal.push(when, value[1], seq, 0, seq)
        else:
            a = heap.pop()
            b = cal.pop()
            assert a == b
            now = a[0]
            pops.append(a)
    while len(heap):
        a = heap.pop()
        b = cal.pop()
        assert a == b
        pops.append(a)
    assert not len(cal)
    return pops


# Delays deliberately include exact ties (0.0, 1.0) so same-timestamp
# ordering is exercised, plus wide spreads that force bucket resizes.
_DELAY = st.sampled_from([0.0, 0.0, 1.0, 1.0, 0.125, 3.5, 1e-9, 1e4])
_PRIO = st.sampled_from([0, 1, 1, 1])


@given(st.lists(st.tuples(st.sampled_from(["push", "pop"]),
                          st.tuples(_DELAY, _PRIO)),
                min_size=1, max_size=300))
@settings(max_examples=200, deadline=None)
def test_property_identical_pop_order(ops):
    pops = drive_both(ops)
    # Simulated time never goes backwards (full keys need not be
    # globally sorted: an URGENT push at the current timestamp legally
    # sorts before an already-popped NORMAL entry of the same time).
    times = [p[0] for p in pops]
    assert times == sorted(times)


def test_identical_order_across_spill_and_collapse():
    """A population large enough to spill into calendar mode and drain
    back through the collapse threshold pops identically."""
    rng = random.Random(3)
    heap, cal = HeapEventQueue(), CalendarEventQueue()
    seq = 0
    for _ in range(3 * CalendarEventQueue._SPILL):
        seq += 1
        when = rng.choice([rng.random() * 1000, 5.0, 5.0, 0.25])
        prio = rng.choice([0, 1])
        heap.push(when, prio, seq, 0, seq)
        cal.push(when, prio, seq, 0, seq)
    assert cal._calendar, "population above _SPILL must be in calendar mode"
    now = 0.0
    while len(heap):
        a = heap.pop()
        b = cal.pop()
        assert a == b
        assert a[0] >= now
        now = a[0]
        # Hold-model refill for the first half keeps the resize logic
        # and the current-bucket cache busy mid-drain.
        if len(heap) > 2 * CalendarEventQueue._SPILL and rng.random() < 0.4:
            seq += 1
            when = now + rng.choice([0.0, rng.random() * 100])
            heap.push(when, 1, seq, 0, seq)
            cal.push(when, 1, seq, 0, seq)
    assert not cal._calendar, "drained queue must collapse back to heap"


def test_pop_due_matches_peek_and_pop():
    rng = random.Random(5)
    for kernel in ("heap", "calendar"):
        q = make_event_queue(kernel)
        for seq in range(5000):
            q.push(rng.random() * 100, 1, seq, 0, seq)
        deadline = 50.0
        drained = []
        while True:
            expected = q.peek_when()
            entry = q.pop_due(deadline)
            if entry is None:
                assert expected > deadline
                break
            assert entry[0] == expected <= deadline
            drained.append(entry)
        assert drained == sorted(drained)
        assert len(drained) + len(q) == 5000
        # The remainder pops in order and is entirely past the deadline.
        rest = [q.pop() for _ in range(len(q))]
        assert rest == sorted(rest)
        assert all(entry[0] > deadline for entry in rest)


def test_infinite_times_pop_last_in_seq_order():
    q = CalendarEventQueue()
    inf = float("inf")
    # Force calendar mode so the _INF slot path is the one exercised.
    for seq in range(CalendarEventQueue._SPILL + 10):
        q.push(float(seq % 97), 1, seq, 0, ("finite", seq))
    base = CalendarEventQueue._SPILL + 10
    q.push(inf, 1, base + 1, 0, ("inf", 1))
    q.push(inf, 0, base + 2, 0, ("inf", 2))
    order = [q.pop() for _ in range(len(q))]
    assert order == sorted(order)
    assert [e[4] for e in order[-2:]] == [("inf", 2), ("inf", 1)]


def test_environment_trajectories_identical_across_kernels():
    """Full-kernel check: cascading processes, ties, interrupts."""

    def trajectory(kernel):
        env = Environment(kernel=kernel)
        log = []

        def worker(tag, delay):
            yield env.timeout(delay)
            log.append((env.now, tag))
            if tag % 3 == 0:
                env.process(worker(tag + 1000, 0.0))  # zero-delay cascade
            yield env.timeout(delay * 0.5)
            log.append((env.now, -tag))

        for tag in range(50):
            env.process(worker(tag, float(tag % 7)))
        env.run()
        return log, env.now

    heap_log, heap_now = trajectory("heap")
    cal_log, cal_now = trajectory("calendar")
    assert heap_log == cal_log
    assert heap_now == cal_now


def test_environment_rejects_nan_and_unknown_kernel():
    env = Environment()
    with pytest.raises(SimulationError):
        env.wake_at(float("nan"))
    with pytest.raises(SimulationError):
        Environment(kernel="fibonacci")


class TestPackedMatchesSeedHeap:
    """Packed-record pop order is bit-identical to the seed Event heap.

    The seed kernel stored ``(when, priority, seq, event)`` tuples on a
    plain ``heapq``; the packed kernels store ``(when, priority, seq,
    handler_id, arg)``.  ``seq`` is unique, so comparison never reaches
    the fourth field in either shape — the ``(when, priority, seq)``
    key prefix popped by the packed queues must equal the seed heap's,
    element for element.
    """

    @staticmethod
    def _drive(ops, kernel):
        seed_heap = []            # the seed's heapq of (when, prio, seq)
        packed = make_event_queue(kernel)
        seq = 0
        now = 0.0
        for op, (delay, prio, hid) in ops:
            if op == "push" or not len(packed):
                seq += 1
                when = now + delay
                heapq.heappush(seed_heap, (when, prio, seq))
                packed.push(when, prio, seq, hid, ("payload", seq))
            else:
                entry = packed.pop()
                assert entry[:3] == heapq.heappop(seed_heap)
                assert entry[4] == ("payload", entry[2])
                now = entry[0]
        while len(packed):
            entry = packed.pop()
            assert entry[:3] == heapq.heappop(seed_heap)
        assert not seed_heap

    # Ties, zero-delay cascades (delay 0.0 pushed at pop time), inf,
    # and a 1e4 spread that forces calendar width resizes; handler ids
    # vary to prove they are opaque to ordering.
    _DELAY_P = st.sampled_from([0.0, 0.0, 1.0, 1.0, 0.125, 1e-9, 1e4,
                                float("inf")])
    _HID = st.sampled_from([0, 1, 2, 7])

    @given(st.lists(st.tuples(st.sampled_from(["push", "pop"]),
                              st.tuples(_DELAY_P, _PRIO, _HID)),
                    min_size=1, max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_property_heap_kernel(self, ops):
        self._drive(ops, "heap")

    @given(st.lists(st.tuples(st.sampled_from(["push", "pop"]),
                              st.tuples(_DELAY_P, _PRIO, _HID)),
                    min_size=1, max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_property_calendar_kernel(self, ops):
        self._drive(ops, "calendar")

    def test_calendar_width_resize_under_packed_storage(self):
        """A spilled calendar that resizes its width mid-stream still
        pops the seed heap's exact key sequence."""
        rng = random.Random(17)
        seed_heap = []
        packed = CalendarEventQueue()
        for seq in range(2 * CalendarEventQueue._SPILL):
            # Era shift: micro-scale then hour-scale times force the
            # occupancy band out of range -> width rebuilds.
            when = (seq * 1e-6 if seq < CalendarEventQueue._SPILL
                    else 1.0 + (seq % 613) * 3600.0)
            prio = rng.choice([0, 1])
            heapq.heappush(seed_heap, (when, prio, seq))
            packed.push(when, prio, seq, seq % 5, None)
        assert packed._calendar
        while len(packed):
            assert packed.pop()[:3] == heapq.heappop(seed_heap)
        assert packed.resizes >= 1


def test_calendar_resize_keeps_order_under_scale_shift():
    """Time scale shifts by 6 orders of magnitude mid-run: the width
    self-resizes (occupancy band) and order still holds."""
    q = CalendarEventQueue()
    heap = HeapEventQueue()
    seq = 0
    for _ in range(6000):        # microsecond-scale era
        seq += 1
        when = seq * 1e-6
        q.push(when, 1, seq, 0, seq)
        heap.push(when, 1, seq, 0, seq)
    for _ in range(6000):        # hour-scale era
        seq += 1
        when = 1.0 + (seq % 613) * 3600.0
        q.push(when, 1, seq, 0, seq)
        heap.push(when, 1, seq, 0, seq)
    out = [q.pop() for _ in range(len(q))]
    ref = [heap.pop() for _ in range(len(heap))]
    assert out == ref
    assert q.resizes >= 1
