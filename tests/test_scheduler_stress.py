"""Scheduler scale guard: thousands of queued jobs.

The paper's workloads have 4-5 jobs; the workload generator can produce
thousands.  ``JobQueue.next_startable`` is an O(queue) scan per
scheduler wake (simple backfill, no reservations) — these tests pin
its correctness at that scale and guard the wake cost so a future
accidental O(n^2) (e.g. copying the queue per probe) shows up as a
regression.  ROADMAP keeps the O(n) scan as a known open item.
"""

import time

from repro.core.job import Job
from repro.core.queue import JobQueue
from repro.workloads.generator import WorkloadGenerator


def make_jobs(count):
    gen = WorkloadGenerator(seed=7, mean_interarrival=1.0, max_initial=16)
    specs = gen.generate(count)
    jobs = []
    for spec in specs:
        app = spec.build(iterations=1)
        jobs.append(Job(app=app, initial_config=spec.initial_config,
                        arrival_time=spec.arrival, name=spec.name))
    return jobs


def test_generator_produces_enqueueable_mix():
    jobs = make_jobs(2000)
    assert len(jobs) == 2000
    sizes = {job.requested_size for job in jobs}
    assert len(sizes) > 1
    assert all(1 <= job.requested_size <= 16 for job in jobs)


def test_backfill_correct_at_two_thousand_jobs():
    queue = JobQueue(backfill=True)
    jobs = make_jobs(2000)
    for job in jobs:
        queue.enqueue(job)
    assert len(queue) == 2000

    # With zero free processors nothing can start.
    assert queue.next_startable(0) is None
    # The head starts when it fits.
    head = queue.head()
    assert queue.next_startable(head.requested_size) is head
    # When the head does not fit, the first fitting later job backfills.
    free = head.requested_size - 1
    expected = next((j for j in jobs[1:] if j.requested_size <= free),
                    None)
    assert queue.next_startable(free) is expected

    # Drain the whole queue through the startable/remove cycle.
    started = 0
    while len(queue):
        job = queue.next_startable(16)
        assert job is not None
        queue.remove(job)
        started += 1
    assert started == 2000


def test_wake_scan_cost_stays_linear():
    """2000 queued jobs, repeated worst-case probes (nothing fits).

    The bound is deliberately loose for shared CI hosts — it exists to
    catch accidental quadratic behaviour (each probe copying the queue,
    re-sorting, etc.), which overshoots it by an order of magnitude.
    """
    queue = JobQueue(backfill=True)
    for job in make_jobs(2000):
        queue.enqueue(job)
    probes = 200
    t0 = time.perf_counter()
    for _ in range(probes):
        assert queue.next_startable(0) is None
    elapsed = time.perf_counter() - t0
    assert elapsed < 2.0, (f"{probes} worst-case backfill probes over "
                           f"2000 jobs took {elapsed:.2f}s")


def test_enqueue_keeps_priority_then_fcfs_order_at_scale():
    queue = JobQueue(backfill=True)
    jobs = make_jobs(300)
    for i, job in enumerate(jobs):
        job.priority = i % 3
        queue.enqueue(job)
    order = list(queue)
    priorities = [job.priority for job in order]
    assert priorities == sorted(priorities, reverse=True)
    # FCFS within each priority class.
    for level in (0, 1, 2):
        names = [j.name for j in order if j.priority == level]
        expected = [j.name for j in jobs if j.priority == level]
        assert names == expected
