"""Scheduler scale guard: thousands of queued jobs.

The paper's workloads have 4-5 jobs; the workload generator can produce
tens of thousands.  Both queue implementations are pinned here:
:class:`ScanJobQueue` (the seed's O(queue) scan per wake) for decision
correctness at 2000 jobs, and the size-indexed :class:`JobQueue` whose
probes are bounded by the distinct request sizes present — the cost
guard asserts its probes stay flat while the population grows 10x.
"""

import time

import pytest

from repro.core.job import Job
from repro.core.queue import JobQueue, ScanJobQueue
from repro.workloads.generator import WorkloadGenerator

QUEUES = [JobQueue, ScanJobQueue]


def make_jobs(count):
    gen = WorkloadGenerator(seed=7, mean_interarrival=1.0, max_initial=16)
    specs = gen.generate(count)
    jobs = []
    for spec in specs:
        app = spec.build(iterations=1)
        jobs.append(Job(app=app, initial_config=spec.initial_config,
                        arrival_time=spec.arrival, name=spec.name))
    return jobs


def test_generator_produces_enqueueable_mix():
    jobs = make_jobs(2000)
    assert len(jobs) == 2000
    sizes = {job.requested_size for job in jobs}
    assert len(sizes) > 1
    assert all(1 <= job.requested_size <= 16 for job in jobs)


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_backfill_correct_at_two_thousand_jobs(queue_cls):
    queue = queue_cls(backfill=True)
    jobs = make_jobs(2000)
    for job in jobs:
        queue.enqueue(job)
    assert len(queue) == 2000

    # With zero free processors nothing can start.
    assert queue.next_startable(0) is None
    # The head starts when it fits.
    head = queue.head()
    assert queue.next_startable(head.requested_size) is head
    # When the head does not fit, the first fitting later job backfills.
    free = head.requested_size - 1
    expected = next((j for j in jobs[1:] if j.requested_size <= free),
                    None)
    assert queue.next_startable(free) is expected

    # Drain the whole queue through the startable/remove cycle.
    started = 0
    while len(queue):
        job = queue.next_startable(16)
        assert job is not None
        queue.remove(job)
        started += 1
    assert started == 2000


def test_wake_probe_cost_stays_flat_at_ten_thousand_jobs():
    """The size-indexed queue's probe cost must not grow with the
    population: 10x the jobs, comparable probe time (the scan queue
    grows linearly — that is why it was replaced).  Loose absolute
    bound for shared CI hosts; the ratio is the real guard.
    """
    def probe_cost(count):
        queue = JobQueue(backfill=True)
        for job in make_jobs(count):
            queue.enqueue(job)
        probes = 2000
        t0 = time.perf_counter()
        for _ in range(probes):
            assert queue.next_startable(0) is None
        return (time.perf_counter() - t0) / probes

    small = probe_cost(1000)
    large = probe_cost(10_000)
    assert large < small * 8 + 1e-4, (
        f"indexed probe grew with population: {small*1e6:.1f}us -> "
        f"{large*1e6:.1f}us")
    assert large < 1e-3


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_enqueue_keeps_priority_then_fcfs_order_at_scale(queue_cls):
    queue = queue_cls(backfill=True)
    jobs = make_jobs(300)
    for i, job in enumerate(jobs):
        job.priority = i % 3
        queue.enqueue(job)
    order = list(queue)
    priorities = [job.priority for job in order]
    assert priorities == sorted(priorities, reverse=True)
    # FCFS within each priority class.
    for level in (0, 1, 2):
        names = [j.name for j in order if j.priority == level]
        expected = [j.name for j in jobs if j.priority == level]
        assert names == expected
