"""Unit + property tests for block-cyclic index math and DistributedMatrix."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blacs import ProcessGrid
from repro.darray import (
    Descriptor,
    DistributedMatrix,
    block_owner,
    global_to_local,
    local_blocks,
    local_to_global,
    numroc,
)


class TestNumroc:
    def test_even_split(self):
        # 100 elements, blocks of 10, 5 procs -> 2 blocks each.
        for p in range(5):
            assert numroc(100, 10, p, 0, 5) == 20

    def test_uneven_split(self):
        # 7 blocks of 10 over 3 procs: 3,2,2 blocks.
        assert numroc(70, 10, 0, 0, 3) == 30
        assert numroc(70, 10, 1, 0, 3) == 20
        assert numroc(70, 10, 2, 0, 3) == 20

    def test_ragged_last_block(self):
        # 25 elements, blocks of 10, 2 procs: proc0 gets blocks 0,2 (10+5),
        # proc1 gets block 1 (10).
        assert numroc(25, 10, 0, 0, 2) == 15
        assert numroc(25, 10, 1, 0, 2) == 10

    def test_with_source_offset(self):
        assert numroc(30, 10, 1, 1, 3) == 10
        assert numroc(25, 10, 1, 1, 2) == 15

    def test_bad_args(self):
        with pytest.raises(ValueError):
            numroc(10, 0, 0, 0, 2)
        with pytest.raises(ValueError):
            numroc(10, 2, 5, 0, 2)

    @given(n=st.integers(0, 500), nb=st.integers(1, 32),
           nprocs=st.integers(1, 10), isrc=st.integers(0, 9))
    def test_property_total_conserved(self, n, nb, nprocs, isrc):
        isrc = isrc % nprocs
        total = sum(numroc(n, nb, p, isrc, nprocs) for p in range(nprocs))
        assert total == n


class TestIndexMaps:
    @given(gindex=st.integers(0, 499), nb=st.integers(1, 32),
           nprocs=st.integers(1, 10), isrc=st.integers(0, 9))
    def test_property_roundtrip(self, gindex, nb, nprocs, isrc):
        isrc = isrc % nprocs
        owner, lindex = global_to_local(gindex, nb, isrc, nprocs)
        assert 0 <= owner < nprocs
        assert local_to_global(lindex, owner, nb, isrc, nprocs) == gindex

    def test_block_owner_cyclic(self):
        assert [block_owner(b, 0, 3) for b in range(6)] == [0, 1, 2, 0, 1, 2]
        assert [block_owner(b, 1, 3) for b in range(3)] == [1, 2, 0]

    def test_local_blocks_cover_dimension(self):
        n, nb, nprocs = 95, 10, 4
        seen = set()
        for p in range(nprocs):
            for gblock, gstart, length in local_blocks(n, nb, p, 0, nprocs):
                assert gstart == gblock * nb
                seen.update(range(gstart, gstart + length))
        assert seen == set(range(n))

    @given(n=st.integers(1, 400), nb=st.integers(1, 32),
           nprocs=st.integers(1, 8))
    def test_property_local_blocks_match_numroc(self, n, nb, nprocs):
        for p in range(nprocs):
            blocks = local_blocks(n, nb, p, 0, nprocs)
            assert sum(length for _, _, length in blocks) == \
                numroc(n, nb, p, 0, nprocs)


class TestDescriptor:
    def test_local_shapes(self):
        desc = Descriptor(m=100, n=80, mb=10, nb=10,
                          grid=ProcessGrid(2, 2))
        assert desc.local_shape(0, 0) == (50, 40)
        assert desc.local_shape(1, 1) == (50, 40)

    def test_block_counts(self):
        desc = Descriptor(m=95, n=80, mb=10, nb=16,
                          grid=ProcessGrid(2, 2))
        assert desc.row_blocks == 10
        assert desc.col_blocks == 5

    def test_owner_of_element(self):
        desc = Descriptor(m=40, n=40, mb=10, nb=10,
                          grid=ProcessGrid(2, 2))
        assert desc.owner_of_element(0, 0) == (0, 0)
        assert desc.owner_of_element(10, 0) == (1, 0)
        assert desc.owner_of_element(25, 35) == (0, 1)

    def test_with_grid_changes_only_grid(self):
        desc = Descriptor(m=40, n=40, mb=10, nb=10,
                          grid=ProcessGrid(2, 2))
        new = desc.with_grid(ProcessGrid(2, 3))
        assert (new.m, new.n, new.mb, new.nb) == (40, 40, 10, 10)
        assert new.grid == ProcessGrid(2, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Descriptor(m=-1, n=4, mb=2, nb=2, grid=ProcessGrid(1, 1))
        with pytest.raises(ValueError):
            Descriptor(m=4, n=4, mb=0, nb=2, grid=ProcessGrid(1, 1))
        with pytest.raises(ValueError):
            Descriptor(m=4, n=4, mb=2, nb=2, grid=ProcessGrid(2, 2),
                       rsrc=2)

    def test_nbytes(self):
        desc = Descriptor(m=10, n=10, mb=2, nb=2, grid=ProcessGrid(1, 1))
        assert desc.global_nbytes == 800
        assert desc.local_nbytes(0, 0) == 800


class TestDistributedMatrix:
    def test_from_global_to_global_roundtrip(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((30, 20))
        desc = Descriptor(m=30, n=20, mb=4, nb=3, grid=ProcessGrid(2, 3))
        dm = DistributedMatrix.from_global(a, desc)
        np.testing.assert_array_equal(dm.to_global(), a)

    @settings(deadline=None, max_examples=25)
    @given(m=st.integers(1, 40), n=st.integers(1, 40),
           mb=st.integers(1, 8), nb=st.integers(1, 8),
           pr=st.integers(1, 3), pc=st.integers(1, 3))
    def test_property_roundtrip_any_layout(self, m, n, mb, nb, pr, pc):
        rng = np.random.default_rng(m * 100 + n)
        a = rng.standard_normal((m, n))
        desc = Descriptor(m=m, n=n, mb=mb, nb=nb, grid=ProcessGrid(pr, pc))
        dm = DistributedMatrix.from_global(a, desc)
        np.testing.assert_array_equal(dm.to_global(), a)

    def test_local_shapes_match_descriptor(self):
        desc = Descriptor(m=25, n=17, mb=3, nb=5, grid=ProcessGrid(2, 2))
        dm = DistributedMatrix(desc)
        for rank in range(4):
            assert dm.local(rank).shape == desc.local_shape_of_rank(rank)

    def test_phantom_has_no_storage(self):
        desc = Descriptor(m=1000, n=1000, mb=32, nb=32,
                          grid=ProcessGrid(2, 2))
        dm = DistributedMatrix(desc, materialized=False)
        with pytest.raises(RuntimeError):
            dm.local(0)
        with pytest.raises(RuntimeError):
            dm.to_global()
        # rank 0 owns 16 of 31 full blocks + the ragged one per dim = 512.
        assert dm.local_nbytes(0) == 512 * 512 * 8

    def test_set_local_validates_shape(self):
        desc = Descriptor(m=10, n=10, mb=5, nb=5, grid=ProcessGrid(2, 2))
        dm = DistributedMatrix(desc)
        with pytest.raises(ValueError):
            dm.set_local(0, np.zeros((3, 3)))
        dm.set_local(0, np.ones((5, 5)))
        assert dm.local(0).sum() == 25

    def test_local_block_slices(self):
        a = np.arange(64.0).reshape(8, 8)
        desc = Descriptor(m=8, n=8, mb=2, nb=2, grid=ProcessGrid(2, 2))
        dm = DistributedMatrix.from_global(a, desc)
        # Global block (2,0) lives on grid process (0,0) = rank 0.
        rs, cs = dm.local_block_slices(0, 2, 0)
        np.testing.assert_array_equal(dm.local(0)[rs, cs], a[4:6, 0:2])

    def test_local_block_slices_wrong_owner(self):
        desc = Descriptor(m=8, n=8, mb=2, nb=2, grid=ProcessGrid(2, 2))
        dm = DistributedMatrix(desc)
        with pytest.raises(ValueError):
            dm.local_block_slices(0, 1, 0)  # block (1,0) lives on rank 2

    def test_ragged_edge_blocks(self):
        a = np.arange(35.0).reshape(7, 5)
        desc = Descriptor(m=7, n=5, mb=3, nb=2, grid=ProcessGrid(2, 2))
        dm = DistributedMatrix.from_global(a, desc)
        np.testing.assert_array_equal(dm.to_global(), a)
