"""Tests for communication classes and contention-free schedules."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.redist import (
    build_1d_schedule,
    build_2d_schedule,
    build_class_table,
    build_naive_1d_schedule,
    crt_block_classes,
    edge_coloring_schedule,
    verify_schedule_complete,
    verify_schedule_contention_free,
)
from repro.redist.schedule import verify_2d_schedule_complete


class TestBlockClasses:
    def test_classes_partition_blocks(self):
        classes = crt_block_classes(nblocks=24, P=2, Q=3)
        all_blocks = sorted(b for c in classes for b in c.blocks)
        assert all_blocks == list(range(24))

    def test_class_routing_correct(self):
        for cls in crt_block_classes(nblocks=30, P=3, Q=5):
            for g in cls.blocks:
                assert g % 3 == cls.src
                assert g % 5 == cls.dst

    def test_pair_bijection_within_period(self):
        P, Q = 4, 6
        L = math.lcm(P, Q)
        classes = crt_block_classes(nblocks=L, P=P, Q=Q)
        pairs = [(c.src, c.dst) for c in classes]
        # g -> (g mod P, g mod Q) is injective on one period.
        assert len(set(pairs)) == len(pairs) == L

    def test_fewer_blocks_than_period(self):
        classes = crt_block_classes(nblocks=3, P=2, Q=4)
        assert len(classes) == 3
        assert all(c.count == 1 for c in classes)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            crt_block_classes(-1, 2, 2)
        with pytest.raises(ValueError):
            crt_block_classes(4, 0, 2)


class TestCirculantSchedule:
    @pytest.mark.parametrize("P,Q", [(2, 4), (4, 2), (2, 3), (3, 5),
                                     (4, 6), (6, 4), (1, 5), (5, 1),
                                     (4, 4), (12, 16), (16, 12)])
    def test_contention_free_and_complete(self, P, Q):
        sched = build_1d_schedule(nblocks=120, P=P, Q=Q)
        assert verify_schedule_contention_free(sched)
        assert verify_schedule_complete(sched)

    @pytest.mark.parametrize("P,Q", [(2, 4), (3, 5), (6, 4), (5, 8)])
    def test_step_count_is_optimal(self, P, Q):
        L = math.lcm(P, Q)
        sched = build_1d_schedule(nblocks=10 * L, P=P, Q=Q)
        assert sched.num_steps == max(L // P, L // Q)

    def test_identity_redistribution_single_step(self):
        sched = build_1d_schedule(nblocks=40, P=4, Q=4)
        # P == Q: every class is src == dst, one step of local copies.
        assert sched.num_steps == 1
        assert all(m.src == m.dst for m in sched.messages)

    @settings(deadline=None, max_examples=60)
    @given(nblocks=st.integers(0, 300), P=st.integers(1, 12),
           Q=st.integers(1, 12))
    def test_property_always_valid(self, nblocks, P, Q):
        sched = build_1d_schedule(nblocks=nblocks, P=P, Q=Q)
        assert verify_schedule_contention_free(sched)
        assert verify_schedule_complete(sched)

    def test_zero_blocks(self):
        sched = build_1d_schedule(nblocks=0, P=3, Q=4)
        assert sched.num_steps == 0
        assert verify_schedule_complete(sched)


class TestNaiveSchedule:
    def test_single_step_but_complete(self):
        sched = build_naive_1d_schedule(nblocks=60, P=3, Q=4)
        assert sched.num_steps == 1
        assert verify_schedule_complete(sched)
        # With lcm(3,4)=12 classes in one step, contention is guaranteed.
        assert not verify_schedule_contention_free(sched)


class TestEdgeColoringSchedule:
    @pytest.mark.parametrize("P,Q", [(2, 4), (3, 5), (6, 4), (7, 3)])
    def test_matches_circulant_guarantees(self, P, Q):
        sched = edge_coloring_schedule(nblocks=100, P=P, Q=Q)
        assert verify_schedule_contention_free(sched)
        assert verify_schedule_complete(sched)

    @settings(deadline=None, max_examples=30)
    @given(nblocks=st.integers(1, 120), P=st.integers(1, 8),
           Q=st.integers(1, 8))
    def test_property_valid(self, nblocks, P, Q):
        sched = edge_coloring_schedule(nblocks=nblocks, P=P, Q=Q)
        assert verify_schedule_contention_free(sched)
        assert verify_schedule_complete(sched)


class TestCheckerboardSchedule:
    @pytest.mark.parametrize("src,dst", [
        ((2, 2), (2, 3)),   # paper: 4 -> 6 processors
        ((2, 3), (3, 3)),   # 6 -> 9
        ((3, 4), (4, 4)),   # 12 -> 16
        ((4, 4), (3, 4)),   # 16 -> 12 (the Fig 3a shrink)
        ((1, 2), (2, 2)),
        ((5, 5), (5, 8)),
    ])
    def test_contention_free_and_complete(self, src, dst):
        sched = build_2d_schedule(row_blocks=24, col_blocks=24,
                                  src_grid=src, dst_grid=dst)
        assert verify_schedule_contention_free(sched)
        assert verify_2d_schedule_complete(sched)

    def test_step_count_is_product(self):
        sched = build_2d_schedule(row_blocks=48, col_blocks=48,
                                  src_grid=(2, 3), dst_grid=(4, 5))
        rows = build_1d_schedule(48, 2, 4)
        cols = build_1d_schedule(48, 3, 5)
        assert sched.num_steps == rows.num_steps * cols.num_steps

    @settings(deadline=None, max_examples=25)
    @given(rb=st.integers(1, 40), cb=st.integers(1, 40),
           pr=st.integers(1, 4), pc=st.integers(1, 4),
           qr=st.integers(1, 4), qc=st.integers(1, 4))
    def test_property_valid(self, rb, cb, pr, pc, qr, qc):
        sched = build_2d_schedule(row_blocks=rb, col_blocks=cb,
                                  src_grid=(pr, pc), dst_grid=(qr, qc))
        assert verify_schedule_contention_free(sched)
        assert verify_2d_schedule_complete(sched)


class TestClassTable:
    def test_tables_consistent_with_layouts(self):
        table = build_class_table(nblocks=12, P=2, Q=3)
        assert table["initial"] == [g % 2 for g in range(12)]
        assert table["final"] == [g % 3 for g in range(12)]

    def test_destination_table_rows_are_steps(self):
        table = build_class_table(nblocks=12, P=2, Q=3)
        sched = build_1d_schedule(12, 2, 3)
        for step_idx, step in enumerate(sched.steps):
            for msg in step:
                assert table["destination"][(msg.src, step_idx)] == msg.dst
