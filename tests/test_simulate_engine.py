"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simulate import (
    AllOf,
    Environment,
    Interrupt,
    SimulationError,
    Timeout,
)


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(5.0)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5.0, 7.5]


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def proc():
        v = yield env.timeout(1.0, value="hello")
        seen.append(v)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Timeout(env, -1.0)


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(3.0)
        return 42

    def parent(results):
        value = yield env.process(child())
        results.append(value)

    results = []
    env.process(parent(results))
    env.run()
    assert results == [42]


def test_run_until_event_returns_value():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return "done"

    proc = env.process(child())
    assert env.run(until=proc) == "done"
    assert env.now == 1.0


def test_run_until_time_stops_clock():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1.0)

    env.process(ticker())
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    seen = []

    def waiter():
        v = yield ev
        seen.append((env.now, v))

    def firer():
        yield env.timeout(4.0)
        ev.succeed("payload")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert seen == [(4.0, "payload")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as err:
            caught.append(str(err))

    env.process(waiter())
    ev.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise RuntimeError("crash")

    env.process(bad())
    with pytest.raises(RuntimeError, match="crash"):
        env.run()


def test_waiting_on_processed_event_returns_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("old")
    seen = []

    def late():
        yield env.timeout(2.0)
        v = yield ev
        seen.append((env.now, v))

    env.process(late())
    env.run()
    assert seen == [(2.0, "old")]


def test_all_of_collects_values():
    env = Environment()
    results = {}

    def proc():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        got = yield env.all_of([t1, t2])
        results.update(got)
        results["when"] = env.now

    env.process(proc())
    env.run()
    assert results["when"] == 3.0
    assert sorted(v for k, v in results.items() if k != "when") == ["a", "b"]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        yield env.any_of([t1, t2])
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [1.0]


def test_all_of_empty_fires_immediately():
    env = Environment()
    cond = AllOf(env, [])
    assert cond.triggered


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def attacker(proc):
        yield env.timeout(2.0)
        proc.interrupt(cause="preempt")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert log == [(2.0, "preempt")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(0.5)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_determinism_ties_fifo():
    """Events scheduled for the same instant fire in creation order."""
    env = Environment()
    order = []

    def make(tag):
        def proc():
            yield env.timeout(1.0)
            order.append(tag)
        return proc

    for tag in range(8):
        env.process(make(tag)())
    env.run()
    assert order == list(range(8))


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_nested_yield_from():
    env = Environment()
    trace = []

    def inner():
        yield env.timeout(2.0)
        return "inner-done"

    def outer():
        v = yield from inner()
        trace.append((env.now, v))
        yield env.timeout(1.0)
        trace.append(env.now)

    env.process(outer())
    env.run()
    assert trace == [(2.0, "inner-done"), 3.0]


def test_peek_and_step():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0
    env.step()
    assert env.now == 7.0
    assert env.peek() == float("inf")


def test_step_empty_queue_is_error():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_condition_failure_propagates():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield env.all_of([ev, env.timeout(10.0)])
        except KeyError as err:
            caught.append(env.now)

    env.process(waiter())
    ev.fail(KeyError("k"))
    env.run()
    assert caught == [0.0]
