"""The sweep harness: spec round-trips, parallel-vs-serial bit
identity, crash/timeout/error containment, and the paper's checkpoint
ratio band."""

import json
import os
import pickle
import time
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.cluster.machine import MachineSpec
from repro.core.framework import ReshapeFramework
from repro.core.policies import (
    ExpansionPolicy,
    GreedyExpansionPolicy,
    SweetSpotPolicy,
    ThresholdSweetSpot,
    make_expansion,
    make_sweet_spot,
)
from repro.sweep import (
    ScenarioError,
    ScenarioSpec,
    SweepRunner,
    checkpoint_grid,
    run_scenario,
    summarize_checkpoint,
    sweep_scenarios,
)
from repro.sweep.experiments import (
    CHECKPOINT_SMOKE_SIZES,
    CHECKPOINT_SMOKE_TRANSITIONS,
    PAPER_RATIO_BAND,
)
from repro.workloads.paper import JobSpec


def tiny_redist(seed=0, **kw):
    """A milliseconds-fast scenario (phantom redistribution path)."""
    base = dict(kind="redist", app="lu", size=2000, start=(1, 2),
                target=(2, 2), seed=seed)
    base.update(kw)
    return ScenarioSpec(**base)


def mixed_grid():
    """Eight scenarios spanning all three kinds."""
    specs = [tiny_redist(size=s, redistribution_method=m)
             for s in (2000, 3000) for m in ("reshape", "checkpoint")]
    specs += [ScenarioSpec(kind="static", app="mm", size=1200,
                           start=cfg, iterations=2)
              for cfg in ((1, 2), (2, 2))]
    specs += [ScenarioSpec(kind="schedule", workload="synthetic",
                           seed=seed, num_jobs=2, iterations=2,
                           mean_interarrival=20.0, max_initial=4,
                           num_processors=8,
                           machine=MachineSpec(num_nodes=8))
              for seed in (0, 1)]
    return specs


# -- worker tasks (module level so "fork" workers resolve them) --------
def crash_task(spec):
    if spec.label == "crash":
        os._exit(42)
    return run_scenario(spec)


def sleep_task(spec):
    # Later specs sleep less, so completion order is reversed.
    time.sleep(0.02 * spec.seed)
    return run_scenario(spec)


def slow_task(spec):
    if spec.label == "slow":
        time.sleep(5.0)
    return run_scenario(spec)


def boom_task(spec):
    if spec.label == "boom":
        raise ValueError("synthetic failure")
    return run_scenario(spec)


# ---------------------------------------------------------------------
# Spec round-trips
# ---------------------------------------------------------------------
spec_strategy = st.one_of(
    st.builds(
        ScenarioSpec,
        kind=st.just("schedule"),
        workload=st.sampled_from(["w1", "w2", "synthetic", "single"]),
        seed=st.integers(0, 1000),
        num_jobs=st.integers(1, 12),
        iterations=st.integers(1, 20),
        dynamic=st.booleans(),
        backfill=st.booleans(),
        kernel=st.sampled_from(["calendar", "heap"]),
        sweet_spot=st.sampled_from(["simple", "threshold"]),
        sweet_spot_params=st.sampled_from(
            [(), (("threshold", 0.05),), (("threshold", 0.2),)]),
        expansion=st.sampled_from(["next-larger", "greedy"]),
        machine=st.builds(MachineSpec, num_nodes=st.integers(4, 64)),
    ),
    st.builds(
        ScenarioSpec,
        kind=st.just("static"),
        app=st.sampled_from(["lu", "mm", "jacobi", "fft"]),
        size=st.integers(480, 20000),
        start=st.tuples(st.integers(1, 4), st.integers(1, 4)),
        iterations=st.integers(1, 10),
    ),
    st.builds(
        ScenarioSpec,
        kind=st.just("redist"),
        size=st.integers(1000, 20000),
        start=st.tuples(st.integers(1, 4), st.integers(1, 4)),
        target=st.tuples(st.integers(1, 4), st.integers(1, 4)),
        block=st.sampled_from([60, 120]),
        redistribution_method=st.sampled_from(["reshape", "checkpoint"]),
    ),
)


@settings(max_examples=60, deadline=None)
@given(spec=spec_strategy)
def test_spec_json_round_trip(spec):
    wire = json.dumps(spec.to_dict())
    again = ScenarioSpec.from_dict(json.loads(wire))
    assert again == spec
    assert hash(again) == hash(spec)


def test_spec_round_trip_with_explicit_jobs():
    spec = ScenarioSpec(
        kind="schedule", workload="jobs",
        jobs=(JobSpec(kind="lu", problem_size=6000,
                      initial_config=(1, 2), arrival=10.0),
              JobSpec(kind="mm", problem_size=2400,
                      initial_config=(2, 2), arrival=50.0)))
    again = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again == spec
    assert all(isinstance(j, JobSpec) for j in again.jobs)


def test_spec_rejects_unknown_fields_and_kinds():
    with pytest.raises(ValueError, match="unknown ScenarioSpec fields"):
        ScenarioSpec.from_dict({"kind": "schedule", "wrkload": "w1"})
    with pytest.raises(ValueError, match="unknown scenario kind"):
        ScenarioSpec(kind="banana")
    with pytest.raises(ValueError, match="needs a target"):
        ScenarioSpec(kind="redist", target=None)


def test_spec_pickle_round_trip():
    spec = tiny_redist(sweet_spot="threshold",
                       sweet_spot_params={"threshold": 0.1})
    assert pickle.loads(pickle.dumps(spec)) == spec


# ---------------------------------------------------------------------
# Policy registry
# ---------------------------------------------------------------------
def test_policy_registry_and_pickling():
    assert make_sweet_spot("simple") == SweetSpotPolicy()
    assert (make_sweet_spot("threshold", threshold=0.1)
            == ThresholdSweetSpot(0.1))
    assert make_expansion("next-larger") == ExpansionPolicy()
    assert make_expansion("greedy") == GreedyExpansionPolicy()
    for policy in (SweetSpotPolicy(), ThresholdSweetSpot(0.07),
                   ExpansionPolicy(), GreedyExpansionPolicy()):
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy and type(clone) is type(policy)
    with pytest.raises(ValueError, match="unknown sweet-spot"):
        make_sweet_spot("nope")


# ---------------------------------------------------------------------
# Serial vs parallel bit identity, ordering determinism
# ---------------------------------------------------------------------
def test_parallel_sweep_bit_identical_to_serial():
    specs = mixed_grid()
    assert len(specs) >= 8
    runner = SweepRunner(max_workers=2)
    serial = runner.run_serial(specs)
    parallel = runner.run(specs)
    assert serial.ok and parallel.ok
    assert parallel.workers == 2
    assert serial.results == parallel.results  # timelines and all
    assert [r.spec for r in parallel.results] == specs


def test_merge_order_is_spec_order_under_shuffled_completion():
    # Descending sleeps: the last-submitted specs finish first.
    specs = [tiny_redist(seed=s, label=f"s{s}") for s in (4, 3, 2, 1, 0)]
    sweep = SweepRunner(max_workers=2, task=sleep_task).run(specs)
    assert sweep.ok
    assert [r.spec.label for r in sweep.results] == [s.label for s in specs]


def test_facade_accepts_dicts():
    spec_d = tiny_redist().to_dict()
    result = repro.run(spec_d)
    assert result.ok and result.metric("elapsed") > 0
    sweep = repro.sweep([spec_d, tiny_redist(size=3000).to_dict()],
                        max_workers=1)
    assert sweep.ok and len(sweep) == 2


# ---------------------------------------------------------------------
# Failure containment
# ---------------------------------------------------------------------
def test_worker_crash_becomes_structured_error_and_sweep_completes():
    specs = [tiny_redist(seed=0), tiny_redist(seed=1, label="crash"),
             tiny_redist(seed=2), tiny_redist(seed=3)]
    sweep = SweepRunner(max_workers=2, task=crash_task).run(specs)
    assert len(sweep.results) == 4
    assert len(sweep.errors) == 1
    err = sweep.results[1]
    assert isinstance(err, ScenarioError)
    assert err.phase == "crash"
    assert err.attempts == 2  # retried once on a fresh pool
    assert all(r.ok for i, r in enumerate(sweep.results) if i != 1)


def test_clean_exception_becomes_error_without_retry():
    specs = [tiny_redist(seed=0), tiny_redist(seed=1, label="boom")]
    for runner in (SweepRunner(max_workers=1, task=boom_task),
                   SweepRunner(max_workers=2, task=boom_task)):
        sweep = runner.run(specs)
        assert sweep.results[0].ok
        err = sweep.results[1]
        assert not err.ok and err.phase == "error"
        assert "synthetic failure" in err.error
        assert err.attempts == 1


def test_timeout_becomes_structured_error():
    specs = [tiny_redist(seed=0), tiny_redist(seed=1, label="slow"),
             tiny_redist(seed=2)]
    sweep = SweepRunner(max_workers=2, timeout=0.5,
                        task=slow_task).run(specs)
    assert len(sweep.results) == 3
    err = sweep.results[1]
    assert not err.ok and err.phase == "timeout"
    assert sweep.results[0].ok and sweep.results[2].ok


def test_serial_runner_used_for_single_worker_and_single_spec():
    sweep = sweep_scenarios([tiny_redist()], max_workers=8)
    assert sweep.workers == 1 and sweep.ok


# ---------------------------------------------------------------------
# Deprecation shims
# ---------------------------------------------------------------------
def test_framework_spec_keyword_shim_warns():
    ms = MachineSpec(num_nodes=8)
    with pytest.warns(DeprecationWarning, match="machine_spec"):
        fw = ReshapeFramework(spec=ms, num_processors=4)
    assert fw.machine.spec == ms


def test_run_static_spec_keyword_shim_warns():
    from repro.api.standalone import run_static
    from repro.workloads import make_application
    app = make_application("mm", 1200, iterations=1)
    with pytest.warns(DeprecationWarning, match="machine_spec"):
        res = run_static(app, (1, 2), spec=MachineSpec(num_nodes=4))
    assert res.total_time > 0


def test_new_keywords_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        ReshapeFramework(machine_spec=MachineSpec(num_nodes=8),
                         num_processors=4)


# ---------------------------------------------------------------------
# The paper's checkpoint-vs-redistribution band
# ---------------------------------------------------------------------
def test_checkpoint_smoke_grid_inside_paper_band():
    specs = checkpoint_grid(CHECKPOINT_SMOKE_SIZES,
                            transitions=CHECKPOINT_SMOKE_TRANSITIONS)
    assert len(specs) >= 8
    summary = summarize_checkpoint(sweep_scenarios(specs, max_workers=1))
    lo, hi = PAPER_RATIO_BAND
    assert summary["errors"] == 0
    assert summary["in_band"]
    assert lo <= summary["ratio_min"] <= summary["ratio_max"] <= hi


def test_framework_from_scenario_matches_spec():
    spec = ScenarioSpec(kind="schedule", workload="synthetic",
                        num_processors=12, dynamic=False,
                        sweet_spot="threshold",
                        sweet_spot_params={"threshold": 0.1},
                        expansion="greedy",
                        machine=MachineSpec(num_nodes=12))
    fw = ReshapeFramework.from_scenario(spec)
    assert fw.dynamic is False
    assert fw.remap.sweet_spot == ThresholdSweetSpot(0.1)
    assert fw.remap.expansion == GreedyExpansionPolicy()
