"""Unit + property tests for processor-grid topology arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.topology import (
    config_size,
    divides_evenly,
    factor_nearly_square,
    grow_nearly_square,
    legal_configs_for,
    next_larger_config,
    next_smaller_config,
    parse_config,
)


class TestFactorNearlySquare:
    def test_examples(self):
        assert factor_nearly_square(1) == (1, 1)
        assert factor_nearly_square(12) == (3, 4)
        assert factor_nearly_square(25) == (5, 5)
        assert factor_nearly_square(40) == (5, 8)
        assert factor_nearly_square(7) == (1, 7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factor_nearly_square(0)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_property_factors_and_order(self, p):
        pr, pc = factor_nearly_square(p)
        assert pr * pc == p
        assert pr <= pc
        # pr is the largest divisor <= sqrt(p)
        for d in range(pr + 1, int(p**0.5) + 1):
            assert p % d != 0


class TestGrowNearlySquare:
    def test_paper_sequence(self):
        """The LU 12000 growth path from Figure 3(a): 1x2 -> ... -> 4x4."""
        grid = (1, 2)
        seen = [grid]
        for _ in range(5):
            grid = grow_nearly_square(*grid)
            seen.append(grid)
        assert seen == [(1, 2), (2, 2), (2, 3), (3, 3), (3, 4), (4, 4)]

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            grow_nearly_square(0, 3)

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=50))
    def test_property_grows_by_smaller_dim(self, pr, pc):
        npr, npc = grow_nearly_square(pr, pc)
        assert npr <= npc
        # Incrementing the smaller dimension adds a full row/column of
        # the larger dimension's length.
        assert npr * npc == pr * pc + max(pr, pc)
        # Squareness never gets worse.
        assert abs(npr - npc) <= abs(pr - pc) + 1


class TestDividesEvenly:
    def test_examples(self):
        assert divides_evenly(8000, (4, 5))
        assert divides_evenly(12000, (6, 8))
        assert not divides_evenly(14000, (3, 4))  # 3 does not divide 14000


class TestParseConfig:
    def test_grid(self):
        assert parse_config("4x5") == (4, 5)
        assert parse_config(" 2X3 ") == (2, 3)

    def test_flat(self):
        assert parse_config("20") == (1, 20)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            parse_config("0x4")


class TestLegalConfigs:
    def test_flat_divisors(self):
        configs = legal_configs_for(8000, 50, topology="flat", min_procs=4)
        sizes = [config_size(c) for c in configs]
        # Table 2, Jacobi row: 4, 8, 10, 16, 20, 32, 40, 50
        for expected in (4, 8, 10, 16, 20, 32, 40, 50):
            assert expected in sizes
        assert all(8000 % s == 0 for s in sizes)

    def test_grid_configs_divide(self):
        configs = legal_configs_for(14000, 50, topology="grid")
        assert (5, 7) in configs
        assert (7, 7) in configs
        for pr, pc in configs:
            assert 14000 % pr == 0 and 14000 % pc == 0
            assert pr <= pc <= 2 * pr

    def test_sorted_by_size(self):
        configs = legal_configs_for(24000, 50, topology="grid")
        sizes = [config_size(c) for c in configs]
        assert sizes == sorted(sizes)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            legal_configs_for(100, 10, topology="ring")

    @given(st.sampled_from([8000, 12000, 14000, 16000, 20000, 21000, 24000]),
           st.integers(min_value=4, max_value=64))
    def test_property_all_dims_divide(self, n, max_procs):
        for pr, pc in legal_configs_for(n, max_procs, topology="grid"):
            assert n % pr == 0 and n % pc == 0
            assert pr * pc <= max_procs


class TestNextConfig:
    CONFIGS = [(1, 2), (2, 2), (2, 3), (3, 3), (3, 4), (4, 4), (4, 5),
               (5, 5), (5, 6), (6, 6), (6, 8)]

    def test_next_larger_respects_availability(self):
        nxt = next_larger_config(self.CONFIGS, (2, 2), available=2)
        assert nxt == (2, 3)
        nxt = next_larger_config(self.CONFIGS, (2, 2), available=1)
        assert nxt is None

    def test_next_larger_none_at_top(self):
        assert next_larger_config(self.CONFIGS, (6, 8), available=100) is None

    def test_next_smaller(self):
        assert next_smaller_config(self.CONFIGS, (4, 4)) == (3, 4)
        assert next_smaller_config(self.CONFIGS, (1, 2)) is None

    def test_paper_shrink_16_to_12(self):
        """Figure 3(a): the 4x4 expansion did not pay; shrink to 3x4."""
        assert next_smaller_config(self.CONFIGS, (4, 4)) == (3, 4)
