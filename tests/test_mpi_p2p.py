"""Point-to-point tests for the simulated MPI layer."""

import numpy as np
import pytest

from repro.cluster import Machine, MachineSpec
from repro.mpi import ANY_SOURCE, ANY_TAG, MPIError, Phantom, World
from repro.mpi.request import wait_all
from repro.simulate import Environment


def make_world(num_nodes=8, **spec_kwargs):
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=num_nodes, **spec_kwargs))
    world = World(env, machine, launch_overhead=0.0, spawn_overhead=0.0)
    return env, world


def run_spmd(main, nprocs=4, num_nodes=8, **spec_kwargs):
    env, world = make_world(num_nodes=num_nodes, **spec_kwargs)
    group = world.launch(main, processors=list(range(nprocs)))
    env.run()
    return env, [p.value for p in group.processes]


def test_send_recv_roundtrip():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send({"k": 1}, dest=1, tag=5)
            return "sent"
        elif comm.rank == 1:
            data = yield from comm.recv(source=0, tag=5)
            return data
        return None

    _, values = run_spmd(main, nprocs=2)
    assert values == ["sent", {"k": 1}]


def test_send_numpy_array_contents():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.arange(10.0), dest=1)
        else:
            data = yield from comm.recv(source=0)
            return float(data.sum())

    _, values = run_spmd(main, nprocs=2)
    assert values[1] == pytest.approx(45.0)


def test_recv_status_carries_metadata():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(4), dest=1, tag=9)
        else:
            _payload, status = yield from comm.recv_status(ANY_SOURCE,
                                                           ANY_TAG)
            return (status.source, status.tag, status.nbytes)

    _, values = run_spmd(main, nprocs=2)
    assert values[1] == (0, 9, 32)


def test_any_source_matches_both_senders():
    def main(comm):
        if comm.rank in (0, 1):
            yield from comm.send(comm.rank, dest=2, tag=1)
        elif comm.rank == 2:
            a = yield from comm.recv(source=ANY_SOURCE, tag=1)
            b = yield from comm.recv(source=ANY_SOURCE, tag=1)
            return sorted([a, b])
        return None

    _, values = run_spmd(main, nprocs=3)
    assert values[2] == [0, 1]


def test_tag_matching_skips_other_tags():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send("first", dest=1, tag=1)
            yield from comm.send("second", dest=1, tag=2)
        else:
            b = yield from comm.recv(source=0, tag=2)
            a = yield from comm.recv(source=0, tag=1)
            return (a, b)

    _, values = run_spmd(main, nprocs=2)
    assert values[1] == ("first", "second")


def test_message_order_preserved_same_tag():
    def main(comm):
        if comm.rank == 0:
            for i in range(5):
                yield from comm.send(i, dest=1, tag=0)
        else:
            seen = []
            for _ in range(5):
                seen.append((yield from comm.recv(source=0, tag=0)))
            return seen

    _, values = run_spmd(main, nprocs=2)
    assert values[1] == [0, 1, 2, 3, 4]


def test_isend_overlaps_compute():
    """A nonblocking send of a large message should overlap a timeout."""
    env, world = make_world(num_nodes=2, nic_bandwidth=100e6, latency=0.0)
    done = {}

    def main(comm):
        if comm.rank == 0:
            # 100 MB -> 1 s of wire time.
            req = comm.isend(Phantom(100_000_000), dest=1)
            yield comm.env.timeout(1.0)  # "compute" during the transfer
            yield from req.wait()
            done["sender"] = comm.env.now
        else:
            yield from comm.recv(source=0)
            done["receiver"] = comm.env.now

    world.launch(main, processors=[0, 1])
    env.run()
    # Overlap: total is ~1 s, not ~2 s.
    assert done["sender"] == pytest.approx(1.0, rel=0.01)


def test_irecv_wait_returns_payload():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send("data", dest=1)
        else:
            req = comm.irecv(source=0)
            value = yield from req.wait()
            return value

    _, values = run_spmd(main, nprocs=2)
    assert values[1] == "data"


def test_request_test_polling():
    env, world = make_world(num_nodes=2, nic_bandwidth=100e6, latency=0.0)
    observed = []

    def main(comm):
        if comm.rank == 0:
            req = comm.isend(Phantom(100_000_000), dest=1)  # 1 s
            done, _ = req.test()
            observed.append(done)
            yield comm.env.timeout(2.0)
            done, _ = req.test()
            observed.append(done)
        else:
            yield from comm.recv(source=0)

    world.launch(main, processors=[0, 1])
    env.run()
    assert observed == [False, True]


def test_sendrecv_exchange():
    def main(comm):
        partner = 1 - comm.rank
        got = yield from comm.sendrecv(comm.rank * 10, dest=partner,
                                       source=partner)
        return got

    _, values = run_spmd(main, nprocs=2)
    assert values == [10, 0]


@pytest.mark.parametrize("nprocs", [2, 3, 5, 8])
def test_sendrecv_ring_exchange(nprocs):
    """Every rank shifts a value around a ring in one sendrecv.

    All ranks post head-to-head simultaneously (send right, receive
    left) — the pattern ``MPI_Sendrecv`` guarantees deadlock-free; the
    send and receive must both be outstanding before either is waited
    on.
    """
    def main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        got = yield from comm.sendrecv(comm.rank, dest=right,
                                       source=left, send_tag=9,
                                       recv_tag=9)
        return got

    _, values = run_spmd(main, nprocs=nprocs)
    assert values == [(r - 1) % nprocs for r in range(nprocs)]


def test_sendrecv_pairwise_same_tag_full_duplex():
    """Head-to-head pairs exchange concurrently: both directions ride
    the full-duplex NICs, so the exchange costs one transfer time, not
    two (the regression the concurrent posting protects)."""
    def timed(serialized):
        env, world = make_world(num_nodes=4)
        out = {}

        def main(comm):
            partner = 1 - comm.rank
            if serialized and comm.rank == 1:
                # Reference: a strictly sequential recv-then-send.
                got = yield from comm.recv(source=partner, tag=3)
                yield from comm.send(Phantom(10_000_000), dest=partner,
                                     tag=3)
            else:
                got = yield from comm.sendrecv(
                    Phantom(10_000_000), dest=partner, source=partner,
                    send_tag=3, recv_tag=3)
            out[comm.rank] = comm.env.now
            return got

        world.launch(main, processors=[0, 1])
        env.run()
        return max(out.values())

    assert timed(serialized=False) < timed(serialized=True)


def test_wait_all_collects_in_order():
    def main(comm):
        if comm.rank == 0:
            reqs = [comm.isend(i, dest=1, tag=i) for i in range(3)]
            yield from wait_all(reqs)
            return "ok"
        else:
            out = []
            for i in (2, 0, 1):
                out.append((yield from comm.recv(source=0, tag=i)))
            return out

    _, values = run_spmd(main, nprocs=2)
    assert values[1] == [2, 0, 1]


def test_persistent_send_recv_reuse():
    def main(comm):
        if comm.rank == 0:
            psend = comm.send_init(dest=1, tag=4)
            for i in range(3):
                psend.start(payload=i)
                yield from psend.wait()
            return "done"
        else:
            precv = comm.recv_init(source=0, tag=4)
            seen = []
            for _ in range(3):
                precv.start()
                seen.append((yield from precv.wait()))
            return seen

    _, values = run_spmd(main, nprocs=2)
    assert values[1] == [0, 1, 2]


def test_bad_dest_rank_raises():
    def main(comm):
        yield from comm.send(1, dest=99)

    env, world = make_world()
    world.launch(main, processors=[0, 1])
    with pytest.raises(MPIError):
        env.run()


def test_negative_user_tag_rejected():
    def main(comm):
        yield from comm.send(1, dest=0, tag=-3)

    env, world = make_world()
    world.launch(main, processors=[0])
    with pytest.raises(MPIError):
        env.run()


def test_comm_stats_count_traffic():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(128), dest=1)
        else:
            yield from comm.recv(source=0)

    env, world = make_world()
    group = world.launch(main, processors=[0, 1])
    env.run()
    stats = group.view(0).stats
    assert stats.sends == 1
    assert stats.bytes_sent == 1024


def test_transfer_charges_simulated_time():
    """A 112 MB message over 112 MB/s GigE takes about a second."""
    env, world = make_world(num_nodes=2, nic_bandwidth=112e6, latency=55e-6)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(Phantom(112_000_000), dest=1)
        else:
            yield from comm.recv(source=0)

    world.launch(main, processors=[0, 1])
    env.run()
    assert env.now == pytest.approx(1.0, rel=0.01)


def test_phantom_payload_roundtrip():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send(Phantom(1000, meta="blockA"), dest=1)
        else:
            p = yield from comm.recv(source=0)
            return (p.nbytes, p.meta)

    _, values = run_spmd(main, nprocs=2)
    assert values[1] == (1000, "blockA")
