"""End-to-end redistribution over the simulated MPI layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blacs import ProcessGrid
from repro.cluster import Machine, MachineSpec
from repro.darray import Descriptor, DistributedMatrix
from repro.mpi import World
from repro.redist import checkpoint_redistribute, redistribute
from repro.redist.schedule import build_naive_1d_schedule, Schedule2D, Message2D
from repro.simulate import Environment


def run_redistribution(m, n, mb, nb, old_grid, new_grid, *,
                       materialized=True, use_checkpoint=False,
                       num_nodes=24, seed=7):
    """Drive a full collective redistribution; returns (global_in, results)."""
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=num_nodes))
    world = World(env, machine, launch_overhead=0.0)
    desc = Descriptor(m=m, n=n, mb=mb, nb=nb, grid=ProcessGrid(*old_grid))
    if materialized:
        rng = np.random.default_rng(seed)
        global_in = rng.standard_normal((m, n))
        dm = DistributedMatrix.from_global(global_in, desc)
    else:
        global_in = None
        dm = DistributedMatrix(desc, materialized=False)
    results = {}

    def main(comm):
        if use_checkpoint:
            res = yield from checkpoint_redistribute(
                comm, dm, ProcessGrid(*new_grid))
        else:
            res = yield from redistribute(comm, dm, ProcessGrid(*new_grid))
        results[comm.rank] = res

    nprocs = max(old_grid[0] * old_grid[1], new_grid[0] * new_grid[1])
    world.launch(main, processors=list(range(nprocs)))
    env.run()
    return global_in, results


@pytest.mark.parametrize("old,new", [
    ((1, 2), (2, 2)),   # paper Fig 3(a): 2 -> 4
    ((2, 2), (2, 3)),   # 4 -> 6
    ((2, 3), (3, 3)),   # 6 -> 9
    ((3, 3), (3, 4)),   # 9 -> 12
    ((3, 4), (4, 4)),   # 12 -> 16
    ((4, 4), (3, 4)),   # 16 -> 12, the shrink-back
    ((2, 2), (1, 2)),   # shrink 4 -> 2
])
def test_expansion_and_shrink_preserve_data(old, new):
    global_in, results = run_redistribution(
        24, 24, 2, 2, old, new)
    new_size = new[0] * new[1]
    rebuilt = results[0].matrix.to_global()
    np.testing.assert_allclose(rebuilt, global_in)
    for rank, res in results.items():
        if rank < new_size:
            assert res.matrix is not None
        else:
            assert res.matrix is None


@settings(deadline=None, max_examples=15)
@given(m=st.integers(4, 30), n=st.integers(4, 30),
       mb=st.integers(1, 5), nb=st.integers(1, 5),
       pr=st.integers(1, 3), pc=st.integers(1, 3),
       qr=st.integers(1, 3), qc=st.integers(1, 3))
def test_property_any_grid_pair_preserves_data(m, n, mb, nb, pr, pc, qr, qc):
    global_in, results = run_redistribution(
        m, n, mb, nb, (pr, pc), (qr, qc), num_nodes=16)
    rebuilt = results[0].matrix.to_global()
    np.testing.assert_allclose(rebuilt, global_in)


def test_phantom_mode_reports_bytes_without_data():
    _, results = run_redistribution(64, 64, 4, 4, (2, 2), (2, 3),
                                    materialized=False)
    res = results[0]
    assert res.matrix is not None
    assert not res.matrix.materialized
    total_moved = sum(r.bytes_moved for r in results.values())
    # Data genuinely changing processors must be a positive fraction.
    assert 0 < total_moved < 64 * 64 * 8


def test_phantom_and_materialized_charge_same_time():
    """The wire cost must not depend on whether payloads are real."""
    _, mat = run_redistribution(48, 48, 4, 4, (2, 2), (2, 3),
                                materialized=True)
    _, pha = run_redistribution(48, 48, 4, 4, (2, 2), (2, 3),
                                materialized=False)
    assert mat[0].elapsed == pytest.approx(pha[0].elapsed, rel=1e-9)


def test_elapsed_time_positive_and_consistent():
    _, results = run_redistribution(32, 32, 2, 2, (2, 2), (2, 3))
    times = [r.elapsed for r in results.values()]
    assert all(t > 0 for t in times)
    # All ranks leave through the same closing barrier.
    assert max(times) - min(times) < 0.1 * max(times)


def test_identity_redistribution_is_pure_local_copy():
    _, results = run_redistribution(24, 24, 2, 2, (2, 2), (2, 2))
    for res in results.values():
        assert res.messages == 0
    assert results[0].local_copies > 0
    rebuilt = results[0].matrix.to_global()
    assert rebuilt is not None


def test_checkpoint_preserves_data():
    global_in, results = run_redistribution(
        24, 24, 2, 2, (2, 2), (2, 3), use_checkpoint=True)
    rebuilt = results[0].matrix.to_global()
    np.testing.assert_allclose(rebuilt, global_in)


def test_checkpoint_much_slower_than_redistribution():
    """The paper's headline ratio: checkpointing is many times costlier."""
    kwargs = dict(materialized=False, num_nodes=16)
    _, direct = run_redistribution(2000, 2000, 50, 50, (2, 2), (2, 3),
                                   **kwargs)
    _, ckpt = run_redistribution(2000, 2000, 50, 50, (2, 2), (2, 3),
                                 use_checkpoint=True, **kwargs)
    ratio = ckpt[0].elapsed / direct[0].elapsed
    assert ratio > 3.0


def test_naive_schedule_slower_than_circulant():
    """Ablation: contention-free scheduling beats the naive single step."""
    def timed(naive):
        env = Environment()
        machine = Machine(env, MachineSpec(num_nodes=16))
        world = World(env, machine, launch_overhead=0.0)
        desc = Descriptor(m=4000, n=4000, mb=100, nb=100,
                          grid=ProcessGrid(1, 4))
        dm = DistributedMatrix(desc, materialized=False)
        new_grid = ProcessGrid(1, 6)
        schedule = None
        if naive:
            sched_1d = build_naive_1d_schedule(desc.col_blocks, 4, 6)
            schedule = Schedule2D(
                src_grid=(1, 4), dst_grid=(1, 6),
                row_blocks=desc.row_blocks, col_blocks=desc.col_blocks,
                steps=[[Message2D(src=(0, m.src), dst=(0, m.dst),
                                  row_blocks=tuple(range(desc.row_blocks)),
                                  col_blocks=m.blocks)
                        for m in step] for step in sched_1d.steps])
        out = {}

        def main(comm):
            res = yield from redistribute(comm, dm, new_grid,
                                          schedule=schedule)
            out[comm.rank] = res

        world.launch(main, processors=list(range(6)))
        env.run()
        return out[0].elapsed

    t_naive = timed(naive=True)
    t_circ = timed(naive=False)
    # Naive scheduling funnels several messages into one NIC at once.
    assert t_naive >= t_circ


def test_shrink_senders_include_departing_ranks():
    """On a shrink, ranks leaving the grid still send their data out."""
    _, results = run_redistribution(24, 24, 2, 2, (2, 3), (2, 2))
    departing = [r for r in (4, 5)]
    sent = sum(results[r].bytes_moved for r in departing)
    assert sent > 0
    for r in departing:
        assert results[r].matrix is None
