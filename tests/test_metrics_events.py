"""Tests for timeline recording and report rendering."""

import pytest

from repro.core.events import JobTimeline, TimelineRecorder
from repro.metrics import (
    ascii_step_chart,
    format_table,
    render_allocation_history,
)


def build_recorder():
    rec = TimelineRecorder()
    # Job 1: starts at t=0 on 4 procs, expands to 6 at t=10, done t=30.
    rec.record(0.0, 1, "alpha", 4, (2, 2), "start")
    rec.record(10.0, 1, "alpha", 6, (2, 3), "expand")
    rec.record(30.0, 1, "alpha", 0, None, "finish")
    # Job 2: t=5 on 2 procs, done t=25.
    rec.record(5.0, 2, "beta", 2, (1, 2), "start")
    rec.record(25.0, 2, "beta", 0, None, "finish")
    return rec


class TestJobTimeline:
    def test_nprocs_at(self):
        tl = JobTimeline(1, "j")
        tl.add(0.0, 4)
        tl.add(10.0, 6)
        tl.add(30.0, 0)
        assert tl.nprocs_at(-1.0) == 0
        assert tl.nprocs_at(0.0) == 4
        assert tl.nprocs_at(9.9) == 4
        assert tl.nprocs_at(10.0) == 6
        assert tl.nprocs_at(31.0) == 0

    def test_cpu_seconds_integral(self):
        tl = JobTimeline(1, "j")
        tl.add(0.0, 4)
        tl.add(10.0, 6)
        tl.add(30.0, 0)
        assert tl.cpu_seconds() == pytest.approx(4 * 10 + 6 * 20)

    def test_same_time_update_overwrites(self):
        tl = JobTimeline(1, "j")
        tl.add(0.0, 4)
        tl.add(0.0, 6)
        assert tl.points == [(0.0, 6)]


class TestTimelineRecorder:
    def test_job_timelines_split_by_job(self):
        rec = build_recorder()
        tls = rec.job_timelines()
        assert set(tls) == {1, 2}
        assert tls[1].points == [(0.0, 4), (10.0, 6), (30.0, 0)]

    def test_busy_processors_sums_jobs(self):
        rec = build_recorder()
        busy = dict(rec.busy_processors())
        assert busy[0.0] == 4
        assert busy[5.0] == 6     # 4 + 2
        assert busy[10.0] == 8    # 6 + 2
        assert busy[25.0] == 6    # beta done
        assert busy[30.0] == 0

    def test_utilization(self):
        rec = build_recorder()
        # cpu-seconds: alpha 4*10+6*20=160, beta 2*20=40 -> 200.
        # horizon 30 s, 10 processors -> 200/300.
        assert rec.utilization(10) == pytest.approx(200 / 300)

    def test_utilization_empty(self):
        assert TimelineRecorder().utilization(10) == 0.0

    def test_makespan(self):
        assert build_recorder().makespan() == pytest.approx(30.0)


class TestRendering:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, None]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.50" in out
        assert all(len(l) == len(lines[1]) for l in lines[2:])

    def test_ascii_chart_contains_series_glyphs(self):
        chart = ascii_step_chart({"jobA": [(0.0, 2.0), (5.0, 4.0)],
                                  "jobB": [(1.0, 1.0)]},
                                 width=40, height=8)
        assert "*" in chart and "o" in chart
        assert "jobA" in chart and "jobB" in chart

    def test_ascii_chart_empty(self):
        assert "empty" in ascii_step_chart({})

    def test_render_allocation_history(self):
        rec = build_recorder()
        out = render_allocation_history(rec, width=50, height=8)
        assert "alpha" in out and "beta" in out
