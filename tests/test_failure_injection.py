"""Failure injection: crashing applications must not take down the
scheduler, and their resources must be recovered (paper's job-error
signal path through the System Monitor)."""

from typing import Generator

from repro.apps import LUApplication
from repro.apps.base import AppContext, Application
from repro.blacs import ProcessGrid
from repro.cluster import MachineSpec
from repro.core import JobState, ReshapeFramework


class CrashingApplication(Application):
    """Raises on a chosen iteration, on rank 0."""

    topology = "flat"

    def __init__(self, *, crash_at: int = 1, **kwargs):
        super().__init__(100, **kwargs)
        self.crash_at = crash_at
        self._count = 0

    @property
    def name(self) -> str:
        return "Crasher"

    def create_data(self, grid: ProcessGrid):
        return {}

    def legal_configs(self, max_procs, min_procs=1):
        return [(1, p) for p in range(max(2, min_procs), max_procs + 1)]

    def iterate(self, ctx: AppContext) -> Generator:
        yield from ctx.charge(1e6)
        if ctx.comm.rank == 0:
            self._count += 1
            if self._count > self.crash_at:
                raise RuntimeError("synthetic failure")


def test_crash_recovers_resources_and_marks_failed():
    fw = ReshapeFramework(num_processors=8,
                          machine_spec=MachineSpec(num_nodes=8), dynamic=False)
    job = fw.submit(CrashingApplication(crash_at=1, iterations=5),
                    config=(1, 4))
    fw.run()
    assert job.state == JobState.FAILED
    assert fw.pool.free_count == 8
    assert fw.monitor.failed == [job]


def test_crash_does_not_block_other_jobs():
    fw = ReshapeFramework(num_processors=8,
                          machine_spec=MachineSpec(num_nodes=8), dynamic=False)
    crasher = fw.submit(CrashingApplication(crash_at=0, iterations=5),
                        config=(1, 8), arrival=0.0)
    follower = fw.submit(LUApplication(480, block=48, iterations=2),
                         config=(2, 3), arrival=0.01)
    fw.run()
    assert crasher.state == JobState.FAILED
    assert follower.state == JobState.FINISHED
    # The follower started only after the crash freed the machine.
    assert follower.start_time >= crasher.end_time


def test_crash_recorded_on_timeline_as_error():
    """Failures record a distinct "error" ending, not a fake "finish"."""
    fw = ReshapeFramework(num_processors=8,
                          machine_spec=MachineSpec(num_nodes=8), dynamic=False)
    job = fw.submit(CrashingApplication(crash_at=1, iterations=5),
                    config=(1, 4))
    fw.run()
    reasons = [c.reason for c in fw.timeline.changes
               if c.job_id == job.job_id]
    assert reasons == ["start", "error"]
    assert fw.timeline.endings("finish") == []
    [ending] = fw.timeline.endings("error")
    # The ending still drops the allocation to zero so utilization math
    # is identical to a successful finish.
    assert ending.nprocs == 0
    assert 0.0 < fw.utilization() <= 1.0
