"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=420):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "LU(12000) under ReSHAPE" in out
    assert "job state: finished" in out
    assert "cluster utilization" in out


def test_job_mix_scheduling_fast():
    out = run_example("job_mix_scheduling.py", "--fast")
    assert "Turn-around times (workload W1)" in out
    assert "utilization" in out
    assert "Master-worker" in out


def test_port_an_application():
    out = run_example("port_an_application.py")
    assert "job finished: finished" in out
    assert "eigenpair verified: True" in out


@pytest.mark.slow
def test_sweet_spot_probe():
    out = run_example("sweet_spot_probe.py", "--size", "8000")
    assert "ReSHAPE settled on" in out
