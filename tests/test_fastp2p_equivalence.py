"""Clock-equivalence of the point-to-point fast path.

The contract (docs/phantom.md): with the same inputs, a fast-path
``send``/``isend``/``recv``/``sendrecv`` produces *identical* simulated
completion times, payload values and ``CommStats``/``NetworkStats``
counters as the generator transfer chain it replaces — for any payload
(the event chain carries no information beyond the byte count), on any
machine shape: shared nodes (``cpus_per_node > 1``), same-node
shared-memory messages, and backplanes tight enough that concurrent
flows pay the oversubscription multiplier.

The only excluded corner is the event kernel's tie-breaking of
bit-identical simultaneous NIC requests (documented in docs/phantom.md);
the skew strategy below keeps nonzero skews distinct, exactly like the
collective equivalence suite.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Machine, MachineSpec
from repro.mpi import ANY_SOURCE, Phantom, World
from repro.mpi.request import wait_all
from repro.simulate import Environment


def run_both(main, nprocs, *, collectives_fast=False, **spec_kwargs):
    """Run ``main`` with the p2p fast path off and on; collectives stay
    on the generator path by default so p2p is isolated."""
    out = []
    for fast in (False, True):
        env = Environment()
        machine = Machine(env, MachineSpec(
            num_nodes=spec_kwargs.pop("num_nodes", None)
            or max(nprocs, 2), **spec_kwargs))
        spec_kwargs["num_nodes"] = machine.spec.num_nodes
        world = World(env, machine, launch_overhead=0.0,
                      collective_fastpath=collectives_fast,
                      p2p_fastpath=fast)
        group = world.launch(main, processors=list(range(nprocs)))
        env.run()
        shared = group.comm_shared
        out.append((
            env.now,
            [p.value for p in group.processes],
            (shared.stats.sends, shared.stats.bytes_sent),
            (machine.network.stats.messages,
             machine.network.stats.bytes,
             machine.network.stats.busy_time,
             tuple((n.nic.bytes_sent, n.nic.bytes_received)
                   for n in machine.nodes)),
        ))
    return out


def assert_equivalent(slow, fast):
    assert slow[0] == fast[0], "simulated end time diverged"
    assert slow[1] == fast[1], "return values diverged"
    assert slow[2] == fast[2], "CommStats diverged"
    s_msgs, s_bytes, s_busy, s_nics = slow[3]
    f_msgs, f_bytes, f_busy, f_nics = fast[3]
    assert (s_msgs, s_bytes, s_nics) == (f_msgs, f_bytes, f_nics), \
        "NetworkStats/NIC counters diverged"
    # busy_time is a float accumulation whose summation order differs
    # between the paths (kernel books at transfer end, replay at
    # resolution) — identical terms, last-ulp association noise only.
    assert s_busy == pytest.approx(f_busy, rel=1e-12)


def distinct_nonzero(skew):
    nonzero = [s for s in skew if s != 0.0]
    return len(nonzero) == len(set(nonzero))


skews = st.lists(
    st.one_of(st.just(0.0),
              st.floats(min_value=0.0, max_value=0.01,
                        allow_nan=False, allow_infinity=False)),
    min_size=10, max_size=10).filter(distinct_nonzero)


# ---------------------------------------------------------------------------
# Deterministic scenarios
# ---------------------------------------------------------------------------

def test_pingpong_real_payloads():
    """Real (non-phantom) values ride the fast path verbatim."""
    def main(comm):
        if comm.rank == 0:
            yield from comm.send({"step": 1, "data": [1, 2, 3]},
                                 dest=1, tag=7)
            reply = yield from comm.recv(source=1, tag=8)
            return reply
        msg = yield from comm.recv(source=0, tag=7)
        yield from comm.send(("ack", msg["step"]), dest=0, tag=8)
        return (comm.env.now, msg["step"])

    assert_equivalent(*run_both(main, 2))


def test_isend_burst_fifo_and_contention():
    """Queued isends serialize on the NIC with the contention penalty."""
    def main(comm):
        if comm.rank == 0:
            reqs = [comm.isend(Phantom(50_000 + i), dest=1, tag=i)
                    for i in range(6)]
            yield from wait_all(reqs)
            return comm.env.now
        got = []
        for i in range(6):
            p = yield from comm.recv(source=0, tag=i)
            got.append((p.nbytes, comm.env.now))
        return got

    assert_equivalent(*run_both(main, 2))


def test_sendrecv_ring():
    def main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        token = yield from comm.sendrecv(("from", comm.rank), dest=right,
                                         source=left, send_tag=3,
                                         recv_tag=3)
        return (comm.env.now, token)

    assert_equivalent(*run_both(main, 5))


def test_any_source_master_worker():
    """ANY_SOURCE matching order is preserved (master-worker pattern)."""
    def main(comm):
        if comm.rank == 0:
            for w in range(1, comm.size):
                yield from comm.send(w * 10, dest=w, tag=1)
            results = []
            for _ in range(comm.size - 1):
                value, status = yield from comm.recv_status(ANY_SOURCE, 2)
                results.append((status.source, value))
            return (comm.env.now, results)
        chunk = yield from comm.recv(source=0, tag=1)
        yield from comm.send(chunk + comm.rank, dest=0, tag=2)
        return comm.env.now

    assert_equivalent(*run_both(main, 6))


def test_same_node_messages_shared_memory_path():
    """cpus_per_node=2: co-located ranks exchange through memory, not
    the NIC, and the fast path is demonstrably taken."""
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=2, cpus_per_node=2))
    world = World(env, machine, launch_overhead=0.0)

    def probe(comm):
        yield from comm.send(Phantom(100), dest=1)

    def sink(comm):
        if comm.rank == 1:
            yield from comm.recv(source=0)
        else:
            yield from probe(comm)

    group = world.launch(sink, processors=[0, 1])
    assert group.view(0)._fastp2p() is not None
    env.run()
    # The replay was actually engaged (created lazily on first use) and
    # a same-node message never touched the NIC counters.
    assert machine.network._replay is not None
    assert machine.nodes[0].nic.bytes_sent == 0

    def main(comm):
        peer = comm.rank ^ 1          # 0<->1 same node, 2<->3 same node
        far = (comm.rank + 2) % 4     # cross-node partner
        got = yield from comm.sendrecv(Phantom(4096), dest=peer,
                                       source=peer)
        got2 = yield from comm.sendrecv(Phantom(65536), dest=far,
                                        source=far)
        return (comm.env.now, got.nbytes, got2.nbytes)

    assert_equivalent(*run_both(main, 4, num_nodes=2, cpus_per_node=2))


def test_tight_backplane_concurrent_flows():
    """Concurrent p2p flows above the backplane pay the same
    oversubscription multipliers as the event path."""
    def main(comm):
        # Shift-by-one permutation: size concurrent flows at once.
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        got = yield from comm.sendrecv(Phantom(200_000), dest=right,
                                       source=left)
        return (comm.env.now, got.nbytes)

    assert_equivalent(*run_both(main, 8, num_nodes=8,
                                backplane_bandwidth=120e6))


def test_mixed_with_fast_collectives():
    """p2p and collectives share one replay: NIC state persists across
    both kinds of traffic."""
    def main(comm):
        yield from comm.barrier()
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        got = yield from comm.sendrecv(Phantom(30_000), dest=right,
                                       source=left)
        yield from comm.barrier()
        return (comm.env.now, got.nbytes)

    slow = run_both(main, 6, collectives_fast=False)[0]
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=6))
    world = World(env, machine, launch_overhead=0.0,
                  collective_fastpath=True)
    group = world.launch(main, processors=list(range(6)))
    env.run()
    assert env.now == slow[0]
    assert [p.value for p in group.processes] == slow[1]


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

@settings(deadline=None, max_examples=30)
@given(nprocs=st.integers(2, 8), skew=skews,
       nbytes=st.integers(0, 2_000_000), seed=st.integers(0, 99))
def test_p2p_property_plain(nprocs, skew, nbytes, seed):
    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        payload = Phantom((nbytes + seed * comm.rank) % 2_000_001)
        got = yield from comm.sendrecv(payload, dest=right, source=left)
        yield from comm.send(comm.rank, dest=right, tag=5)
        final = yield from comm.recv(source=left, tag=5)
        return (comm.env.now, got.nbytes, final)

    assert_equivalent(*run_both(main, nprocs))


@settings(deadline=None, max_examples=25)
@given(nprocs=st.integers(2, 8), skew=skews,
       nbytes=st.integers(1, 500_000))
def test_p2p_property_shared_nodes(nprocs, skew, nbytes):
    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        got = yield from comm.sendrecv(Phantom(nbytes), dest=right,
                                       source=left)
        return (comm.env.now, got.nbytes)

    assert_equivalent(*run_both(main, nprocs,
                                num_nodes=max(2, (nprocs + 1) // 2),
                                cpus_per_node=2))


@settings(deadline=None, max_examples=25)
@given(nprocs=st.integers(2, 8), skew=skews,
       nbytes=st.integers(1, 500_000))
def test_p2p_property_tight_backplane(nprocs, skew, nbytes):
    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        got = yield from comm.sendrecv(Phantom(nbytes), dest=right,
                                       source=left)
        return (comm.env.now, got.nbytes)

    assert_equivalent(*run_both(main, nprocs, num_nodes=nprocs,
                                backplane_bandwidth=130e6))


@settings(deadline=None, max_examples=15)
@given(nprocs=st.integers(3, 8), skew=skews,
       nbytes=st.integers(10_000, 400_000))
def test_mixed_fast_collectives_slow_p2p_bridge(nprocs, skew, nbytes):
    """Fast collectives over *generator-path* p2p on a tight backplane:
    the Network.transfer bridge must keep the backplane samples of both
    traffic classes consistent (replayed flows held behind an announced
    transfer sample after its interval lands, and vice versa)."""
    def main(comm):
        yield comm.env.timeout(skew[comm.rank])
        yield from comm.barrier()
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        # Concurrent generator-path transfers...
        got = yield from comm.sendrecv(Phantom(nbytes), dest=right,
                                       source=left)
        # ...interleaved with fast-path collective flows.
        yield from comm.barrier()
        items = yield from comm.allgather(Phantom(nbytes // 2))
        return (comm.env.now, got.nbytes, len(items))

    out = []
    for coll_fast in (False, True):
        env = Environment()
        machine = Machine(env, MachineSpec(num_nodes=nprocs,
                                           backplane_bandwidth=140e6))
        world = World(env, machine, launch_overhead=0.0,
                      collective_fastpath=coll_fast, p2p_fastpath=False)
        group = world.launch(main, processors=list(range(nprocs)))
        env.run()
        out.append((env.now, [p.value for p in group.processes]))
    assert out[0][0] == out[1][0], "simulated end time diverged"
    assert out[0][1] == out[1][1], "return values diverged"


def test_trace_declines_fast_path():
    """Tracing needs real transfers; the fast path steps aside."""
    env = Environment()
    machine = Machine(env, MachineSpec(num_nodes=2), trace_network=True)
    world = World(env, machine, launch_overhead=0.0)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(Phantom(1000), dest=1)
        else:
            yield from comm.recv(source=0)

    group = world.launch(main, processors=[0, 1])
    assert group.view(0)._fastp2p() is None
    env.run()
    assert len(machine.network.stats.records) == 1
